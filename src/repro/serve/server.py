"""The asyncio ingestion front door (``repro.serve``).

:class:`IngestServer` turns the in-process :class:`SocManager` into a
service: clients open a session (TCP or in-memory transport), declare
a tenant and an ingest mode, then stream either **raw frontend byte
streams** (any grammar in the :mod:`repro.frontends` registry, decoded
server-side with the resync-hunting receiver pair) or **pre-decoded
event batches** (the columnar TRACE_CHUNK codec).  Admitted batches
wait in per-tenant rolling windows; a drain loop assembles monitoring
rounds and feeds them to ``SocManager.run_events``.

The dataplane is protected by layered overload controls (see
:mod:`repro.serve.admission` and docs/SERVING.md):

    breaker (health-integrated) -> token bucket -> deadline/queue
    admission -> bounded window -> stale shed at drain

Every refusal is a client-visible SHED frame with a retry-after hint,
and every control surfaces ``serve.*`` counters so shed work is
accounted, never silently dropped.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import FrameProtocolError, ServeError, SocConfigError
from repro.frontends import TraceFrontend, frontend_names, get_frontend
from repro.obs import MetricsRegistry, NULL_REGISTRY
from repro.pipeline.port import PortPolicy
from repro.serve import protocol
from repro.serve.admission import (
    AdmissionController,
    BreakerPolicy,
    BreakerState,
    CircuitBreaker,
    TokenBucket,
)
from repro.serve.windows import IngestBatch, TenantWindow
from repro.soc.manager import SocManager
from repro.workloads.cfg import BranchEvent, BranchKind

#: Canonical ``serve.*`` counters, surfaced by ``repro.eval metrics``
#: with a stable shape (0 when the front door never ran).
SERVE_COUNTERS = (
    "serve.connections.opened",
    "serve.connections.closed",
    "serve.clients.disconnected_midframe",
    "serve.clients.slow",
    "serve.protocol.errors",
    "serve.frames.received",
    "serve.bytes.received",
    "serve.frames.raw",
    "serve.frames.events",
    "serve.decode.errors",
    "serve.admitted.batches",
    "serve.admitted.events",
    "serve.shed.breaker_open",
    "serve.shed.sampled",
    "serve.shed.rate_limited",
    "serve.shed.queue_depth",
    "serve.shed.deadline",
    "serve.shed.buffer_full",
    "serve.shed.stale",
    "serve.rounds",
    "serve.round.events",
    "serve.verdicts",
    "serve.breaker.trips",
    "serve.breaker.recoveries",
    "serve.route.updates",
)

#: Shed reasons (counter suffixes and SHED-frame ``reason`` values).
SHED_REASONS = (
    "breaker_open",
    "sampled",
    "rate_limited",
    "queue_depth",
    "deadline",
    "buffer_full",
    "stale",
)


@dataclass(frozen=True)
class ServeConfig:
    """Front-door configuration (see docs/SERVING.md)."""

    #: Ingest-to-verdict budget.  Arms deadline-aware admission *and*
    #: stale shedding at drain; the same vocabulary as the arbiter
    #: watchdog's ``deadline_us``, applied in the wall-clock domain.
    deadline_us: Optional[float] = None
    #: Per-tenant rolling-window capacity, in batches.
    window_batches: int = 64
    #: Full-window behaviour: STALL = client-visible backpressure,
    #: DROP = freshness (the incoming batch is lost but counted).
    window_policy: PortPolicy = PortPolicy.STALL
    #: Per-tenant sustained event-rate cap (None = unlimited).
    rate_limit_eps: Optional[float] = None
    rate_burst_events: int = 4096
    #: Global bounded-queue cap (events across all windows).
    max_queued_events: int = 65_536
    #: Max events one tenant contributes to one drain round.
    round_max_events: int = 8192
    #: Drain cadence when no kick threshold is crossed.
    drain_interval_s: float = 0.005
    #: Queued events that wake the drain loop early.
    drain_kick_events: int = 4096
    #: Per-read timeout guarding against slow-loris clients
    #: (None = patient).
    idle_timeout_s: Optional[float] = None
    #: Synthetic cycle cadence for events reconstructed from raw byte
    #: streams (the wire carries no timestamps).
    raw_cycles_per_event: int = 512
    breaker: BreakerPolicy = field(default_factory=BreakerPolicy)
    #: Retry-after hint handed to clients refused by an open breaker.
    breaker_retry_ms: float = 50.0

    def __post_init__(self) -> None:
        if self.deadline_us is not None and not self.deadline_us > 0:
            raise ServeError(
                "deadline_us must be positive (or None), "
                f"got {self.deadline_us!r}"
            )
        for name in (
            "window_batches",
            "rate_burst_events",
            "max_queued_events",
            "round_max_events",
            "drain_kick_events",
            "raw_cycles_per_event",
        ):
            if getattr(self, name) < 1:
                raise ServeError(f"{name} must be >= 1")
        if self.rate_limit_eps is not None and not self.rate_limit_eps > 0:
            raise ServeError("rate_limit_eps must be positive (or None)")
        if self.drain_interval_s <= 0:
            raise ServeError("drain_interval_s must be positive")
        if self.breaker_retry_ms < 0:
            raise ServeError("breaker_retry_ms must be >= 0")


class _RawIngest:
    """Server-side decode state for one raw-byte-stream session.

    The wire carries only what the grammar carries, so reconstructed
    events are *waypoints*: every taken branch's target address (both
    built-in grammars address-broadcast), syscalls flagged via the
    grammar's trap/exception marker, cycles assigned at a fixed
    cadence.  Atom/branch-map outcome bits carry no address and are
    skipped — they can never hit the IGM mapper anyway.
    """

    def __init__(
        self, frontend: TraceFrontend, cycles_per_event: int
    ) -> None:
        self.frontend = frontend
        self.deframer = frontend.new_deframer(resync_hunt=True)
        self.decoder = frontend.new_decoder(strict=False, resync_hunt=True)
        self._cycles_per_event = cycles_per_event
        self._cycle = 0
        self._last_target = 0

    def _to_events(self, items) -> List[BranchEvent]:
        events: List[BranchEvent] = []
        for item in items:
            if not hasattr(item, "is_syscall"):
                continue  # sync/support/context/outcome items
            self._cycle += self._cycles_per_event
            target = int(item.address)
            events.append(
                BranchEvent(
                    cycle=self._cycle,
                    source=self._last_target,
                    target=target,
                    kind=(
                        BranchKind.SYSCALL
                        if item.is_syscall
                        else BranchKind.INDIRECT
                    ),
                )
            )
            self._last_target = target
        return events

    def feed(self, stream: bytes) -> List[BranchEvent]:
        payload = self.deframer.push(stream)
        return self._to_events(self.decoder.feed(payload))

    def finish(self) -> List[BranchEvent]:
        return self._to_events(self.decoder.finish())


class _Session:
    """Per-connection state."""

    def __init__(self) -> None:
        self.tenant: Optional[str] = None
        self.mode: str = protocol.MODE_EVENTS
        self.raw: Optional[_RawIngest] = None
        self.frames = 0
        self.admitted = 0
        self.shed = 0
        self.errors = 0


class _MemoryWriter:
    """StreamWriter facade over an in-memory peer StreamReader.

    Lets thousands of simulated clients attach without consuming file
    descriptors — the soak harness's transport.
    """

    def __init__(self, peer: asyncio.StreamReader) -> None:
        self._peer = peer
        self._closed = False

    def write(self, data: bytes) -> None:
        if not self._closed and data:
            self._peer.feed_data(data)

    async def drain(self) -> None:
        await asyncio.sleep(0)

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._peer.feed_eof()

    def is_closing(self) -> bool:
        return self._closed

    async def wait_closed(self) -> None:
        return None

    def get_extra_info(self, name: str, default=None):
        return default


class IngestServer:
    """Streaming ingestion service in front of one :class:`SocManager`."""

    def __init__(
        self,
        manager: SocManager,
        config: Optional[ServeConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
        clock_ns: Callable[[], int] = time.monotonic_ns,
    ) -> None:
        self.manager = manager
        self.config = config or ServeConfig()
        self.metrics = metrics or NULL_REGISTRY
        self.clock_ns = clock_ns
        self.windows: Dict[str, TenantWindow] = {}
        self.breakers: Dict[str, CircuitBreaker] = {}
        self.buckets: Dict[str, TokenBucket] = {}
        for runtime in manager.tenants:
            self._attach_tenant(runtime.name)
        self.admission = AdmissionController(
            deadline_us=self.config.deadline_us,
            max_queued_events=self.config.max_queued_events,
        )
        #: Wall-clock ingest-to-verdict samples (ns), capped so a long
        #: soak cannot grow without bound; the histogram keeps the full
        #: distribution either way.
        self.latencies_ns: List[int] = []
        self._latency_cap = 1 << 20
        self.counts: Dict[str, int] = {name: 0 for name in SERVE_COUNTERS}
        self._m = {
            name: self.metrics.counter(name) for name in SERVE_COUNTERS
        }
        self._m_latency = self.metrics.histogram(
            "serve.ingest_to_verdict_ns"
        )
        self._m_queue = self.metrics.gauge("serve.queue.events")
        self._sessions: List[asyncio.Task] = []
        #: Live (session, writer) pairs so a graceful shutdown can
        #: answer in-flight clients with SUMMARY frames.
        self._peers: List[Tuple[_Session, object]] = []
        self._drain_task: Optional[asyncio.Task] = None
        self._tcp: Optional[asyncio.base_events.Server] = None
        self._kick: Optional[asyncio.Event] = None
        self._running = False
        self._closing = False
        self.drain_errors: List[str] = []
        #: Events inside batches shed as stale (the ``serve.shed.stale``
        #: counter counts batches); lets callers check conservation:
        #: admitted events == drained round events + stale events.
        self.stale_events = 0
        self._last_drain_done_ns: Optional[int] = None
        #: Per-tenant records from the most recent round that served
        #: any traffic (the chaos harness compares these against a
        #: fault-free reference).
        self.last_records: Dict[str, List] = {}
        #: Sticky tenant->shard routing table, mirrored from a fleet
        #: manager's placement (empty for a solo SocManager).  Updated
        #: atomically at round boundaries only — mid-round the front
        #: door keeps answering with the placement the round started
        #: with, the contract docs/SERVING.md documents.
        self.routes: Dict[str, int] = {}
        self.route_epoch = -1
        self._sync_routes()

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------

    def _attach_tenant(self, name: str) -> None:
        config = self.config if hasattr(self, "config") else ServeConfig()
        self.windows[name] = TenantWindow(
            name,
            capacity_batches=config.window_batches,
            policy=config.window_policy,
            metrics=self.metrics,
        )
        self.breakers[name] = CircuitBreaker(config.breaker)
        if config.rate_limit_eps is not None:
            self.buckets[name] = TokenBucket(
                config.rate_limit_eps, config.rate_burst_events
            )

    def _count(self, name: str, amount: int = 1) -> None:
        self.counts[name] += amount
        self._m[name].inc(amount)

    def _sync_routes(self) -> None:
        """Adopt the fleet's routing table if its epoch moved.

        One atomic swap per placement change: the fleet only mutates
        placement at round boundaries (load rebalancing and crash-loop
        migration both route through the same handoff primitive), so
        polling the epoch here — at the server's own round boundary —
        observes every generation exactly once.  Solo managers have no
        routing table and keep ``routes`` empty.
        """
        table = getattr(self.manager, "routing_table", None)
        if table is None:
            return
        epoch = int(getattr(self.manager, "placement_epoch", 0))
        if epoch == self.route_epoch:
            return
        self.routes = dict(table())
        self.route_epoch = epoch
        self._count("serve.route.updates")

    def stats(self) -> Dict[str, object]:
        """Counter snapshot plus breaker states (plain dict)."""
        out: Dict[str, object] = dict(self.counts)
        out["serve.queue.events"] = self.admission.queued_events
        out["breakers"] = {
            name: breaker.state.value
            for name, breaker in self.breakers.items()
        }
        out["routes"] = dict(self.routes)
        out["route_epoch"] = self.route_epoch
        return out

    def shed_total(self) -> int:
        return sum(
            self.counts[f"serve.shed.{reason}"] for reason in SHED_REASONS
        )

    # ------------------------------------------------------------------
    # Transports
    # ------------------------------------------------------------------

    def local_connection(
        self,
    ) -> Tuple[asyncio.StreamReader, _MemoryWriter]:
        """Attach an in-memory client; returns its (reader, writer)."""
        if self._closing:
            raise ServeError("server is shutting down")
        server_reader = asyncio.StreamReader()
        client_reader = asyncio.StreamReader()
        client_writer = _MemoryWriter(server_reader)
        server_writer = _MemoryWriter(client_reader)
        task = asyncio.ensure_future(
            self._session_entry(server_reader, server_writer)
        )
        self._sessions.append(task)
        return client_reader, client_writer

    async def start_tcp(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> Tuple[str, int]:
        """Listen on a real socket; returns the bound (host, port)."""
        self._tcp = await asyncio.start_server(
            self._session_entry, host, port
        )
        bound = self._tcp.sockets[0].getsockname()
        return bound[0], bound[1]

    async def start(self) -> None:
        """Arm the background drain loop."""
        if self._running:
            return
        self._running = True
        self._kick = asyncio.Event()
        self._drain_task = asyncio.create_task(self._drain_loop())

    async def stop(self) -> None:
        """Quiesce: stop draining, final drain, close transports."""
        self._running = False
        if self._kick is not None:
            self._kick.set()
        if self._drain_task is not None:
            await self._drain_task
            self._drain_task = None
        self.drain_once()
        if self._tcp is not None:
            self._tcp.close()
            await self._tcp.wait_closed()
            self._tcp = None
        for task in self._sessions:
            if not task.done():
                task.cancel()
        if self._sessions:
            await asyncio.gather(*self._sessions, return_exceptions=True)
        self._sessions = []

    async def shutdown(self) -> None:
        """Graceful quiesce (the SIGTERM / Ctrl-C path).

        In order: stop accepting (the TCP listener closes, new local
        connections are refused), stop the background drain loop,
        drain every buffered window through a final sequence of
        monitoring rounds so admitted work is never abandoned, then
        answer each in-flight client with its SUMMARY frame before the
        transports close.  Idempotent — a second signal while the
        first shutdown runs is a no-op.
        """
        if self._closing:
            return
        self._closing = True
        if self._tcp is not None:
            self._tcp.close()
            await self._tcp.wait_closed()
            self._tcp = None
        self._running = False
        if self._kick is not None:
            self._kick.set()
        if self._drain_task is not None:
            await self._drain_task
            self._drain_task = None
        self.drain_all()
        for session, writer in list(self._peers):
            try:
                writer.write(
                    protocol.summary_frame(
                        {
                            "frames": session.frames,
                            "admitted": session.admitted,
                            "shed": session.shed,
                            "errors": session.errors,
                            "draining": True,
                        }
                    )
                )
                await writer.drain()
            except Exception:
                pass  # a dying client must not abort the shutdown
        for task in self._sessions:
            if not task.done():
                task.cancel()
        if self._sessions:
            await asyncio.gather(*self._sessions, return_exceptions=True)
        self._sessions = []

    def install_signal_handlers(self, loop=None) -> None:
        """Route SIGTERM/SIGINT to :meth:`shutdown` on ``loop``.

        Must be called from within a running event loop (or given
        one).  With these installed, ``kill <pid>`` and Ctrl-C
        (``KeyboardInterrupt``'s signal) trigger the graceful path
        instead of tearing the process down mid-round.
        """
        import signal as _signal

        loop = loop or asyncio.get_running_loop()
        for signum in (_signal.SIGTERM, _signal.SIGINT):
            loop.add_signal_handler(
                signum,
                lambda: asyncio.ensure_future(self.shutdown()),
            )

    # ------------------------------------------------------------------
    # Session handling
    # ------------------------------------------------------------------

    async def _read_exactly(
        self, reader: asyncio.StreamReader, count: int
    ) -> bytes:
        if self.config.idle_timeout_s is None:
            return await reader.readexactly(count)
        return await asyncio.wait_for(
            reader.readexactly(count), self.config.idle_timeout_s
        )

    async def _session_entry(self, reader, writer) -> None:
        self._count("serve.connections.opened")
        session = _Session()
        peer = (session, writer)
        self._peers.append(peer)
        try:
            await self._session_loop(session, reader, writer)
        except asyncio.IncompleteReadError:
            # A clean EOF between frames returns inside the loop; any
            # short read that escapes to here died mid-frame.
            self._count("serve.clients.disconnected_midframe")
        except (asyncio.TimeoutError, TimeoutError):
            self._count("serve.clients.slow")
        except (ConnectionResetError, BrokenPipeError):
            self._count("serve.clients.disconnected_midframe")
        except asyncio.CancelledError:
            pass
        finally:
            if peer in self._peers:
                self._peers.remove(peer)
            self._flush_raw_tail(session)
            try:
                writer.close()
            except Exception:
                pass
            self._count("serve.connections.closed")

    async def _session_loop(self, session, reader, writer) -> None:
        while True:
            try:
                header = await self._read_exactly(
                    reader, protocol.HEADER_BYTES
                )
            except asyncio.IncompleteReadError as error:
                if error.partial:
                    self._count("serve.clients.disconnected_midframe")
                return  # clean EOF between frames
            try:
                length, crc = protocol.split_header(header)
            except FrameProtocolError as error:
                # Framing is gone; nothing later on this stream can be
                # trusted.
                self._count("serve.protocol.errors")
                writer.write(protocol.err_frame(str(error)))
                await writer.drain()
                return
            body = await self._read_exactly(reader, length)
            self._count("serve.frames.received")
            self._count(
                "serve.bytes.received", protocol.HEADER_BYTES + length
            )
            try:
                frame = protocol.decode_body(body, crc)
            except FrameProtocolError as error:
                # Payload corruption: the frame boundary survived, so
                # refuse just this frame and keep the session.
                self._count("serve.decode.errors")
                session.errors += 1
                self._tenant_shed_mark(session)
                writer.write(protocol.err_frame(str(error)))
                await writer.drain()
                continue
            if not await self._dispatch(session, frame, writer):
                return

    async def _dispatch(self, session, frame, writer) -> bool:
        """Handle one frame; False ends the session."""
        if frame.type == protocol.FrameType.HELLO:
            return await self._on_hello(session, frame, writer)
        if frame.type == protocol.FrameType.BYE:
            writer.write(
                protocol.summary_frame(
                    {
                        "frames": session.frames,
                        "admitted": session.admitted,
                        "shed": session.shed,
                        "errors": session.errors,
                    }
                )
            )
            await writer.drain()
            return False
        if session.tenant is None:
            self._count("serve.protocol.errors")
            writer.write(protocol.err_frame("HELLO required first"))
            await writer.drain()
            return False
        if frame.type == protocol.FrameType.RAW:
            return await self._on_data(session, frame, writer, raw=True)
        if frame.type == protocol.FrameType.EVENTS:
            return await self._on_data(session, frame, writer, raw=False)
        self._count("serve.protocol.errors")
        writer.write(protocol.err_frame(f"unknown frame type {frame.type}"))
        await writer.drain()
        return False

    async def _on_hello(self, session, frame, writer) -> bool:
        try:
            document = protocol.decode_json(frame.payload)
            tenant = str(document.get("tenant", ""))
            mode = str(document.get("mode", protocol.MODE_EVENTS))
            self.manager.tenant(tenant)  # raises on unknown
            if mode not in protocol.MODES:
                raise FrameProtocolError(f"unknown mode {mode!r}")
            if tenant not in self.windows:
                self._attach_tenant(tenant)
            session.tenant = tenant
            session.mode = mode
            if mode == protocol.MODE_RAW:
                name = str(
                    document.get(
                        "frontend",
                        self.manager.tenant(tenant).deployment.config.frontend,
                    )
                )
                if name not in frontend_names():
                    raise FrameProtocolError(
                        f"unknown frontend {name!r}"
                    )
                session.raw = _RawIngest(
                    get_frontend(name), self.config.raw_cycles_per_event
                )
        except (FrameProtocolError, SocConfigError) as error:
            self._count("serve.protocol.errors")
            writer.write(protocol.err_frame(str(error)))
            await writer.drain()
            return False
        writer.write(protocol.ack_frame(0))
        await writer.drain()
        return True

    async def _on_data(self, session, frame, writer, raw: bool) -> bool:
        session.frames += 1
        if raw:
            if session.mode != protocol.MODE_RAW or session.raw is None:
                self._count("serve.protocol.errors")
                writer.write(
                    protocol.err_frame("RAW frame outside raw mode")
                )
                await writer.drain()
                return False
            self._count("serve.frames.raw")
            events: Sequence[BranchEvent] = session.raw.feed(frame.payload)
        else:
            if session.mode != protocol.MODE_EVENTS:
                self._count("serve.protocol.errors")
                writer.write(
                    protocol.err_frame("EVENTS frame outside events mode")
                )
                await writer.drain()
                return False
            self._count("serve.frames.events")
            try:
                events = protocol.decode_events_payload(frame.payload)
            except FrameProtocolError as error:
                self._count("serve.decode.errors")
                session.errors += 1
                self._tenant_shed_mark(session)
                writer.write(protocol.err_frame(str(error)))
                await writer.drain()
                return True
        response = self._admit(session, events)
        writer.write(response)
        await writer.drain()
        return True

    def _tenant_shed_mark(self, session) -> None:
        if session.tenant is not None:
            self.breakers[session.tenant].record_refused_frame()

    def _flush_raw_tail(self, session) -> None:
        """Session over: decode whatever the raw decoder still buffers.

        Tail events go through the same admission funnel; the client
        is gone, so the response frame is simply not sent.
        """
        if session.raw is None or session.tenant is None:
            return
        tail = session.raw.finish()
        session.raw = None
        if tail:
            self._admit(session, tail)

    # ------------------------------------------------------------------
    # Admission funnel
    # ------------------------------------------------------------------

    def _shed(self, session, reason: str, retry_after_ms: float) -> bytes:
        self._count(f"serve.shed.{reason}")
        session.shed += 1
        return protocol.shed_frame(reason, retry_after_ms)

    def _oldest_age_ns(self, now_ns: int) -> Optional[int]:
        """Age of the oldest queued batch across all windows."""
        oldest: Optional[int] = None
        for window in self.windows.values():
            admit_ns = window.oldest_admit_ns
            if admit_ns is not None and (
                oldest is None or admit_ns < oldest
            ):
                oldest = admit_ns
        return None if oldest is None else now_ns - oldest

    def _drain_if_overdue(self, now_ns: int) -> None:
        """Opportunistic drain on the admission path.

        The timer-driven drain loop starves when the event loop is
        saturated with session callbacks (one loop iteration can run
        for hundreds of milliseconds of synchronous frame work, and
        timers only fire between iterations).  Ingest traffic itself
        is the one signal guaranteed to keep arriving under that load,
        so admission checks the backlog's age and drains inline once
        it exceeds the drain budget — backlog age stays bounded no
        matter how busy the loop is.
        """
        age = self._oldest_age_ns(now_ns)
        if age is None:
            return
        budget_ns = self.config.drain_interval_s * 1e9
        if self.config.deadline_us is not None:
            budget_ns = min(budget_ns, self.config.deadline_us * 1e3 / 2)
        if age >= budget_ns:
            self.drain_once()

    def _admit(self, session, events: Sequence[BranchEvent]) -> bytes:
        """Run one frame's events through the layered funnel."""
        tenant = session.tenant
        assert tenant is not None
        self._drain_if_overdue(self.clock_ns())
        breaker = self.breakers[tenant]
        admitted, reason = breaker.admit_frame()
        if not admitted:
            retry_ms = self.config.breaker_retry_ms
            return self._shed(session, reason, retry_ms)
        if not events:
            session.admitted += 1
            return protocol.ack_frame(0)
        now_ns = self.clock_ns()
        bucket = self.buckets.get(tenant)
        if bucket is not None:
            ok, retry_s = bucket.admit(len(events), now_ns / 1e9)
            if not ok:
                breaker.record_shed()
                return self._shed(
                    session, "rate_limited", retry_s * 1e3
                )
        reason2, retry_s = self.admission.check(len(events))
        if reason2 is not None:
            breaker.record_shed()
            return self._shed(
                session,
                "deadline" if reason2 == "deadline" else "queue_depth",
                retry_s * 1e3,
            )
        deadline_ns = None
        if self.config.deadline_us is not None:
            deadline_ns = now_ns + int(self.config.deadline_us * 1e3)
        batch = IngestBatch(
            tenant=tenant,
            events=tuple(events),
            admit_ns=now_ns,
            deadline_ns=deadline_ns,
        )
        if not self.windows[tenant].offer(batch):
            breaker.record_shed()
            return self._shed(
                session,
                "buffer_full",
                self.admission.shed_hint_s() * 1e3,
            )
        self.admission.admitted(len(events))
        self._m_queue.set(self.admission.queued_events)
        self._count("serve.admitted.batches")
        self._count("serve.admitted.events", len(events))
        session.admitted += 1
        if (
            self._kick is not None
            and self.admission.queued_events
            >= self.config.drain_kick_events
        ):
            self._kick.set()
        return protocol.ack_frame(len(events))

    # ------------------------------------------------------------------
    # Drain loop
    # ------------------------------------------------------------------

    async def _drain_loop(self) -> None:
        assert self._kick is not None
        while self._running:
            try:
                await asyncio.wait_for(
                    self._kick.wait(), timeout=self.config.drain_interval_s
                )
            except (asyncio.TimeoutError, TimeoutError):
                pass
            self._kick.clear()
            if not self._running:
                return
            self.drain_once()
            # Yield so sessions can run even under sustained load.
            await asyncio.sleep(0)

    def drain_once(self) -> int:
        """Assemble and run one monitoring round; returns its events.

        Synchronous on purpose: ``SocManager.run_events`` is CPU-bound
        simulation, and a deterministic entry point lets the chaos
        harness control round grouping exactly.
        """
        now_ns = self.clock_ns()
        traces: Dict[str, Tuple[BranchEvent, ...]] = {}
        consumed: List[IngestBatch] = []
        for name, window in self.windows.items():
            fresh, stale = window.take(
                self.config.round_max_events, now_ns
            )
            for batch in stale:
                # Deadline-aware shed *after* admission: the batch went
                # stale while queued; serving it now would blow the
                # ingest budget for no benefit.
                self._count("serve.shed.stale")
                self.stale_events += len(batch.events)
                self.admission.shed_stale(len(batch.events))
                self.breakers[name].record_shed()
            if fresh:
                events: List[BranchEvent] = []
                for batch in fresh:
                    events.extend(batch.events)
                traces[name] = tuple(events)
                consumed.extend(fresh)
        total_events = sum(len(events) for events in traces.values())
        if traces:
            start_s = time.perf_counter()
            try:
                records = self.manager.run_events(traces)
            except Exception as error:  # the gate the soak pins to zero
                self.drain_errors.append(f"{type(error).__name__}: {error}")
                raise
            elapsed_s = time.perf_counter() - start_s
            done_ns = self.clock_ns()
            self.last_records = dict(records)
            for batch in consumed:
                latency = max(0, done_ns - batch.admit_ns)
                self._m_latency.observe(float(latency))
                if len(self.latencies_ns) < self._latency_cap:
                    self.latencies_ns.append(latency)
            # The serving rate admission predicts with is end-to-end
            # (inter-drain gap includes the loop's idle interval), not
            # just the dataplane's burst speed; the cap keeps one long
            # idle gap from cratering the estimate.
            if self._last_drain_done_ns is not None:
                gap_s = (done_ns - self._last_drain_done_ns) / 1e9
                elapsed_s = min(max(elapsed_s, gap_s), 0.25)
            self._last_drain_done_ns = done_ns
            self.admission.drained(total_events, elapsed_s)
            self._count("serve.rounds")
            self._count("serve.round.events", total_events)
            self._count(
                "serve.verdicts",
                sum(len(record) for record in records.values()),
            )
        health = self.manager.health()
        trips = recoveries = 0
        for name, breaker in self.breakers.items():
            before = (breaker.trips, breaker.recoveries)
            breaker.observe_round(health[name])
            trips += breaker.trips - before[0]
            recoveries += breaker.recoveries - before[1]
        if trips:
            self._count("serve.breaker.trips", trips)
        if recoveries:
            self._count("serve.breaker.recoveries", recoveries)
        # Round boundary: if the fleet migrated tenants during this
        # round's run_events (or a supervision sweep), adopt the new
        # placement in one swap before the next frame is admitted.
        self._sync_routes()
        self._m_queue.set(self.admission.queued_events)
        return total_events

    def drain_all(self, max_rounds: int = 1_000_000) -> int:
        """Drain until every window is empty; returns rounds run."""
        rounds = 0
        while any(not window.empty for window in self.windows.values()):
            if rounds >= max_rounds:
                raise ServeError("drain_all exceeded max_rounds")
            self.drain_once()
            rounds += 1
        return rounds
