"""Per-tenant rolling ingest windows.

Admitted batches wait here between the socket front door and the
drain loop.  The buffer is a :class:`repro.pipeline.port.Port`, so the
two bounded-buffer policies are exactly the dataplane's:

- ``STALL`` — a full window refuses the batch; the server turns the
  stall into a client-visible SHED with a retry-after hint
  (backpressure, nothing lost silently).
- ``DROP`` — a full window loses the incoming batch (freshness over
  completeness), with the loss visible in the port's drop counter and
  the ``serve.shed.buffer_full`` counter.

Each batch carries its admission wall-clock time and its deadline, so
the drain loop can shed work that went stale while queued.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.obs import MetricsRegistry, NULL_REGISTRY
from repro.pipeline.port import Port, PortPolicy
from repro.workloads.cfg import BranchEvent


@dataclass
class IngestBatch:
    """One admitted frame's worth of events, waiting to be drained."""

    tenant: str
    events: Tuple[BranchEvent, ...]
    #: Wall-clock admission time (``time.monotonic_ns`` domain).
    admit_ns: int
    #: Absolute staleness bound; ``None`` = never sheds as stale.
    deadline_ns: Optional[int] = None

    def stale(self, now_ns: int) -> bool:
        return self.deadline_ns is not None and now_ns > self.deadline_ns


class TenantWindow:
    """Bounded rolling window of one tenant's admitted batches."""

    def __init__(
        self,
        tenant: str,
        capacity_batches: int = 64,
        policy: PortPolicy = PortPolicy.STALL,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        metrics = metrics or NULL_REGISTRY
        self.tenant = tenant
        self.port: Port[IngestBatch] = Port(
            f"serve.window.{tenant}",
            capacity=capacity_batches,
            policy=policy,
            metrics=metrics,
        )
        self.queued_events = 0

    def offer(self, batch: IngestBatch) -> bool:
        """Admit one batch; False on stall (STALL) or drop (DROP)."""
        accepted = self.port.put(batch)
        if accepted:
            self.queued_events += len(batch.events)
        return accepted

    def take(
        self, max_events: int, now_ns: int
    ) -> Tuple[List[IngestBatch], List[IngestBatch]]:
        """Pop up to ``max_events`` worth of batches for one round.

        Returns ``(fresh, stale)`` — stale batches passed their
        deadline while queued and must be *accounted* as shed, never
        silently discarded.  Takes whole batches; stops before a batch
        that would overflow the round budget (unless nothing was taken
        yet, so one oversized batch cannot wedge the window).
        """
        fresh: List[IngestBatch] = []
        stale: List[IngestBatch] = []
        taken_events = 0
        while not self.port.empty:
            batch = self.port.peek()
            assert batch is not None
            if batch.stale(now_ns):
                self.port.get()
                self.queued_events -= len(batch.events)
                stale.append(batch)
                continue
            if fresh and taken_events + len(batch.events) > max_events:
                break
            self.port.get()
            self.queued_events -= len(batch.events)
            taken_events += len(batch.events)
            fresh.append(batch)
        return fresh, stale

    @property
    def oldest_admit_ns(self) -> Optional[int]:
        """Admission time of the head batch (None when empty)."""
        batch = self.port.peek()
        return None if batch is None else batch.admit_ns

    @property
    def depth(self) -> int:
        return self.port.depth

    @property
    def empty(self) -> bool:
        return self.port.empty
