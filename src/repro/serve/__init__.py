"""The streaming ingestion front door (see docs/SERVING.md).

Clients stream raw frontend byte streams or pre-decoded event batches
into per-tenant rolling windows; a drain loop feeds admitted work to
:class:`~repro.soc.manager.SocManager` monitoring rounds behind
layered overload controls (breaker -> token bucket -> deadline/queue
admission -> bounded window -> stale shed).
"""

from repro.serve.admission import (
    AdmissionController,
    BreakerPolicy,
    BreakerState,
    CircuitBreaker,
    TokenBucket,
)
from repro.serve.client import (
    ClientDisconnected,
    ServeClient,
    SimulatedClient,
)
from repro.serve.protocol import (
    Frame,
    FrameDecoder,
    FrameType,
    MODE_EVENTS,
    MODE_RAW,
)
from repro.serve.server import (
    SERVE_COUNTERS,
    SHED_REASONS,
    IngestServer,
    ServeConfig,
)
from repro.serve.windows import IngestBatch, TenantWindow

__all__ = [
    "AdmissionController",
    "BreakerPolicy",
    "BreakerState",
    "CircuitBreaker",
    "ClientDisconnected",
    "Frame",
    "FrameDecoder",
    "FrameType",
    "IngestBatch",
    "IngestServer",
    "MODE_EVENTS",
    "MODE_RAW",
    "SERVE_COUNTERS",
    "SHED_REASONS",
    "ServeClient",
    "ServeConfig",
    "SimulatedClient",
    "TenantWindow",
    "TokenBucket",
]
