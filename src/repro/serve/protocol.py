"""Length-prefixed wire protocol of the ingestion front door.

One connection carries one client session::

    HELLO {tenant, mode, frontend}     ->  ACK
    RAW <grammar bytes> | EVENTS <batch> -> ACK | SHED | ERR   (repeated)
    BYE                                ->  SUMMARY

Every frame is ``u32 length | u32 crc32(body) | body`` with
``body = u8 type | payload`` (little-endian).  The CRC makes payload
corruption detectable *without* losing frame synchronisation: a frame
whose body fails the checksum is refused and counted, and the stream
keeps going — exactly the behaviour the connection-chaos sweep pins
down.  A malformed *header* (oversized length, unknown type) is not
recoverable inside one TCP stream, so the server answers ERR and
closes the connection.

Pre-decoded event batches ride the durability layer's columnar
TRACE_CHUNK codec (:func:`repro.durability.journal.encode_trace_chunk`)
— one codec for the wire and the write-ahead journal.

Everything here is pure bytes-in/bytes-out (no asyncio), so the same
functions drive the async server, the simulated soak clients, and the
unit tests.
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.durability.journal import decode_trace_chunk, encode_trace_chunk
from repro.errors import FrameProtocolError
from repro.workloads.cfg import BranchEvent

_HEADER = struct.Struct("<II")

#: Frame header size in bytes (length + crc32).
HEADER_BYTES = _HEADER.size

#: Default ceiling on one frame's body; oversized lengths are treated
#: as protocol corruption, not as a request for a huge allocation.
MAX_FRAME_BYTES = 1 << 20


class FrameType:
    """Wire frame type codes (``u8``).  Values are on the wire — never
    renumber."""

    HELLO = 1
    RAW = 2
    EVENTS = 3
    BYE = 4
    ACK = 16
    SHED = 17
    ERR = 18
    SUMMARY = 19

    CLIENT_TYPES = (HELLO, RAW, EVENTS, BYE)
    SERVER_TYPES = (ACK, SHED, ERR, SUMMARY)


#: Session ingest modes (HELLO ``mode`` field).
MODE_RAW = "raw"
MODE_EVENTS = "events"
MODES = (MODE_RAW, MODE_EVENTS)


@dataclass(frozen=True)
class Frame:
    """One decoded frame."""

    type: int
    payload: bytes


def encode_frame(frame_type: int, payload: bytes = b"") -> bytes:
    """Encode one frame into its wire representation."""
    body = bytes([frame_type]) + payload
    if len(body) > MAX_FRAME_BYTES:
        raise FrameProtocolError(
            f"frame body {len(body)} bytes exceeds {MAX_FRAME_BYTES}"
        )
    return _HEADER.pack(len(body), zlib.crc32(body)) + body


def decode_body(body: bytes, crc: int) -> Frame:
    """Validate and split one frame body (the bytes after the header)."""
    if zlib.crc32(body) != crc:
        raise FrameProtocolError("frame body failed its checksum")
    if not body:
        raise FrameProtocolError("empty frame body")
    return Frame(type=body[0], payload=body[1:])


def split_header(header: bytes) -> Tuple[int, int]:
    """Unpack a frame header; returns ``(length, crc)``."""
    if len(header) != HEADER_BYTES:
        raise FrameProtocolError(
            f"frame header is {len(header)} bytes, expected {HEADER_BYTES}"
        )
    length, crc = _HEADER.unpack(header)
    if not 0 < length <= MAX_FRAME_BYTES:
        raise FrameProtocolError(
            f"frame length {length} outside (0, {MAX_FRAME_BYTES}]"
        )
    return length, crc


class FrameDecoder:
    """Incremental frame reassembly for byte-at-a-time transports."""

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> List[Frame]:
        """Absorb bytes; returns every frame completed by them.

        Raises :class:`FrameProtocolError` on a bad header or checksum
        — framing is unrecoverable at that point.
        """
        self._buffer += data
        frames: List[Frame] = []
        while True:
            if len(self._buffer) < HEADER_BYTES:
                return frames
            length, crc = split_header(bytes(self._buffer[:HEADER_BYTES]))
            if len(self._buffer) < HEADER_BYTES + length:
                return frames
            body = bytes(self._buffer[HEADER_BYTES:HEADER_BYTES + length])
            del self._buffer[:HEADER_BYTES + length]
            frames.append(decode_body(body, crc))

    @property
    def pending_bytes(self) -> int:
        return len(self._buffer)


# ----------------------------------------------------------------------
# Payload codecs
# ----------------------------------------------------------------------


def encode_json(document: Dict[str, object]) -> bytes:
    return json.dumps(document, sort_keys=True).encode("utf-8")


def decode_json(payload: bytes) -> Dict[str, object]:
    try:
        document = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise FrameProtocolError(f"bad JSON payload: {error}") from error
    if not isinstance(document, dict):
        raise FrameProtocolError("JSON payload must be an object")
    return document


def hello_frame(
    tenant: str, mode: str = MODE_EVENTS, frontend: Optional[str] = None
) -> bytes:
    document: Dict[str, object] = {"tenant": tenant, "mode": mode}
    if frontend is not None:
        document["frontend"] = frontend
    return encode_frame(FrameType.HELLO, encode_json(document))


def events_frame(events: Sequence[BranchEvent], sequence: int = 0) -> bytes:
    """Pack a pre-decoded event batch (columnar TRACE_CHUNK codec)."""
    return encode_frame(
        FrameType.EVENTS, encode_trace_chunk("", 0, sequence, events)
    )


def decode_events_payload(payload: bytes) -> Tuple[BranchEvent, ...]:
    """Inverse of :func:`events_frame`'s payload packing."""
    try:
        return decode_trace_chunk(payload).events
    except Exception as error:  # codec raises Journal/struct errors
        raise FrameProtocolError(
            f"undecodable event batch: {error}"
        ) from error


def raw_frame(stream: bytes) -> bytes:
    return encode_frame(FrameType.RAW, stream)


def bye_frame() -> bytes:
    return encode_frame(FrameType.BYE)


def ack_frame(accepted_events: int) -> bytes:
    return encode_frame(
        FrameType.ACK, encode_json({"accepted_events": accepted_events})
    )


def shed_frame(reason: str, retry_after_ms: float) -> bytes:
    """Overload refusal: *why* plus a client-visible backoff hint."""
    return encode_frame(
        FrameType.SHED,
        encode_json(
            {"reason": reason, "retry_after_ms": round(retry_after_ms, 3)}
        ),
    )


def err_frame(error: str) -> bytes:
    return encode_frame(FrameType.ERR, encode_json({"error": error}))


def summary_frame(stats: Dict[str, object]) -> bytes:
    return encode_frame(FrameType.SUMMARY, encode_json(stats))
