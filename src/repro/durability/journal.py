"""Segmented write-ahead journal for ingested trace chunks.

Every trace round a :class:`~repro.soc.manager.SocManager` processes is
journalled *before* it is fed to the dataplane, so a crash at any point
leaves one of two on-disk states:

- the round's records end with a ``ROUND_COMMIT`` — the round was fully
  processed and will be *replayed* on recovery, or
- the round's records are missing the commit (possibly torn mid-record)
  — the round never affected session state and is *discarded*; the
  caller re-feeds it from :attr:`SocManager.next_round`.

Record wire format (all integers little-endian)::

    [u32 length][u32 crc32][u64 sequence][u8 kind][payload ...]
    '-- header ----------'  '-- body: length bytes, crc32 over body --'

Sequence numbers are global and strictly monotonic across segments, so
a gap (a valid-CRC record with the wrong sequence) is detected as
corruption rather than silently replayed.  A *torn tail* — a partial
record at the end of the **last** segment, the normal result of a crash
mid-write — is tolerated: the scan stops there and the
:class:`FileJournal` physically truncates it on reopen.  Any invalid
bytes elsewhere raise :class:`~repro.errors.JournalCorruptionError`.

Segments are rolled at checkpoints (:meth:`Journal.roll`), so segments
older than the newest ``CHECKPOINT`` record can be pruned offline.
"""

from __future__ import annotations

import json
import os
import re
import struct
import zlib
from dataclasses import dataclass
from enum import IntEnum
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import JournalCorruptionError
from repro.obs import NULL_REGISTRY
from repro.workloads.cfg import BranchEvent, BranchKind

#: ``[u32 length][u32 crc32]`` record header.
_HEADER = struct.Struct("<II")

#: ``[u64 sequence][u8 kind]`` body prefix (followed by the payload).
_BODY_PREFIX = struct.Struct("<QB")

#: Smallest possible record: header plus an empty-payload body.
MIN_RECORD_BYTES = _HEADER.size + _BODY_PREFIX.size


class RecordKind(IntEnum):
    """Journal record taxonomy.  Values are on-disk — never renumber."""

    ROUND_BEGIN = 1
    TRACE_CHUNK = 2
    ROUND_COMMIT = 3
    CHECKPOINT = 4


@dataclass(frozen=True)
class JournalRecord:
    """One validated record read back from the journal."""

    sequence: int
    kind: RecordKind
    payload: bytes
    segment: int


def encode_record(sequence: int, kind: int, payload: bytes) -> bytes:
    """Encode one record into its on-disk byte representation."""
    body = _BODY_PREFIX.pack(sequence, int(kind)) + payload
    return _HEADER.pack(len(body), zlib.crc32(body)) + body


def record_size(payload_length: int) -> int:
    """Total encoded bytes of a record with this payload length."""
    return _HEADER.size + _BODY_PREFIX.size + payload_length


def write_record_into(
    buffer,
    offset: int,
    sequence: int,
    kind: int,
    payload,
    payload_crc: Optional[int] = None,
) -> int:
    """Write one journal-format record into a writable buffer.

    The shared-memory ring transport's slot writer: same header, CRC,
    and sequence layout as the on-disk journal, but written in place
    (the payload bytes are copied exactly once — no intermediate
    record object).  ``payload`` may also be a list/tuple of buffers,
    written back-to-back as one record body (scatter-gather: a whole
    round's chunks become one slot without an intermediate
    concatenation).  Returns the record's total size.

    When ``payload_crc`` is supplied, the record CRC is composed
    *payload-first* — ``crc32(prefix, payload_crc)``, i.e. the CRC of
    ``payload || prefix`` — so a caller that tagged the payload once
    (``zlib.crc32`` chained over the parts, e.g. at TRACE_CHUNK
    assembly) never re-reads it per write; only the 9-byte prefix is
    hashed here.  Coverage is identical, the composition order is the
    only difference; readers must pass the matching
    ``payload_first_crc`` flag to :func:`read_record_from`.
    """
    parts = (
        payload if isinstance(payload, (list, tuple)) else (payload,)
    )
    length = sum(len(part) for part in parts)
    prefix = _BODY_PREFIX.pack(sequence, int(kind))
    if payload_crc is None:
        crc = zlib.crc32(prefix)
        for part in parts:
            crc = zlib.crc32(part, crc)
    else:
        crc = zlib.crc32(prefix, payload_crc)
    total = record_size(length)
    _HEADER.pack_into(buffer, offset, _BODY_PREFIX.size + length, crc)
    start = offset + _HEADER.size
    buffer[start:start + _BODY_PREFIX.size] = prefix
    start += _BODY_PREFIX.size
    for part in parts:
        buffer[start:start + len(part)] = part
        start += len(part)
    return total


def read_record_from(
    buffer,
    offset: int,
    expected_sequence: Optional[int] = None,
    payload_first_crc: bool = False,
    payload_crc: Optional[int] = None,
    expected_payload_length: Optional[int] = None,
) -> Tuple[int, int, "memoryview", int]:
    """Validate and read one record out of a buffer without copying.

    The shared-memory ring transport's slot reader.  Returns
    ``(sequence, kind, payload_view, total_bytes)`` where
    ``payload_view`` is a zero-copy view into ``buffer``.  Raises
    :class:`~repro.errors.JournalCorruptionError` on truncation, CRC
    mismatch, or an unexpected sequence number — the exact torn-record
    taxonomy the WAL segment scan uses, applied to a torn ring slot.
    ``payload_first_crc`` selects the payload-first CRC composition
    :func:`write_record_into` uses for pre-tagged payloads.

    When the reader already holds the writer's payload tag through a
    trusted side channel (``payload_crc`` — the ring transport carries
    it in the slot descriptor on the reliable pipe), the stored CRC is
    checked against ``crc32(prefix, payload_crc)`` instead of
    re-hashing the payload: every header tear — truncated, stale,
    misdirected, or bit-flipped header — is still detected, at the
    cost of hashing 9 bytes rather than the whole body.  The ``length``
    field sits outside the stored CRC's coverage, so tagged readers
    must also pass ``expected_payload_length`` (carried in the same
    slot descriptor): a torn length with an intact body would otherwise
    slip past the tiered check and yield a wrong-sized payload view.
    """
    view = memoryview(buffer)
    size = len(view)
    if offset < 0 or size - offset < _HEADER.size:
        raise JournalCorruptionError(
            f"record at byte {offset}: incomplete record header"
        )
    length, crc = _HEADER.unpack_from(view, offset)
    body_start = offset + _HEADER.size
    if length < _BODY_PREFIX.size:
        raise JournalCorruptionError(
            f"record at byte {offset}: body length {length} below minimum"
        )
    if size - body_start < length:
        raise JournalCorruptionError(
            f"record at byte {offset}: incomplete record body"
        )
    if expected_payload_length is not None:
        expected_body = _BODY_PREFIX.size + expected_payload_length
        if length != expected_body:
            raise JournalCorruptionError(
                f"record at byte {offset}: body length mismatch "
                f"(expected {expected_body}, found {length})"
            )
    body = view[body_start:body_start + length]
    if payload_first_crc and payload_crc is not None:
        computed = zlib.crc32(body[:_BODY_PREFIX.size], payload_crc)
    elif payload_first_crc:
        computed = zlib.crc32(
            body[:_BODY_PREFIX.size],
            zlib.crc32(body[_BODY_PREFIX.size:]),
        )
    else:
        computed = zlib.crc32(body)
    if computed != crc:
        raise JournalCorruptionError(
            f"record at byte {offset}: CRC mismatch"
        )
    sequence, kind = _BODY_PREFIX.unpack_from(body)
    if expected_sequence is not None and sequence != expected_sequence:
        raise JournalCorruptionError(
            f"record at byte {offset}: sequence gap "
            f"(expected {expected_sequence}, found {sequence})"
        )
    return sequence, kind, body[_BODY_PREFIX.size:], _HEADER.size + length


def _scan_segment(
    data: bytes,
    segment_index: int,
    expected_sequence: int,
    *,
    is_last: bool,
) -> Tuple[List[JournalRecord], int]:
    """Validate one segment, returning ``(records, valid_byte_count)``.

    Stops at the first invalid record.  In the last segment that is a
    tolerated torn tail; anywhere else it is corruption.
    """
    records: List[JournalRecord] = []
    offset = 0
    size = len(data)

    def _invalid(reason: str) -> Tuple[List[JournalRecord], int]:
        if is_last:
            return records, offset
        raise JournalCorruptionError(
            f"journal segment {segment_index} invalid at byte {offset}: "
            f"{reason}"
        )

    while offset < size:
        if size - offset < _HEADER.size:
            return _invalid("incomplete record header")
        length, crc = _HEADER.unpack_from(data, offset)
        body_start = offset + _HEADER.size
        if length < _BODY_PREFIX.size:
            return _invalid(f"body length {length} below minimum")
        if size - body_start < length:
            return _invalid("incomplete record body")
        body = bytes(data[body_start:body_start + length])
        if zlib.crc32(body) != crc:
            return _invalid("CRC mismatch")
        sequence, kind = _BODY_PREFIX.unpack_from(body)
        if sequence != expected_sequence:
            # A valid-CRC record with the wrong sequence cannot be a
            # torn write: records are missing.  Always corruption.
            raise JournalCorruptionError(
                f"journal segment {segment_index}: sequence gap "
                f"(expected {expected_sequence}, found {sequence})"
            )
        try:
            record_kind = RecordKind(kind)
        except ValueError:
            return _invalid(f"unknown record kind {kind}")
        records.append(
            JournalRecord(
                sequence=sequence,
                kind=record_kind,
                payload=body[_BODY_PREFIX.size:],
                segment=segment_index,
            )
        )
        expected_sequence += 1
        offset = body_start + length
    return records, offset


class Journal:
    """Backend-agnostic journal core (append, roll, validated scan)."""

    def __init__(self, metrics=NULL_REGISTRY) -> None:
        self.metrics = metrics
        self._m_appends = metrics.counter("durability.journal.appends")
        self._m_bytes = metrics.counter("durability.journal.bytes")
        self._m_rolls = metrics.counter("durability.journal.rolls")
        self._m_torn = metrics.counter("durability.journal.torn_drops")
        self._next_sequence = 0
        self._recover_tail()

    # -- backend interface --------------------------------------------------

    def _segment_count(self) -> int:
        raise NotImplementedError

    def _segment_bytes(self, index: int) -> bytes:
        raise NotImplementedError

    def _append_bytes(self, data: bytes) -> None:
        """Append raw bytes to the last segment."""
        raise NotImplementedError

    def _start_segment(self) -> None:
        raise NotImplementedError

    def _truncate_last_segment(self, valid_bytes: int) -> None:
        """Discard the torn tail of the last segment (crash cleanup)."""
        raise NotImplementedError

    # -- public API ---------------------------------------------------------

    @property
    def next_sequence(self) -> int:
        return self._next_sequence

    def append(self, kind: int, payload: bytes) -> int:
        """Write one record; returns its sequence number."""
        sequence = self._next_sequence
        data = encode_record(sequence, kind, payload)
        self._append_bytes(data)
        self._next_sequence += 1
        self._m_appends.inc()
        self._m_bytes.inc(len(data))
        return sequence

    def append_torn(self, kind: int, payload: bytes, keep_bytes: int) -> None:
        """Write a genuinely torn record: only the first ``keep_bytes``.

        Models a crash mid-``write(2)``.  The record never commits, so
        the journal's sequence counter does not advance; a subsequent
        reopen drops the partial bytes.
        """
        data = encode_record(self._next_sequence, kind, payload)
        if not 0 <= keep_bytes < len(data):
            raise ValueError(
                f"keep_bytes must be in [0, {len(data)}), got {keep_bytes}"
            )
        self._append_bytes(data[:keep_bytes])

    def roll(self) -> None:
        """Start a new segment (called after writing a checkpoint)."""
        self._start_segment()
        self._m_rolls.inc()

    def records(self) -> List[JournalRecord]:
        """Re-scan and validate every segment, oldest first."""
        records: List[JournalRecord] = []
        count = self._segment_count()
        expected = 0
        for index in range(count):
            segment_records, _ = _scan_segment(
                self._segment_bytes(index),
                index,
                expected,
                is_last=(index == count - 1),
            )
            records.extend(segment_records)
            expected += len(segment_records)
        return records

    # -- shared recovery ----------------------------------------------------

    def _recover_tail(self) -> None:
        """Establish ``next_sequence`` and drop a torn tail on reopen."""
        count = self._segment_count()
        expected = 0
        for index in range(count):
            data = self._segment_bytes(index)
            is_last = index == count - 1
            segment_records, valid = _scan_segment(
                data, index, expected, is_last=is_last
            )
            expected += len(segment_records)
            if is_last and valid < len(data):
                self._m_torn.inc(len(data) - valid)
                self._truncate_last_segment(valid)
        self._next_sequence = expected


class MemoryJournal(Journal):
    """In-memory backend — fast tests and crash-free ephemeral runs."""

    def __init__(self, metrics=NULL_REGISTRY) -> None:
        self._segments: List[bytearray] = [bytearray()]
        super().__init__(metrics=metrics)

    def _segment_count(self) -> int:
        return len(self._segments)

    def _segment_bytes(self, index: int) -> bytes:
        return bytes(self._segments[index])

    def _append_bytes(self, data: bytes) -> None:
        self._segments[-1].extend(data)

    def _start_segment(self) -> None:
        self._segments.append(bytearray())

    def _truncate_last_segment(self, valid_bytes: int) -> None:
        del self._segments[-1][valid_bytes:]


#: File name pattern for on-disk segments.
_SEGMENT_RE = re.compile(r"^segment-(\d{8})\.wal$")


def _segment_name(index: int) -> str:
    return f"segment-{index:08d}.wal"


class FileJournal(Journal):
    """Directory-of-segments backend (``segment-00000000.wal``, ...).

    Reopening an existing directory validates every segment, truncates
    a torn tail on the newest one, and continues appending with the
    next sequence number — the crash-recovery entry point.
    """

    def __init__(self, directory: str, metrics=NULL_REGISTRY) -> None:
        self.directory = str(directory)
        os.makedirs(self.directory, exist_ok=True)
        self._paths = self._discover_segments()
        if not self._paths:
            first = os.path.join(self.directory, _segment_name(0))
            with open(first, "wb"):
                pass
            self._paths = [first]
        super().__init__(metrics=metrics)

    def _discover_segments(self) -> List[str]:
        found: List[Tuple[int, str]] = []
        for name in os.listdir(self.directory):
            match = _SEGMENT_RE.match(name)
            if match:
                found.append(
                    (int(match.group(1)), os.path.join(self.directory, name))
                )
        found.sort()
        return [path for _, path in found]

    def _segment_count(self) -> int:
        return len(self._paths)

    def _segment_bytes(self, index: int) -> bytes:
        with open(self._paths[index], "rb") as handle:
            return handle.read()

    def _append_bytes(self, data: bytes) -> None:
        with open(self._paths[-1], "ab") as handle:
            handle.write(data)

    def _start_segment(self) -> None:
        last = os.path.basename(self._paths[-1])
        index = int(_SEGMENT_RE.match(last).group(1)) + 1
        path = os.path.join(self.directory, _segment_name(index))
        with open(path, "wb"):
            pass
        self._paths.append(path)

    def _truncate_last_segment(self, valid_bytes: int) -> None:
        with open(self._paths[-1], "r+b") as handle:
            handle.truncate(valid_bytes)


# ---------------------------------------------------------------------------
# Payload codecs
# ---------------------------------------------------------------------------

def encode_json_payload(doc: dict) -> bytes:
    """Canonical JSON payload for BEGIN / COMMIT / CHECKPOINT records."""
    return json.dumps(doc, sort_keys=True, separators=(",", ":")).encode()


def decode_json_payload(payload: bytes) -> dict:
    return json.loads(payload.decode())


@dataclass(frozen=True)
class TraceChunk:
    """Decoded ``TRACE_CHUNK`` payload."""

    tenant: str
    round_index: int
    chunk_index: int
    events: Tuple[BranchEvent, ...]


def encode_trace_chunk(
    tenant: str,
    round_index: int,
    chunk_index: int,
    events: Sequence[BranchEvent],
) -> bytes:
    """Pack a slice of one tenant's trace into a ``TRACE_CHUNK`` payload.

    Layout: one JSON header line (tenant, round, chunk, count, and a
    self-describing :class:`BranchKind` *name palette* — the enum's
    declaration order is never relied upon on disk), then the packed
    columns: ``cycle``/``source``/``target`` as little-endian int64 and
    ``kind``/``taken`` as uint8.
    """
    count = len(events)
    palette: List[str] = []
    palette_index = {}
    kind_codes = np.empty(count, dtype=np.uint8)
    for position, event in enumerate(events):
        name = event.kind.name
        code = palette_index.get(name)
        if code is None:
            code = len(palette)
            palette_index[name] = code
            palette.append(name)
        kind_codes[position] = code
    header = encode_json_payload(
        {
            "tenant": tenant,
            "round": round_index,
            "chunk": chunk_index,
            "count": count,
            "kinds": palette,
        }
    )
    cycles = np.fromiter(
        (event.cycle for event in events), dtype="<i8", count=count
    )
    sources = np.fromiter(
        (event.source for event in events), dtype="<i8", count=count
    )
    targets = np.fromiter(
        (event.target for event in events), dtype="<i8", count=count
    )
    taken = np.fromiter(
        (event.taken for event in events), dtype=np.uint8, count=count
    )
    return b"".join(
        (
            header,
            b"\n",
            cycles.tobytes(),
            sources.tobytes(),
            targets.tobytes(),
            kind_codes.tobytes(),
            taken.tobytes(),
        )
    )


def _find_newline(payload) -> int:
    """``payload.find(b"\\n")`` for bytes *or* buffer-protocol views.

    The shared-memory transport hands chunk payloads over as
    memoryviews (no ``find``); the header line is short, so scan it in
    small steps instead of materialising the whole payload.
    """
    if isinstance(payload, (bytes, bytearray)):
        return payload.find(b"\n")
    view = memoryview(payload)
    step = 512
    for start in range(0, len(view), step):
        position = bytes(view[start:start + step]).find(b"\n")
        if position >= 0:
            return start + position
    return -1


def decode_trace_chunk(payload) -> TraceChunk:
    """Inverse of :func:`encode_trace_chunk`.

    Accepts ``bytes`` or any buffer-protocol object (e.g. a
    memoryview into a shared-memory ring slot); with a view input the
    packed columns are mapped as zero-copy numpy views over the
    underlying buffer.
    """
    newline = _find_newline(payload)
    if newline < 0:
        raise JournalCorruptionError("trace chunk missing header line")
    header = decode_json_payload(bytes(payload[:newline]))
    count = int(header["count"])
    kinds = [BranchKind[name] for name in header["kinds"]]
    body = payload[newline + 1:]
    expected = count * (3 * 8 + 2)
    if len(body) != expected:
        raise JournalCorruptionError(
            f"trace chunk body is {len(body)} bytes, expected {expected}"
        )
    cycles = np.frombuffer(body, dtype="<i8", count=count, offset=0)
    sources = np.frombuffer(body, dtype="<i8", count=count, offset=8 * count)
    targets = np.frombuffer(body, dtype="<i8", count=count, offset=16 * count)
    kind_codes = np.frombuffer(
        body, dtype=np.uint8, count=count, offset=24 * count
    )
    taken = np.frombuffer(
        body, dtype=np.uint8, count=count, offset=25 * count
    )
    events = tuple(
        BranchEvent(
            cycle=int(cycles[i]),
            source=int(sources[i]),
            target=int(targets[i]),
            kind=kinds[kind_codes[i]],
            taken=bool(taken[i]),
        )
        for i in range(count)
    )
    return TraceChunk(
        tenant=str(header["tenant"]),
        round_index=int(header["round"]),
        chunk_index=int(header["chunk"]),
        events=events,
    )
