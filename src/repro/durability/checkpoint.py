"""Checkpoint capture/restore for :class:`repro.soc.manager.SocManager`.

A checkpoint is taken at a *round boundary*, which buys two structural
guarantees: the dataplanes are quiescent (no in-flight batches — the
pipeline refuses to export otherwise) and all per-round state is about
to be reset anyway (``TenantRuntime.reset`` runs at the top of every
round).  What must survive is the *lifetime* state: the manager's
round counter, the arbiter's per-lane watchdog trip counts, each
tenant's health-machine fields, the MCM's accumulated records and
counters, the session dataplane/encoder carry state, and the metrics
registries.  Models and drivers are deliberately absent — they are
code plus weights, re-supplied at :meth:`SocManager.recover` time.

The payload is a plain JSON-able dict so it rides in a single
:class:`~repro.durability.journal.RecordKind.CHECKPOINT` record.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import JournalCorruptionError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.soc.manager import SocManager, TenantRuntime

#: Bump on any incompatible change to the checkpoint layout.
CHECKPOINT_VERSION = 1


def capture_tenant_state(runtime: "TenantRuntime") -> dict:
    """Snapshot one tenant's lifetime state as a JSON-able dict.

    This per-tenant document is also the fleet's migration-handoff
    unit (docs/FLEET.md): a tenant evicted from a crash-looping shard
    is re-admitted on a sibling by building a fresh runtime from its
    deployment and restoring this document into it.
    """
    return {
        "name": runtime.name,
        "health": runtime.health.value,
        "crashes": runtime.crashes,
        "bad_rounds": runtime._bad_rounds,
        "clean_rounds": runtime._clean_rounds,
        "quarantined_rounds": runtime._quarantined_rounds,
        "seen_loss": runtime._seen_loss,
        "seen_trips": runtime._seen_trips,
        "observed_records": runtime._observed_records,
        "mcm": runtime.mcm.export_state(),
        "session": {
            "pipeline": runtime.pipeline.export_state(),
            "encoder": runtime.encoder.export_state(),
        },
        "metrics": runtime.metrics.export_state(),
    }


def restore_tenant_state(runtime: "TenantRuntime", doc: dict) -> None:
    """Restore one tenant runtime from its captured document.

    The runtime must have been built from the same deployment (same
    model, converter, detector, config) that was live at capture time;
    the document carries state, not code.
    """
    from repro.soc.manager import TenantHealth

    if doc["name"] != runtime.name:
        raise JournalCorruptionError(
            f"tenant document {doc['name']!r} restored into runtime "
            f"{runtime.name!r}"
        )
    runtime.health = TenantHealth(doc["health"])
    runtime.crashes = doc["crashes"]
    runtime._bad_rounds = doc["bad_rounds"]
    runtime._clean_rounds = doc["clean_rounds"]
    runtime._quarantined_rounds = doc["quarantined_rounds"]
    runtime._seen_loss = doc["seen_loss"]
    runtime._seen_trips = doc["seen_trips"]
    runtime._observed_records = doc["observed_records"]
    runtime.mcm.restore_state(doc["mcm"])
    runtime.pipeline.restore_state(doc["session"]["pipeline"])
    runtime.encoder.restore_state(doc["session"]["encoder"])
    runtime.metrics.restore_state(doc["metrics"])


def capture_checkpoint(manager: "SocManager") -> dict:
    """Snapshot the manager's lifetime state as a JSON-able dict."""
    tenants = [
        capture_tenant_state(runtime) for runtime in manager.tenants
    ]
    return {
        "version": CHECKPOINT_VERSION,
        "round": manager._round,
        "watchdog_trips": list(manager.arbiter.watchdog_trips),
        "tenants": tenants,
        "metrics": manager.metrics.export_state(),
    }


def restore_checkpoint(manager: "SocManager", state: dict) -> None:
    """Restore a freshly built manager from a checkpoint dict.

    The manager must have been constructed with the same deployments
    (same tenant names, same order) that were live at capture time —
    checkpoints carry state, not topology.
    """
    version = state.get("version")
    if version != CHECKPOINT_VERSION:
        raise JournalCorruptionError(
            f"unsupported checkpoint version {version!r}"
        )
    names = [doc["name"] for doc in state["tenants"]]
    live = [runtime.name for runtime in manager.tenants]
    if names != live:
        raise JournalCorruptionError(
            f"checkpoint tenants {names} do not match deployments {live}"
        )
    manager._round = state["round"]
    trips = state["watchdog_trips"]
    if len(trips) != len(manager.arbiter.watchdog_trips):
        raise JournalCorruptionError(
            "checkpoint watchdog state does not match lane count"
        )
    manager.arbiter.watchdog_trips[:] = [int(t) for t in trips]
    manager.metrics.restore_state(state["metrics"])
    for runtime, doc in zip(manager.tenants, state["tenants"]):
        restore_tenant_state(runtime, doc)
