"""Durability: write-ahead journal, checkpoints, crash recovery.

Three cooperating mechanisms (docs/DURABILITY.md):

- :mod:`repro.durability.journal` — a segmented write-ahead log of
  every ingested trace chunk, length-prefixed, CRC32-tagged and
  sequence-numbered, tolerant of a torn tail on reopen.
- :mod:`repro.durability.checkpoint` — periodic snapshots of the
  manager's lifetime state, stored as ordinary journal records so one
  file set carries both.
- :meth:`repro.soc.manager.SocManager.recover` — rebuilds a manager
  from deployments + journal: restore the newest checkpoint, replay
  every *committed* round after it (deterministically — replayed
  inference records are byte-identical to the uninterrupted run), and
  discard an uncommitted tail for the caller to re-feed.
"""

from repro.durability.checkpoint import (
    CHECKPOINT_VERSION,
    capture_checkpoint,
    restore_checkpoint,
)
from repro.durability.journal import (
    FileJournal,
    Journal,
    JournalRecord,
    MemoryJournal,
    MIN_RECORD_BYTES,
    RecordKind,
    TraceChunk,
    decode_json_payload,
    decode_trace_chunk,
    encode_json_payload,
    encode_record,
    encode_trace_chunk,
)

__all__ = [
    "CHECKPOINT_VERSION",
    "FileJournal",
    "Journal",
    "JournalRecord",
    "MemoryJournal",
    "MIN_RECORD_BYTES",
    "RecordKind",
    "TraceChunk",
    "capture_checkpoint",
    "decode_json_payload",
    "decode_trace_chunk",
    "encode_json_payload",
    "encode_record",
    "encode_trace_chunk",
    "restore_checkpoint",
]
