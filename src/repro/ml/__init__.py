"""ML models for branch-behavior anomaly inference.

Two deployed models, following the paper's choices:

- :mod:`repro.ml.elm` — Extreme Learning Machine over system-call
  histogram features (after Creech & Hu [2]): a fixed random hidden
  layer; training only fits the hidden-space statistics and a ridge
  readout, which is what makes ELM "more lightweight than a
  traditional MLP while providing similar accuracy".
- :mod:`repro.ml.lstm` — LSTM over general branch sequences (after
  Yi et al. [8]): next-branch prediction; anomaly score is the
  negative log-likelihood of the observed sequence.

Baselines (:mod:`repro.ml.mlp`, :mod:`repro.ml.ngram`) and the
deployment path (:mod:`repro.ml.kernels` compiles trained models into
MIAOW kernels, :mod:`repro.ml.quantize` provides the fixed-point
variant) complete the stack.
"""

from repro.ml.features import (
    histogram_features,
    normalize_histogram,
    one_hot,
)
from repro.ml.elm import ExtremeLearningMachine
from repro.ml.lstm import LstmModel
from repro.ml.mlp import MlpAutoencoder
from repro.ml.ngram import NgramModel
from repro.ml.detector import ThresholdDetector, DetectionMetrics, roc_auc

__all__ = [
    "histogram_features",
    "normalize_histogram",
    "one_hot",
    "ExtremeLearningMachine",
    "LstmModel",
    "MlpAutoencoder",
    "NgramModel",
    "ThresholdDetector",
    "DetectionMetrics",
    "roc_auc",
]
