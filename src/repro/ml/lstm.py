"""LSTM next-branch model, implemented from scratch in numpy.

Follows the mimicry-resilient branch-modeling approach of [8]: train a
next-ID predictor on normal branch sequences; at inference each
observed branch is scored by the negative log-probability the model
assigned to it, so sequences of individually-legitimate branches in an
order the program never produces score high.

Training is full BPTT over fixed-length windows with Adam; inference
additionally offers a *stateful streaming* mode, which is what the GPU
deployment uses (hidden/cell state carried in device memory between
inferences).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.errors import ModelError
from repro.ml.features import log_softmax, sigmoid
from repro.utils.rng import derive_seed, make_rng


@dataclass
class LstmWeights:
    """Deployment weights in float32.  Gate order is [i, f, g, o]."""

    w_x: np.ndarray     # (4H, V)
    u: np.ndarray       # (4H, H)
    b: np.ndarray       # (4H,)
    w_out: np.ndarray   # (V, H)
    b_out: np.ndarray   # (V,)


@dataclass
class LstmState:
    """Streaming inference state."""

    h: np.ndarray
    c: np.ndarray
    log_probs: np.ndarray  # model's prediction for the *next* ID


class _Adam:
    """Minimal Adam optimizer over a dict of parameter arrays."""

    def __init__(self, params: Dict[str, np.ndarray], lr: float) -> None:
        self.lr = lr
        self.beta1, self.beta2, self.eps = 0.9, 0.999, 1e-8
        self.m = {k: np.zeros_like(v) for k, v in params.items()}
        self.v = {k: np.zeros_like(v) for k, v in params.items()}
        self.t = 0

    def step(
        self, params: Dict[str, np.ndarray], grads: Dict[str, np.ndarray]
    ) -> None:
        self.t += 1
        correction1 = 1 - self.beta1 ** self.t
        correction2 = 1 - self.beta2 ** self.t
        for key, grad in grads.items():
            self.m[key] = self.beta1 * self.m[key] + (1 - self.beta1) * grad
            self.v[key] = self.beta2 * self.v[key] + (1 - self.beta2) * grad ** 2
            m_hat = self.m[key] / correction1
            v_hat = self.v[key] / correction2
            params[key] -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class LstmModel:
    """Single-layer LSTM language model over branch-ID sequences."""

    def __init__(
        self,
        vocabulary_size: int,
        hidden_size: int = 32,
        seed: int = 0,
    ) -> None:
        if vocabulary_size < 2:
            raise ModelError("vocabulary must have at least 2 IDs")
        if hidden_size < 1:
            raise ModelError("hidden_size must be positive")
        self.vocabulary_size = vocabulary_size
        self.hidden_size = hidden_size
        rng = make_rng(derive_seed(seed, "lstm", vocabulary_size, hidden_size))
        v, h = vocabulary_size, hidden_size
        scale_x = np.sqrt(1.0 / v)
        scale_h = np.sqrt(1.0 / h)
        self.params: Dict[str, np.ndarray] = {
            "w_x": rng.normal(0, scale_x, (4 * h, v)),
            "u": rng.normal(0, scale_h, (4 * h, h)),
            "b": np.zeros(4 * h),
            "w_out": rng.normal(0, scale_h, (v, h)),
            "b_out": np.zeros(v),
        }
        # Positive forget-gate bias stabilizes early training.
        self.params["b"][h:2 * h] = 1.0
        self.trained = False

    # ------------------------------------------------------------------
    # Forward
    # ------------------------------------------------------------------

    def _step_batch(
        self, ids: np.ndarray, h_prev: np.ndarray, c_prev: np.ndarray
    ) -> Tuple[np.ndarray, ...]:
        """One LSTM step for a batch of IDs; returns caches for BPTT."""
        p = self.params
        hs = self.hidden_size
        # One-hot input: x @ w_x.T is a column gather.
        z = p["w_x"][:, ids].T + h_prev @ p["u"].T + p["b"]
        i = sigmoid(z[:, :hs])
        f = sigmoid(z[:, hs:2 * hs])
        g = np.tanh(z[:, 2 * hs:3 * hs])
        o = sigmoid(z[:, 3 * hs:])
        c = f * c_prev + i * g
        tanh_c = np.tanh(c)
        h = o * tanh_c
        return h, c, (i, f, g, o, tanh_c, c_prev, h_prev, ids)

    def _logits(self, h: np.ndarray) -> np.ndarray:
        return h @ self.params["w_out"].T + self.params["b_out"]

    def window_nll(self, windows: np.ndarray) -> np.ndarray:
        """Mean per-step negative log-likelihood of each window.

        Each window of T IDs yields T-1 predictions (ID t predicts
        ID t+1); state starts at zero per window.
        """
        windows = np.atleast_2d(np.asarray(windows, dtype=np.int64))
        batch, steps = windows.shape
        if steps < 2:
            raise ModelError("windows must have at least 2 IDs")
        h = np.zeros((batch, self.hidden_size))
        c = np.zeros((batch, self.hidden_size))
        total = np.zeros(batch)
        for t in range(steps - 1):
            h, c, _ = self._step_batch(windows[:, t], h, c)
            log_p = log_softmax(self._logits(h))
            total -= log_p[np.arange(batch), windows[:, t + 1]]
        return total / (steps - 1)

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------

    def fit(
        self,
        windows: np.ndarray,
        epochs: int = 5,
        batch_size: int = 64,
        learning_rate: float = 5e-3,
        clip: float = 5.0,
        seed: int = 0,
        verbose: bool = False,
    ) -> List[float]:
        """Train with BPTT + Adam; returns per-epoch mean losses."""
        windows = np.atleast_2d(np.asarray(windows, dtype=np.int64))
        if windows.shape[0] < 1 or windows.shape[1] < 2:
            raise ModelError("need non-empty windows of length >= 2")
        optimizer = _Adam(self.params, learning_rate)
        rng = make_rng(derive_seed(seed, "lstm-train"))
        losses: List[float] = []
        for epoch in range(epochs):
            order = rng.permutation(len(windows))
            epoch_loss = 0.0
            batches = 0
            for start in range(0, len(windows), batch_size):
                batch = windows[order[start:start + batch_size]]
                loss, grads = self._loss_and_grads(batch)
                for key in grads:
                    np.clip(grads[key], -clip, clip, out=grads[key])
                optimizer.step(self.params, grads)
                epoch_loss += loss
                batches += 1
            losses.append(epoch_loss / max(1, batches))
            if verbose:
                print(f"epoch {epoch}: loss {losses[-1]:.4f}")
        self.trained = True
        return losses

    def _loss_and_grads(
        self, windows: np.ndarray
    ) -> Tuple[float, Dict[str, np.ndarray]]:
        p = self.params
        hs = self.hidden_size
        batch, steps = windows.shape
        h = np.zeros((batch, hs))
        c = np.zeros((batch, hs))
        caches = []
        logit_caches = []
        loss = 0.0
        count = batch * (steps - 1)
        for t in range(steps - 1):
            h, c, cache = self._step_batch(windows[:, t], h, c)
            logits = self._logits(h)
            log_p = log_softmax(logits)
            targets = windows[:, t + 1]
            loss -= log_p[np.arange(batch), targets].sum()
            probs = np.exp(log_p)
            probs[np.arange(batch), targets] -= 1.0
            caches.append((cache, h.copy()))
            logit_caches.append(probs / count)
        loss /= count

        grads = {key: np.zeros_like(value) for key, value in p.items()}
        dh_next = np.zeros((batch, hs))
        dc_next = np.zeros((batch, hs))
        for t in reversed(range(steps - 1)):
            (i, f, g, o, tanh_c, c_prev, h_prev, ids), h_t = caches[t]
            dprobs = logit_caches[t]
            grads["w_out"] += dprobs.T @ h_t
            grads["b_out"] += dprobs.sum(axis=0)
            dh = dprobs @ p["w_out"] + dh_next
            do = dh * tanh_c
            dc = dh * o * (1 - tanh_c ** 2) + dc_next
            di = dc * g
            df = dc * c_prev
            dg = dc * i
            dz = np.concatenate(
                [
                    di * i * (1 - i),
                    df * f * (1 - f),
                    dg * (1 - g ** 2),
                    do * o * (1 - o),
                ],
                axis=1,
            )
            # dWx via one-hot gather: accumulate per target column.
            np.add.at(grads["w_x"].T, ids, dz)
            grads["u"] += dz.T @ h_prev
            grads["b"] += dz.sum(axis=0)
            dh_next = dz @ p["u"]
            dc_next = dc * f
        return float(loss), grads

    # ------------------------------------------------------------------
    # Streaming inference (the deployment semantics)
    # ------------------------------------------------------------------

    def initial_state(self) -> LstmState:
        h = np.zeros(self.hidden_size)
        c = np.zeros(self.hidden_size)
        log_probs = log_softmax(self._logits(h[None, :]))[0]
        return LstmState(h=h, c=c, log_probs=log_probs)

    def stream_step(self, state: LstmState, branch_id: int) -> Tuple[float, LstmState]:
        """Score the observed ID, then advance the state.

        Returns ``(surprisal, new_state)`` — surprisal is
        ``-log P(branch_id | history)`` under the prediction made
        *before* seeing the branch, matching the hardware pipeline.
        """
        if not 0 <= branch_id < self.vocabulary_size:
            raise ModelError(f"branch id {branch_id} outside vocabulary")
        surprisal = float(-state.log_probs[branch_id])
        h, c, _ = self._step_batch(
            np.array([branch_id]), state.h[None, :], state.c[None, :]
        )
        log_probs = log_softmax(self._logits(h))[0]
        return surprisal, LstmState(h=h[0], c=c[0], log_probs=log_probs)

    # ------------------------------------------------------------------
    # Deployment export
    # ------------------------------------------------------------------

    def export_weights(self) -> LstmWeights:
        p = self.params
        return LstmWeights(
            w_x=p["w_x"].astype(np.float32),
            u=p["u"].astype(np.float32),
            b=p["b"].astype(np.float32),
            w_out=p["w_out"].astype(np.float32),
            b_out=p["b_out"].astype(np.float32),
        )
