"""Extreme Learning Machine for one-class anomaly detection.

The hidden layer is a fixed random projection followed by a sigmoid —
ELM's defining trait; nothing about it is trained.  Training fits only

- the per-neuron hidden-activation statistics (mean / variance), which
  give the *deployed* anomaly score — a diagonal Mahalanobis distance
  in hidden space that reduces per-lane on the GPU; and
- a ridge-regression autoencoder readout, the conventional
  reconstruction-error score kept as the software reference metric.

Both scores rise for windows whose histogram lies off the training
manifold, i.e. legitimate syscalls appearing with the wrong mixture.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import ModelError
from repro.ml.features import sigmoid
from repro.utils.rng import derive_seed, make_rng


@dataclass
class ElmWeights:
    """Everything the deployment path needs, in float32."""

    w_hidden: np.ndarray   # (H, D)
    b_hidden: np.ndarray   # (H,)
    mean: np.ndarray       # (H,)
    inv_var: np.ndarray    # (H,)


class ExtremeLearningMachine:
    """One-class ELM over histogram feature vectors."""

    def __init__(
        self,
        input_dim: int,
        hidden_dim: int = 256,
        ridge_lambda: float = 1e-2,
        seed: int = 0,
    ) -> None:
        if input_dim < 1 or hidden_dim < 1:
            raise ModelError("dimensions must be positive")
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        self.ridge_lambda = ridge_lambda
        rng = make_rng(derive_seed(seed, "elm", input_dim, hidden_dim))
        scale = np.sqrt(2.0 / input_dim)
        self.w_hidden = rng.normal(0.0, scale, (hidden_dim, input_dim))
        self.b_hidden = rng.uniform(-0.5, 0.5, hidden_dim)
        self._mean: Optional[np.ndarray] = None
        self._inv_var: Optional[np.ndarray] = None
        self._beta: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Core transform
    # ------------------------------------------------------------------

    def hidden(self, features: np.ndarray) -> np.ndarray:
        """sigma(W x + b) for each row of ``features``."""
        features = np.atleast_2d(np.asarray(features, dtype=np.float64))
        if features.shape[1] != self.input_dim:
            raise ModelError(
                f"expected {self.input_dim} features, got {features.shape[1]}"
            )
        return sigmoid(features @ self.w_hidden.T + self.b_hidden)

    # ------------------------------------------------------------------
    # Training (normal data only)
    # ------------------------------------------------------------------

    def fit(self, features: np.ndarray) -> "ExtremeLearningMachine":
        features = np.atleast_2d(np.asarray(features, dtype=np.float64))
        if len(features) < 2:
            raise ModelError("need at least two training vectors")
        h = self.hidden(features)
        self._mean = h.mean(axis=0)
        variance = h.var(axis=0) + 1e-4
        self._inv_var = 1.0 / variance
        # Ridge autoencoder readout: H beta ~= X.
        gram = h.T @ h + self.ridge_lambda * np.eye(self.hidden_dim)
        self._beta = np.linalg.solve(gram, h.T @ features)
        return self

    @property
    def fitted(self) -> bool:
        return self._mean is not None

    def _require_fit(self) -> None:
        if not self.fitted:
            raise ModelError("ELM used before fit()")

    # ------------------------------------------------------------------
    # Scores (higher = more anomalous)
    # ------------------------------------------------------------------

    def score_mahalanobis(self, features: np.ndarray) -> np.ndarray:
        """Deployed score: sum_i (h_i - mu_i)^2 / var_i."""
        self._require_fit()
        h = self.hidden(features)
        deviation = h - self._mean
        return (deviation * deviation * self._inv_var).sum(axis=1)

    def score_reconstruction(self, features: np.ndarray) -> np.ndarray:
        """Reference score: autoencoder reconstruction error."""
        self._require_fit()
        features = np.atleast_2d(np.asarray(features, dtype=np.float64))
        recon = self.hidden(features) @ self._beta
        return ((recon - features) ** 2).sum(axis=1)

    # ------------------------------------------------------------------
    # Deployment export
    # ------------------------------------------------------------------

    def export_weights(self) -> ElmWeights:
        """Float32 weights for the GPU kernel compiler."""
        self._require_fit()
        return ElmWeights(
            w_hidden=self.w_hidden.astype(np.float32),
            b_hidden=self.b_hidden.astype(np.float32),
            mean=self._mean.astype(np.float32),
            inv_var=self._inv_var.astype(np.float32),
        )

    def score_mahalanobis_f32(self, features: np.ndarray) -> np.ndarray:
        """The deployed score computed in float32 like the hardware.

        Used by deployment-equivalence tests: the GPU kernel must match
        this, not the float64 reference, bit-for-bit-ish.
        """
        weights = self.export_weights()
        features = np.atleast_2d(np.asarray(features, dtype=np.float32))
        pre = (features @ weights.w_hidden.T + weights.b_hidden).astype(
            np.float32
        )
        # The kernel computes sigmoid as 1 / (1 + exp2(-x * log2(e))).
        log2e = np.float32(1.4426950408889634)
        h = (
            np.float32(1.0)
            / (np.float32(1.0) + np.exp2(-(pre * log2e), dtype=np.float32))
        ).astype(np.float32)
        deviation = (h - weights.mean).astype(np.float32)
        terms = (deviation * deviation * weights.inv_var).astype(np.float32)
        return terms.sum(axis=1, dtype=np.float32)
