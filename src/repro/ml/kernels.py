"""Compile trained models into MIAOW kernels (the deployment path).

The inference engine the paper runs on MCM is "existing ML models
designed to run on a GPGPU"; here each trained numpy model is lowered
to Southern-Islands-subset assembly:

- **ELM** — one kernel, ``H/64`` workgroups.  Each lane evaluates one
  hidden neuron: sparse gather of the pattern-dictionary weight
  columns from device memory, sigmoid via ``v_exp_f32`` (base-2), the
  diagonal-Mahalanobis term from LDS statistics, then a butterfly
  (``ds_swizzle_b32``) tree reduction; each workgroup stores one
  partial score.
- **LSTM** — three kernels per inference, matching the streaming
  semantics (score the observed branch with the *previous* prediction,
  then advance the state):

  1. ``lstm_score`` (1 WG): per-lane output logits + softmax reduce +
     surprisal of the observed ID;
  2. ``lstm_gates`` (4 WGs, one per gate): gate pre-activations from
     LDS weights, sigmoid/tanh;
  3. ``lstm_update`` (1 WG): cell/hidden update in device memory.

  The 4-way gate parallelism is what a 5-CU ML-MIAOW exploits and a
  1-CU MIAOW serializes — the mechanism behind Fig. 8's LSTM speedup.

Model weights live in per-CU local memory ("ML-MIAOW has in its local
memory the model of the target program"); recurrent state lives in
shared device memory so it survives workgroup-to-CU reassignment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import KernelLaunchError, ModelError
from repro.miaow.assembler import Kernel, assemble, float_bits
from repro.miaow.gpu import DispatchResult, Gpu
from repro.miaow.runtime import Buffer, GpuRuntime
from repro.ml.elm import ExtremeLearningMachine
from repro.ml.features import PatternDictionary
from repro.ml.lstm import LstmModel

LOG2E = 1.4426950408889634
LN2 = 0.6931471805599453

#: LSTM vocabulary is padded to exactly one wavefront so every lane
#: owns one output row; padded rows get a large negative output bias.
LSTM_DEPLOY_VOCAB = 64
PAD_LOGIT_BIAS = -30.0

_REDUCE_STRIDES = (32, 16, 8, 4, 2, 1)


def _butterfly(op: str, value_reg: str, scratch_reg: str) -> str:
    """Full-wave butterfly reduction; leaves the result in every lane."""
    lines = []
    for stride in _REDUCE_STRIDES:
        lines.append(f"    ds_swizzle_b32 {scratch_reg}, {value_reg}, {stride}")
        lines.append(f"    {op} {value_reg}, {value_reg}, {scratch_reg}")
    return "\n".join(lines)


_SIGMOID = """\
    v_mul_f32 {r}, {r}, 1.4426950408889634
    v_sub_f32 {r}, 0.0, {r}
    v_exp_f32 {r}, {r}
    v_add_f32 {r}, {r}, 1.0
    v_rcp_f32 {r}, {r}"""

#: tanh(x) = (e^{2x} - 1) / (e^{2x} + 1); the input is clamped to
#: +/-15 first or e^{2x} overflows to inf and (inf-1)*rcp(inf+1) is
#: NaN on the hardware datapath exactly as it is in float32 numpy.
TANH_CLAMP = 15.0

_TANH = """\
    v_max_f32 {r}, {r}, -15.0
    v_min_f32 {r}, {r}, 15.0
    v_mul_f32 {r}, {r}, 2.8853900817779268
    v_exp_f32 {r}, {r}
    v_sub_f32 {t}, {r}, 1.0
    v_add_f32 {r}, {r}, 1.0
    v_rcp_f32 {r}, {r}
    v_mul_f32 {r}, {t}, {r}"""


# ---------------------------------------------------------------------------
# Assembly memoization
# ---------------------------------------------------------------------------
#
# Every kernel below is shape-independent (sizes arrive as scalar
# arguments), so the assembled Kernel object is a pure function of its
# source text.  Deployments share one cached instance per kernel: the
# second DeployedElm/DeployedLstm/DeployedMlp never re-runs the
# assembler, and — because Kernel.content_digest() is memoized on the
# instance — every Gpu's compiled-kernel cache keys off a digest that
# is computed exactly once per process.  Kernels are immutable once
# assembled (nothing in the engine mutates them), so sharing is safe.

_KERNEL_CACHE: Dict[str, Kernel] = {}
_KERNEL_CACHE_STATS = {"hits": 0, "assembles": 0}


def _cached_kernel(name: str, source: str) -> Kernel:
    kernel = _KERNEL_CACHE.get(name)
    if kernel is None:
        _KERNEL_CACHE_STATS["assembles"] += 1
        kernel = assemble(source)
        _KERNEL_CACHE[name] = kernel
    else:
        _KERNEL_CACHE_STATS["hits"] += 1
    return kernel


def clear_kernel_cache() -> None:
    """Drop memoized kernels (tests; new builds re-assemble lazily)."""
    _KERNEL_CACHE.clear()


def kernel_cache_stats() -> Dict[str, int]:
    """Counters for the memoized assembler (hits / assembles)."""
    return dict(_KERNEL_CACHE_STATS, cached=len(_KERNEL_CACHE))


# ---------------------------------------------------------------------------
# ELM deployment
# ---------------------------------------------------------------------------

_ELM_SCORE_SRC = f"""
.kernel elm_score
.vgprs 10
    s_mov_b32 s12, 64
    s_mul_i32 s12, s0, s12
    v_mov_b32 v1, s12
    v_add_i32 v1, v1, v0            ; neuron index h
    v_lshlrev_b32 v8, 2, v1         ; h*4 (per-lane byte offset)
    v_mov_b32 v2, 0.0               ; accumulator
    s_mov_b32 s13, 0                ; j
    s_mov_b32 s14, 0                ; input byte offset
elm_loop:
    s_load_dword s15, s3, s14       ; pattern index idx_j
    s_mul_i32 s15, s15, s6          ; idx*H
    s_lshl_b32 s15, s15, 2
    s_add_i32 s15, s15, s2          ; column base address
    v_add_i32 v3, v8, s15
    flat_load_dword v4, v3          ; W[h, idx_j]
    v_add_f32 v2, v2, v4
    s_add_i32 s14, s14, 4
    s_add_i32 s13, s13, 1
    s_cmp_lt_i32 s13, s5
    s_cbranch_scc1 elm_loop
    v_mul_f32 v2, v2, s7            ; x 1/M
    v_lshlrev_b32 v3, 2, v1
    v_add_i32 v4, v3, s8
    ds_read_b32 v5, v4
    v_add_f32 v2, v2, v5            ; + bias
{_SIGMOID.format(r='v2')}
    v_add_i32 v4, v3, s9
    ds_read_b32 v5, v4
    v_sub_f32 v2, v2, v5            ; h - mean
    v_mul_f32 v2, v2, v2
    v_add_i32 v4, v3, s10
    ds_read_b32 v5, v4
    v_mul_f32 v2, v2, v5            ; * inv_var
{_butterfly('v_add_f32', 'v2', 'v6')}
    v_mov_b32 v7, s4
    s_lshl_b32 s16, s0, 2
    v_add_i32 v7, v7, s16
    flat_store_dword v7, v2         ; partial score for this WG
    s_endpgm
"""


def build_elm_kernel() -> Kernel:
    """The ELM scoring kernel (shape-independent; sizes are arguments).

    Args: s2=W base, s3=input base, s4=out base, s5=M (pattern count),
    s6=H, s7=1/M bits, s8/s9/s10 = LDS byte offsets of bias/mean/invvar.
    """
    return _cached_kernel("elm_score", _ELM_SCORE_SRC)


@dataclass
class ElmInferenceResult:
    score: float
    dispatch: DispatchResult


class DeployedElm:
    """A trained ELM bound to a GPU engine."""

    def __init__(
        self,
        model: ExtremeLearningMachine,
        dictionary: PatternDictionary,
        window: int,
    ) -> None:
        if model.hidden_dim % 64:
            raise ModelError("deployed ELM hidden size must be 64-aligned")
        if model.input_dim != dictionary.size:
            raise ModelError(
                "ELM input dim must equal the pattern-dictionary size"
            )
        self.model = model
        self.dictionary = dictionary
        self.window = window
        self.num_workgroups = model.hidden_dim // 64
        self.positions = window - dictionary.n + 1
        self.kernel = build_elm_kernel()
        self._runtime: Optional[GpuRuntime] = None
        self._weights = model.export_weights()
        self._buffers: Dict[str, Buffer] = {}
        self._lds_offsets: Dict[str, int] = {}

    # -- load -------------------------------------------------------------

    def load(self, gpu: Gpu) -> None:
        """Write weights into device + local memory (model load time)."""
        runtime = GpuRuntime(gpu)
        w = self._weights
        h, d = self.model.hidden_dim, self.model.input_dim
        # W column-major by pattern index: element (idx*H + h).
        w_cols = np.ascontiguousarray(w.w_hidden.T, dtype=np.float32)
        w_buf = runtime.alloc_f32(h * d)
        runtime.write(w_buf, w_cols.ravel())
        input_buf = runtime.alloc(
            self.dictionary.max_indices(self.window) * 4
        )
        out_buf = runtime.alloc_f32(self.num_workgroups)
        # LDS: bias / mean / inv_var back to back.
        offsets = {"bias": 0, "mean": h * 4, "inv_var": 2 * h * 4}
        gpu.write_lds_f32_all(offsets["bias"], w.b_hidden)
        gpu.write_lds_f32_all(offsets["mean"], w.mean)
        gpu.write_lds_f32_all(offsets["inv_var"], w.inv_var)
        self._runtime = runtime
        self._buffers = {"w": w_buf, "input": input_buf, "out": out_buf}
        self._lds_offsets = offsets

    @property
    def loaded(self) -> bool:
        return self._runtime is not None

    # -- inference ----------------------------------------------------------

    def infer(self, window_ids: np.ndarray) -> ElmInferenceResult:
        """Score one ID window on the GPU."""
        indices = self.dictionary.indices(window_ids)
        return self.infer_indices(indices)

    def infer_indices(self, indices: np.ndarray) -> ElmInferenceResult:
        """Score from already-converted pattern indices (the MCM path)."""
        if self._runtime is None:
            raise KernelLaunchError("DeployedElm used before load()")
        runtime = self._runtime
        runtime.write(
            self._buffers["input"], np.asarray(indices, dtype=np.uint32)
        )
        dispatch = runtime.launch(
            self.kernel,
            num_workgroups=self.num_workgroups,
            args=[
                self._buffers["w"],
                self._buffers["input"],
                self._buffers["out"],
                len(indices),
                self.model.hidden_dim,
                float_bits(1.0 / self.positions),
                self._lds_offsets["bias"],
                self._lds_offsets["mean"],
                self._lds_offsets["inv_var"],
            ],
        )
        partials = runtime.read_f32(self._buffers["out"])
        return ElmInferenceResult(
            score=float(partials.sum()), dispatch=dispatch
        )

    def reference_score(self, window_ids: np.ndarray) -> float:
        """Float32 software reference the GPU result must match."""
        features = self.dictionary.features(
            np.asarray(window_ids)[None, :]
        )
        return float(self.model.score_mahalanobis_f32(features)[0])


# ---------------------------------------------------------------------------
# LSTM deployment
# ---------------------------------------------------------------------------

_LSTM_GATES_SRC = f"""
.kernel lstm_gates
.vgprs 10
    v_mov_b32 v1, s5
    v_sub_i32 v1, v1, 1
    v_min_i32 v1, v0, v1            ; l = min(lane, H-1)
    s_mul_i32 s10, s0, s5
    v_mov_b32 v2, s10
    v_add_i32 v2, v2, v1            ; row r = gate*H + l
    s_lshl_b32 s11, s5, 2           ; 4H
    s_mul_i32 s11, s2, s11          ; id*4H
    v_mov_b32 v3, s11
    v_add_i32 v3, v3, v2
    v_lshlrev_b32 v3, 2, v3
    v_add_i32 v3, v3, s6
    ds_read_b32 v4, v3              ; z = W_x[id*4H + r]
    v_mul_lo_i32 v5, v2, s5         ; r*H
    v_lshlrev_b32 v5, 2, v5
    v_add_i32 v5, v5, s7            ; &U[r, 0] (per-lane, incremented)
    s_mov_b32 s12, 0                ; k
    s_mov_b32 s13, 0                ; h byte offset
lstm_gates_loop:
    s_load_dword s14, s3, s13       ; h_prev[k]
    ds_read_b32 v7, v5              ; U[r, k]
    v_mac_f32 v4, v7, s14
    v_add_i32 v5, v5, 4
    s_add_i32 s13, s13, 4
    s_add_i32 s12, s12, 1
    s_cmp_lt_i32 s12, s5
    s_cbranch_scc1 lstm_gates_loop
    v_lshlrev_b32 v6, 2, v2
    v_add_i32 v6, v6, s8
    ds_read_b32 v7, v6
    v_add_f32 v4, v4, v7            ; + b[r]
    s_cmp_eq_i32 s0, 2
    s_cbranch_scc1 lstm_gates_tanh
{_SIGMOID.format(r='v4')}
    s_branch lstm_gates_store
lstm_gates_tanh:
{_TANH.format(r='v4', t='v8')}
lstm_gates_store:
    v_lshlrev_b32 v6, 2, v2
    v_add_i32 v6, v6, s4
    flat_store_dword v6, v4         ; gates[r]
    s_endpgm
"""


def build_lstm_gates_kernel() -> Kernel:
    """Gate pre-activation + activation; one workgroup per gate.

    Args: s2=id, s3=h_state base, s4=gates base, s5=H,
    s6/s7/s8 = LDS byte offsets of W_x / U / b.
    Gate order [i, f, g, o]; workgroup 2 (g) uses tanh.
    """
    return _cached_kernel("lstm_gates", _LSTM_GATES_SRC)


_LSTM_UPDATE_SRC = f"""
.kernel lstm_update
.vgprs 12
    v_mov_b32 v1, s5
    v_sub_i32 v1, v1, 1
    v_min_i32 v1, v0, v1
    v_lshlrev_b32 v2, 2, v1
    v_mov_b32 v3, v2
    v_add_i32 v3, v3, s2
    flat_load_dword v4, v3          ; i
    s_lshl_b32 s6, s5, 2
    v_add_i32 v3, v3, s6
    flat_load_dword v5, v3          ; f
    v_add_i32 v3, v3, s6
    flat_load_dword v6, v3          ; g
    v_add_i32 v3, v3, s6
    flat_load_dword v7, v3          ; o
    v_mov_b32 v8, v2
    v_add_i32 v8, v8, s3
    flat_load_dword v9, v8          ; c_prev
    v_mul_f32 v9, v5, v9
    v_mac_f32 v9, v4, v6            ; c = f*c_prev + i*g
    flat_store_dword v8, v9
    v_mov_b32 v10, v9
{_TANH.format(r='v10', t='v11')}
    v_mul_f32 v10, v7, v10          ; h = o * tanh(c)
    v_mov_b32 v8, v2
    v_add_i32 v8, v8, s4
    flat_store_dword v8, v10
    s_endpgm
"""


def build_lstm_update_kernel() -> Kernel:
    """Cell/hidden update.  Args: s2=gates, s3=c_state, s4=h_state, s5=H."""
    return _cached_kernel("lstm_update", _LSTM_UPDATE_SRC)


_LSTM_SCORE_SRC = f"""
.kernel lstm_score
.vgprs 12
    v_mul_lo_i32 v1, v0, s5         ; r*H
    v_lshlrev_b32 v1, 2, v1
    v_add_i32 v1, v1, s6            ; &W_out[r, 0] (incremented)
    v_lshlrev_b32 v2, 2, v0
    v_add_i32 v2, v2, s7
    ds_read_b32 v3, v2              ; logit = b_out[r]
    s_mov_b32 s8, 0
    s_mov_b32 s9, 0                 ; h byte offset
lstm_score_loop:
    s_load_dword s10, s3, s9        ; h[k]
    ds_read_b32 v5, v1              ; W_out[r, k]
    v_mac_f32 v3, v5, s10
    v_add_i32 v1, v1, 4
    s_add_i32 s9, s9, 4
    s_add_i32 s8, s8, 1
    s_cmp_lt_i32 s8, s5
    s_cbranch_scc1 lstm_score_loop
    v_mov_b32 v4, v3                ; running max
{_butterfly('v_max_f32', 'v4', 'v6')}
    v_sub_f32 v5, v3, v4            ; logit - max
    v_mul_f32 v5, v5, 1.4426950408889634
    v_exp_f32 v5, v5                ; exp(logit - max)
    v_mov_b32 v7, v5
{_butterfly('v_add_f32', 'v7', 'v6')}
    v_cmp_eq_i32 v0, s2             ; vcc: lane == observed id
    v_mov_b32 v9, 0.0
    v_cndmask_b32 v9, v9, v5        ; e_id on the id lane
{_butterfly('v_add_f32', 'v9', 'v6')}
    v_rcp_f32 v10, v7
    v_mul_f32 v9, v9, v10           ; p = e_id / sum
    v_log_f32 v9, v9
    v_mul_f32 v9, v9, 0.6931471805599453
    v_sub_f32 v9, 0.0, v9           ; -ln p
    v_mov_b32 v11, s4
    flat_store_dword v11, v9
    s_endpgm
"""


def build_lstm_score_kernel() -> Kernel:
    """Output logits + softmax + surprisal of the observed ID.

    Args: s2=id, s3=h_state, s4=score out, s5=H,
    s6/s7 = LDS byte offsets of W_out / b_out.
    One workgroup; lane r owns vocabulary row r (V == 64).
    """
    return _cached_kernel("lstm_score", _LSTM_SCORE_SRC)


@dataclass
class LstmInferenceResult:
    surprisal: float
    dispatches: List[DispatchResult]

    @property
    def total_cycles(self) -> int:
        return sum(d.cycles for d in self.dispatches)


class DeployedLstm:
    """A trained LSTM bound to a GPU engine (streaming inference)."""

    NUM_GATE_WORKGROUPS = 4

    def __init__(self, model: LstmModel) -> None:
        if model.vocabulary_size > LSTM_DEPLOY_VOCAB:
            raise ModelError(
                f"deployed LSTM vocabulary must fit {LSTM_DEPLOY_VOCAB} "
                f"(got {model.vocabulary_size}); shrink the mapper table"
            )
        if model.hidden_size > 64:
            raise ModelError("deployed LSTM hidden size must be <= 64")
        self.model = model
        self.kernels = {
            "score": build_lstm_score_kernel(),
            "gates": build_lstm_gates_kernel(),
            "update": build_lstm_update_kernel(),
        }
        self._padded = self._pad_weights()
        self._runtime: Optional[GpuRuntime] = None
        self._buffers: Dict[str, Buffer] = {}
        self._lds_offsets: Dict[str, int] = {}

    def _pad_weights(self):
        """Pad the vocabulary dimension to one full wavefront."""
        w = self.model.export_weights()
        v_pad = LSTM_DEPLOY_VOCAB
        v, h = self.model.vocabulary_size, self.model.hidden_size
        w_x = np.zeros((4 * h, v_pad), dtype=np.float32)
        w_x[:, :v] = w.w_x
        w_out = np.zeros((v_pad, h), dtype=np.float32)
        w_out[:v] = w.w_out
        b_out = np.full(v_pad, PAD_LOGIT_BIAS, dtype=np.float32)
        b_out[:v] = w.b_out
        return {"w_x": w_x, "u": w.u, "b": w.b, "w_out": w_out, "b_out": b_out}

    # -- load ----------------------------------------------------------------

    def load(self, gpu: Gpu) -> None:
        runtime = GpuRuntime(gpu)
        h = self.model.hidden_size
        p = self._padded
        # LDS layout: W_x (column-major by id) | U | b | W_out | b_out.
        w_x_cols = np.ascontiguousarray(p["w_x"].T)  # (V, 4H) -> id-major
        blocks = [
            ("w_x", w_x_cols.ravel()),
            ("u", p["u"].ravel()),
            ("b", p["b"]),
            ("w_out", p["w_out"].ravel()),
            ("b_out", p["b_out"]),
        ]
        offsets: Dict[str, int] = {}
        cursor = 0
        for name, data in blocks:
            offsets[name] = cursor
            gpu.write_lds_f32_all(cursor, data.astype(np.float32))
            cursor += data.size * 4
        self._lds_offsets = offsets

        self._buffers = {
            "h": runtime.alloc_f32(h),
            "c": runtime.alloc_f32(h),
            "gates": runtime.alloc_f32(4 * h),
            "score": runtime.alloc_f32(1),
        }
        self._runtime = runtime
        self.reset_state()

    @property
    def loaded(self) -> bool:
        return self._runtime is not None

    def reset_state(self) -> None:
        if self._runtime is None:
            raise KernelLaunchError("DeployedLstm used before load()")
        h = self.model.hidden_size
        zeros = np.zeros(h, dtype=np.float32)
        self._runtime.write(self._buffers["h"], zeros)
        self._runtime.write(self._buffers["c"], zeros)

    # -- inference --------------------------------------------------------------

    def infer(self, branch_id: int) -> LstmInferenceResult:
        """Score the observed branch, then advance the state."""
        if self._runtime is None:
            raise KernelLaunchError("DeployedLstm used before load()")
        if not 0 <= branch_id < self.model.vocabulary_size:
            raise ModelError(f"branch id {branch_id} outside vocabulary")
        runtime = self._runtime
        h = self.model.hidden_size
        off = self._lds_offsets
        buffers = self._buffers
        dispatches = [
            runtime.launch(
                self.kernels["score"], 1,
                args=[branch_id, buffers["h"], buffers["score"], h,
                      off["w_out"], off["b_out"]],
            ),
            runtime.launch(
                self.kernels["gates"], self.NUM_GATE_WORKGROUPS,
                args=[branch_id, buffers["h"], buffers["gates"], h,
                      off["w_x"], off["u"], off["b"]],
            ),
            runtime.launch(
                self.kernels["update"], 1,
                args=[buffers["gates"], buffers["c"], buffers["h"], h],
            ),
        ]
        surprisal = float(runtime.read_f32(buffers["score"], 1)[0])
        return LstmInferenceResult(surprisal=surprisal, dispatches=dispatches)

    # -- durability -----------------------------------------------------------

    def export_state(self):
        """Snapshot the recurrent (h, c) buffers off the engine."""
        if self._runtime is None:
            raise KernelLaunchError("DeployedLstm used before load()")
        h = self.model.hidden_size
        return (
            self._runtime.read_f32(self._buffers["h"], h).copy(),
            self._runtime.read_f32(self._buffers["c"], h).copy(),
        )

    def restore_state(self, state) -> None:
        if self._runtime is None:
            raise KernelLaunchError("DeployedLstm used before load()")
        h_state, c_state = state
        self._runtime.write(
            self._buffers["h"], np.asarray(h_state, dtype=np.float32)
        )
        self._runtime.write(
            self._buffers["c"], np.asarray(c_state, dtype=np.float32)
        )

    # -- float32 software reference ------------------------------------------

    def make_reference(self) -> "LstmReference":
        return LstmReference(self._padded, self.model.hidden_size)


_MLP_HIDDEN_SRC = f"""
.kernel mlp_hidden
.vgprs 8
    ; s2 = x base (D f32), s3 = h base, s4 = D, s5 = H,
    ; s6/s7 = LDS byte offsets of W1 / b1.  Lane l computes neuron
    ; min(l, H-1); duplicate writes collide with identical values.
    v_mov_b32 v1, s5
    v_sub_i32 v1, v1, 1
    v_min_i32 v1, v0, v1            ; l
    v_mul_lo_i32 v2, v1, s4         ; l*D
    v_lshlrev_b32 v2, 2, v2
    v_add_i32 v2, v2, s6            ; &W1[l, 0]
    v_mov_b32 v3, 0.0               ; acc
    s_mov_b32 s8, 0                 ; d
    s_mov_b32 s9, 0                 ; x byte offset
mlp_hidden_loop:
    s_load_dword s10, s2, s9        ; x[d]
    ds_read_b32 v4, v2              ; W1[l, d]
    v_mac_f32 v3, v4, s10
    v_add_i32 v2, v2, 4
    s_add_i32 s9, s9, 4
    s_add_i32 s8, s8, 1
    s_cmp_lt_i32 s8, s4
    s_cbranch_scc1 mlp_hidden_loop
    v_lshlrev_b32 v5, 2, v1
    v_add_i32 v6, v5, s7
    ds_read_b32 v7, v6
    v_add_f32 v3, v3, v7            ; + b1[l]
{_SIGMOID.format(r='v3')}
    v_add_i32 v6, v5, s3
    flat_store_dword v6, v3         ; h[l]
    s_endpgm
"""

_MLP_RECON_SRC = f"""
.kernel mlp_recon
.vgprs 10
    ; s2 = x base, s3 = h base, s4 = D, s5 = H, s6 = score out,
    ; s7/s8 = LDS byte offsets of W2 / b2.  Lane d reconstructs
    ; feature min(d, D-1); lanes beyond D contribute zero error.
    v_mov_b32 v1, s4
    v_sub_i32 v1, v1, 1
    v_min_i32 v1, v0, v1            ; d
    v_mul_lo_i32 v2, v1, s5         ; d*H
    v_lshlrev_b32 v2, 2, v2
    v_add_i32 v2, v2, s7            ; &W2[d, 0]
    v_mov_b32 v3, 0.0               ; recon acc
    s_mov_b32 s9, 0                 ; k
    s_mov_b32 s10, 0                ; h byte offset
mlp_recon_loop:
    s_load_dword s11, s3, s10       ; h[k]
    ds_read_b32 v4, v2              ; W2[d, k]
    v_mac_f32 v3, v4, s11
    v_add_i32 v2, v2, 4
    s_add_i32 s10, s10, 4
    s_add_i32 s9, s9, 1
    s_cmp_lt_i32 s9, s5
    s_cbranch_scc1 mlp_recon_loop
    v_lshlrev_b32 v5, 2, v1
    v_add_i32 v6, v5, s8
    ds_read_b32 v7, v6
    v_add_f32 v3, v3, v7            ; + b2[d]
    v_add_i32 v6, v5, s2
    flat_load_dword v7, v6          ; x[d]
    v_sub_f32 v3, v3, v7
    v_mul_f32 v3, v3, v3            ; (recon - x)^2
    v_cmp_lt_i32 v0, s4             ; vcc: lane owns a real feature
    v_mov_b32 v8, 0.0
    v_cndmask_b32 v3, v8, v3        ; zero the duplicate lanes
{_butterfly('v_add_f32', 'v3', 'v9')}
    v_mov_b32 v8, s6
    flat_store_dword v8, v3
    s_endpgm
"""


def build_mlp_hidden_kernel() -> Kernel:
    """MLP encoder: hidden = sigmoid(W1 x + b1), one workgroup."""
    return _cached_kernel("mlp_hidden", _MLP_HIDDEN_SRC)


def build_mlp_recon_kernel() -> Kernel:
    """MLP decoder + error: score = sum((W2 h + b2 - x)^2)."""
    return _cached_kernel("mlp_recon", _MLP_RECON_SRC)


@dataclass
class MlpInferenceResult:
    score: float
    dispatches: List[DispatchResult]

    @property
    def total_cycles(self) -> int:
        return sum(d.cycles for d in self.dispatches)


class DeployedMlp:
    """A trained MLP autoencoder bound to a GPU engine.

    The third model of the programmability story: same runtime, same
    protocol, different kernels.  Note the structural contrast with
    the ELM — both phases are single-workgroup and *sequential*
    (reconstruction needs the complete hidden vector), so extra CUs
    buy the MLP nothing.  That, plus its training cost, is the quiet
    half of the paper's "ELM over MLP" argument.
    """

    def __init__(self, model) -> None:
        from repro.ml.mlp import MlpAutoencoder

        if not isinstance(model, MlpAutoencoder):
            raise ModelError("DeployedMlp wraps an MlpAutoencoder")
        if model.input_dim > 64 or model.hidden_dim > 64:
            raise ModelError(
                "deployed MLP dims must each fit one wavefront"
            )
        if not model.trained:
            raise ModelError("deploy requires a trained MLP")
        self.model = model
        self.kernels = {
            "hidden": build_mlp_hidden_kernel(),
            "recon": build_mlp_recon_kernel(),
        }
        self._runtime: Optional[GpuRuntime] = None
        self._buffers: Dict[str, Buffer] = {}
        self._lds_offsets: Dict[str, int] = {}

    def load(self, gpu: Gpu) -> None:
        runtime = GpuRuntime(gpu)
        model = self.model
        blocks = [
            ("w1", model.w1.astype(np.float32).ravel()),
            ("b1", model.b1.astype(np.float32)),
            ("w2", model.w2.astype(np.float32).ravel()),
            ("b2", model.b2.astype(np.float32)),
        ]
        offsets: Dict[str, int] = {}
        cursor = 0
        for name, data in blocks:
            offsets[name] = cursor
            gpu.write_lds_f32_all(cursor, data)
            cursor += data.size * 4
        self._lds_offsets = offsets
        self._buffers = {
            "x": runtime.alloc_f32(model.input_dim),
            "h": runtime.alloc_f32(model.hidden_dim),
            "score": runtime.alloc_f32(1),
        }
        self._runtime = runtime

    @property
    def loaded(self) -> bool:
        return self._runtime is not None

    def infer(self, features: np.ndarray) -> MlpInferenceResult:
        """Score one (already normalized) feature vector."""
        if self._runtime is None:
            raise KernelLaunchError("DeployedMlp used before load()")
        features = np.asarray(features, dtype=np.float32)
        if features.shape != (self.model.input_dim,):
            raise ModelError(
                f"expected {self.model.input_dim} features, got "
                f"{features.shape}"
            )
        runtime = self._runtime
        runtime.write(self._buffers["x"], features)
        off = self._lds_offsets
        buffers = self._buffers
        d, h = self.model.input_dim, self.model.hidden_dim
        dispatches = [
            runtime.launch(
                self.kernels["hidden"], 1,
                args=[buffers["x"], buffers["h"], d, h,
                      off["w1"], off["b1"]],
            ),
            runtime.launch(
                self.kernels["recon"], 1,
                args=[buffers["x"], buffers["h"], d, h, buffers["score"],
                      off["w2"], off["b2"]],
            ),
        ]
        score = float(runtime.read_f32(buffers["score"], 1)[0])
        return MlpInferenceResult(score=score, dispatches=dispatches)

    def reference_score(self, features: np.ndarray) -> float:
        """Float32 twin of the kernel pipeline."""
        x = np.asarray(features, dtype=np.float32)
        w1 = self.model.w1.astype(np.float32)
        b1 = self.model.b1.astype(np.float32)
        w2 = self.model.w2.astype(np.float32)
        b2 = self.model.b2.astype(np.float32)
        pre = (w1 @ x + b1).astype(np.float32)
        log2e = np.float32(LOG2E)
        hidden = (
            np.float32(1.0)
            / (np.float32(1.0) + np.exp2(-(pre * log2e), dtype=np.float32))
        ).astype(np.float32)
        recon = (w2 @ hidden + b2).astype(np.float32)
        error = (recon - x).astype(np.float32)
        return float((error * error).sum(dtype=np.float32))


# ---------------------------------------------------------------------------
# Cross-tenant batched inference
# ---------------------------------------------------------------------------
#
# K tenants that deployed the *same* model family and shape onto one
# shared engine can be served by one fused dispatch per kernel: member
# buffers are disjoint by construction (each deployment allocated its
# own device buffers) and LDS holds shared read-only model data, so the
# fused run is bit-identical to serving the members one at a time —
# the dispatcher enforces that contract (see Gpu.dispatch_batch).
# Per-member quantities (buffer addresses, branch ids, 1/M bits) ride
# along as varying scalar arguments.

def _shared_runtime(members) -> GpuRuntime:
    """Validate a batch: loaded, distinct members, one shared GPU."""
    first = members[0]
    runtime = first._runtime
    if runtime is None:
        raise KernelLaunchError("batched inference before load()")
    seen = set()
    for member in members:
        if member._runtime is None:
            raise KernelLaunchError("batched inference before load()")
        if member._runtime.gpu is not runtime.gpu:
            raise KernelLaunchError("batched members must share one GPU")
        if id(member) in seen:
            # the same deployment twice would alias input buffers
            raise KernelLaunchError("batched members must be distinct")
        seen.add(id(member))
    return runtime


def elm_infer_indices_batch(
    members: List[DeployedElm],
    indices_lists: List[np.ndarray],
) -> List[ElmInferenceResult]:
    """Score K tenants' pattern-index windows in one fused dispatch.

    Members must share the model shape; the index count must also
    match because it feeds the scalar loop bound (a per-member count
    would diverge the fused control flow).
    """
    if len(members) != len(indices_lists) or not members:
        raise KernelLaunchError("one index window per batched member")
    if len(members) == 1:
        return [members[0].infer_indices(indices_lists[0])]
    runtime = _shared_runtime(members)
    first = members[0]
    num_workgroups = first.num_workgroups
    count = len(indices_lists[0])
    for member, indices in zip(members, indices_lists):
        if (
            member.num_workgroups != num_workgroups
            or member.model.hidden_dim != first.model.hidden_dim
        ):
            raise KernelLaunchError("batched ELM members must share a shape")
        if len(indices) != count:
            raise KernelLaunchError(
                "batched ELM members must share the index count"
            )
        member._runtime.write(
            member._buffers["input"], np.asarray(indices, dtype=np.uint32)
        )
    dispatches = runtime.launch_batch(
        first.kernel,
        num_workgroups,
        [
            [
                member._buffers["w"],
                member._buffers["input"],
                member._buffers["out"],
                count,
                member.model.hidden_dim,
                float_bits(1.0 / member.positions),
                member._lds_offsets["bias"],
                member._lds_offsets["mean"],
                member._lds_offsets["inv_var"],
            ]
            for member in members
        ],
    )
    return [
        ElmInferenceResult(
            score=float(
                member._runtime.read_f32(member._buffers["out"]).sum()
            ),
            dispatch=dispatch,
        )
        for member, dispatch in zip(members, dispatches)
    ]


def lstm_infer_batch(
    members: List[DeployedLstm],
    branch_ids: List[int],
) -> List[LstmInferenceResult]:
    """Run K tenants' score/gates/update chains as three fused dispatches.

    Per-member branch ids are fine — they only enter the vector domain
    (the observed-ID lane select) and the LDS weight gather addresses.
    Running all scores, then all gates, then all updates is equivalent
    to interleaving per member because each member's chain touches only
    its own (h, c, gates, score) buffers.
    """
    if len(members) != len(branch_ids) or not members:
        raise KernelLaunchError("one branch id per batched member")
    if len(members) == 1:
        return [members[0].infer(branch_ids[0])]
    runtime = _shared_runtime(members)
    first = members[0]
    hidden = first.model.hidden_size
    for member, branch_id in zip(members, branch_ids):
        if member.model.hidden_size != hidden:
            raise KernelLaunchError(
                "batched LSTM members must share the hidden size"
            )
        if not 0 <= branch_id < member.model.vocabulary_size:
            raise ModelError(f"branch id {branch_id} outside vocabulary")
    score_dispatches = runtime.launch_batch(
        first.kernels["score"], 1,
        [
            [branch_id, member._buffers["h"], member._buffers["score"],
             hidden, member._lds_offsets["w_out"],
             member._lds_offsets["b_out"]]
            for member, branch_id in zip(members, branch_ids)
        ],
    )
    gates_dispatches = runtime.launch_batch(
        first.kernels["gates"], DeployedLstm.NUM_GATE_WORKGROUPS,
        [
            [branch_id, member._buffers["h"], member._buffers["gates"],
             hidden, member._lds_offsets["w_x"], member._lds_offsets["u"],
             member._lds_offsets["b"]]
            for member, branch_id in zip(members, branch_ids)
        ],
    )
    update_dispatches = runtime.launch_batch(
        first.kernels["update"], 1,
        [
            [member._buffers["gates"], member._buffers["c"],
             member._buffers["h"], hidden]
            for member in members
        ],
    )
    return [
        LstmInferenceResult(
            surprisal=float(
                member._runtime.read_f32(member._buffers["score"], 1)[0]
            ),
            dispatches=[score, gates, update],
        )
        for member, score, gates, update in zip(
            members, score_dispatches, gates_dispatches, update_dispatches
        )
    ]


def mlp_infer_batch(
    members: List[DeployedMlp],
    features_lists: List[np.ndarray],
) -> List[MlpInferenceResult]:
    """Score K tenants' feature vectors as two fused dispatches."""
    if len(members) != len(features_lists) or not members:
        raise KernelLaunchError("one feature vector per batched member")
    if len(members) == 1:
        return [members[0].infer(features_lists[0])]
    runtime = _shared_runtime(members)
    first = members[0]
    input_dim = first.model.input_dim
    hidden_dim = first.model.hidden_dim
    for member, features in zip(members, features_lists):
        if (
            member.model.input_dim != input_dim
            or member.model.hidden_dim != hidden_dim
        ):
            raise KernelLaunchError("batched MLP members must share a shape")
        features = np.asarray(features, dtype=np.float32)
        if features.shape != (input_dim,):
            raise ModelError(
                f"expected {input_dim} features, got {features.shape}"
            )
        member._runtime.write(member._buffers["x"], features)
    hidden_dispatches = runtime.launch_batch(
        first.kernels["hidden"], 1,
        [
            [member._buffers["x"], member._buffers["h"], input_dim,
             hidden_dim, member._lds_offsets["w1"],
             member._lds_offsets["b1"]]
            for member in members
        ],
    )
    recon_dispatches = runtime.launch_batch(
        first.kernels["recon"], 1,
        [
            [member._buffers["x"], member._buffers["h"], input_dim,
             hidden_dim, member._buffers["score"],
             member._lds_offsets["w2"], member._lds_offsets["b2"]]
            for member in members
        ],
    )
    return [
        MlpInferenceResult(
            score=float(
                member._runtime.read_f32(member._buffers["score"], 1)[0]
            ),
            dispatches=[hidden, recon],
        )
        for member, hidden, recon in zip(
            members, hidden_dispatches, recon_dispatches
        )
    ]


class LstmReference:
    """Numpy float32 twin of the GPU pipeline (same formulas/order)."""

    def __init__(self, padded: Dict[str, np.ndarray], hidden: int) -> None:
        self.p = {k: v.astype(np.float32) for k, v in padded.items()}
        self.hidden = hidden
        self.h = np.zeros(hidden, dtype=np.float32)
        self.c = np.zeros(hidden, dtype=np.float32)

    def export_state(self):
        """Snapshot the recurrent (h, c) state."""
        return (self.h.copy(), self.c.copy())

    def restore_state(self, state) -> None:
        h_state, c_state = state
        self.h = np.asarray(h_state, dtype=np.float32).copy()
        self.c = np.asarray(c_state, dtype=np.float32).copy()

    @staticmethod
    def _sigmoid(x: np.ndarray) -> np.ndarray:
        log2e = np.float32(LOG2E)
        return (
            np.float32(1.0)
            / (np.float32(1.0) + np.exp2(-(x * log2e), dtype=np.float32))
        ).astype(np.float32)

    @staticmethod
    def _tanh(x: np.ndarray) -> np.ndarray:
        clamped = np.clip(x, -TANH_CLAMP, TANH_CLAMP).astype(np.float32)
        e = np.exp2(clamped * np.float32(2 * LOG2E), dtype=np.float32)
        return ((e - np.float32(1.0)) / (e + np.float32(1.0))).astype(
            np.float32
        )

    def infer(self, branch_id: int) -> float:
        p = self.p
        hs = self.hidden
        logits = (p["w_out"] @ self.h + p["b_out"]).astype(np.float32)
        m = logits.max()
        exps = np.exp2((logits - m) * np.float32(LOG2E), dtype=np.float32)
        prob = exps[branch_id] / exps.sum(dtype=np.float32)
        surprisal = float(
            -np.log2(prob) * np.float32(LN2)
        )
        z = (p["w_x"][:, branch_id] + p["u"] @ self.h + p["b"]).astype(
            np.float32
        )
        i = self._sigmoid(z[:hs])
        f = self._sigmoid(z[hs:2 * hs])
        g = self._tanh(z[2 * hs:3 * hs])
        o = self._sigmoid(z[3 * hs:])
        self.c = (f * self.c + i * g).astype(np.float32)
        self.h = (o * self._tanh(self.c)).astype(np.float32)
        return surprisal
