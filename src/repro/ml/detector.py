"""Threshold calibration and detection metrics.

"If the model discerns the probability of the given branch sequence to
be unlikely, the inference engine recognizes it as an anomaly" — this
module turns raw model scores into that yes/no judgment: the threshold
is the chosen quantile of scores on held-out *normal* data (bounding
the false-positive rate), and anything above it fires the interrupt.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.errors import ModelError


@dataclass(frozen=True)
class DetectionMetrics:
    """Standard one-class detection summary."""

    detection_rate: float     # true-positive rate on anomalous samples
    false_positive_rate: float
    auc: float
    threshold: float

    def __str__(self) -> str:
        return (
            f"DR={self.detection_rate:.3f} FPR={self.false_positive_rate:.3f} "
            f"AUC={self.auc:.3f} thr={self.threshold:.4g}"
        )


def roc_auc(normal_scores: np.ndarray, anomalous_scores: np.ndarray) -> float:
    """Area under the ROC curve via the rank statistic.

    Equals P(anomalous score > normal score) with ties at half weight —
    the Mann-Whitney U formulation, exact and O(n log n).
    """
    normal = np.asarray(normal_scores, dtype=np.float64)
    anomalous = np.asarray(anomalous_scores, dtype=np.float64)
    if normal.size == 0 or anomalous.size == 0:
        raise ModelError("AUC needs both normal and anomalous scores")
    combined = np.concatenate([normal, anomalous])
    order = combined.argsort(kind="mergesort")
    ranks = np.empty(len(combined), dtype=np.float64)
    # average ranks for ties
    sorted_vals = combined[order]
    ranks[order] = np.arange(1, len(combined) + 1)
    start = 0
    while start < len(sorted_vals):
        end = start
        while (
            end + 1 < len(sorted_vals)
            and sorted_vals[end + 1] == sorted_vals[start]
        ):
            end += 1
        if end > start:
            ranks[order[start:end + 1]] = (start + 1 + end + 1) / 2.0
        start = end + 1
    rank_sum = ranks[len(normal):].sum()
    n_pos, n_neg = len(anomalous), len(normal)
    u = rank_sum - n_pos * (n_pos + 1) / 2.0
    return float(u / (n_pos * n_neg))


class ThresholdDetector:
    """Quantile-calibrated anomaly decision."""

    def __init__(self, quantile: float = 0.995) -> None:
        if not 0.0 < quantile < 1.0:
            raise ModelError("quantile must be in (0, 1)")
        self.quantile = quantile
        self._threshold: Optional[float] = None

    def fit(self, normal_scores: Sequence[float]) -> "ThresholdDetector":
        scores = np.asarray(normal_scores, dtype=np.float64)
        if scores.size < 10:
            raise ModelError("need at least 10 calibration scores")
        self._threshold = float(np.quantile(scores, self.quantile))
        return self

    @property
    def threshold(self) -> float:
        if self._threshold is None:
            raise ModelError("detector used before fit()")
        return self._threshold

    def is_anomalous(self, score: float) -> bool:
        return score > self.threshold

    def classify(self, scores: Sequence[float]) -> np.ndarray:
        scores = np.asarray(scores, dtype=np.float64)
        return scores > self.threshold

    def evaluate(
        self,
        normal_scores: Sequence[float],
        anomalous_scores: Sequence[float],
    ) -> DetectionMetrics:
        normal = np.asarray(normal_scores, dtype=np.float64)
        anomalous = np.asarray(anomalous_scores, dtype=np.float64)
        return DetectionMetrics(
            detection_rate=float((anomalous > self.threshold).mean()),
            false_positive_rate=float((normal > self.threshold).mean()),
            auc=roc_auc(normal, anomalous),
            threshold=self.threshold,
        )
