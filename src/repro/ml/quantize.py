"""Fixed-point deployment path (extension).

ML-MIAOW inherits MIAOW's float32 datapath, but the trimming flow's
logic is per-block: a deployment that avoids the float units entirely
would let the flow remove them too.  This module provides the
quantized variant of the ELM scoring pipeline that such a deployment
would run — signed Qm.n weights and activations with a 256-entry
sigmoid lookup table (the standard fixed-point idiom; the LUT replaces
``v_exp_f32``/``v_rcp_f32`` with a ``ds_read_b32``).

The quality trade is quantified by ``bench_ablation_quantization.py``:
how much detection AUC each precision gives up relative to float32.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ModelError
from repro.ml.elm import ExtremeLearningMachine
from repro.utils.fixed_point import FixedPointFormat, Q4_12, Q8_8, Q16_16

#: Sigmoid lookup-table resolution (matches one LDS bank's worth).
SIGMOID_LUT_ENTRIES = 256
#: Input range covered by the LUT; saturates outside.
SIGMOID_LUT_RANGE = 8.0


def build_sigmoid_lut(fmt: FixedPointFormat) -> np.ndarray:
    """Quantized sigmoid samples over [-RANGE, +RANGE]."""
    x = np.linspace(
        -SIGMOID_LUT_RANGE, SIGMOID_LUT_RANGE, SIGMOID_LUT_ENTRIES
    )
    y = 1.0 / (1.0 + np.exp(-x))
    return fmt.quantize_array(y)


def sigmoid_lut_lookup(
    pre_activation: np.ndarray, lut: np.ndarray, fmt: FixedPointFormat
) -> np.ndarray:
    """LUT-based sigmoid on raw fixed-point pre-activations."""
    real = fmt.dequantize_array(pre_activation)
    position = (real + SIGMOID_LUT_RANGE) / (2 * SIGMOID_LUT_RANGE)
    index = np.clip(
        np.rint(position * (SIGMOID_LUT_ENTRIES - 1)),
        0, SIGMOID_LUT_ENTRIES - 1,
    ).astype(np.int64)
    return lut[index]


@dataclass
class QuantizedElm:
    """A trained ELM lowered to fixed point.

    ``weight_format`` holds weights/biases; ``activation_format``
    holds hidden activations and the score accumulation.  The deployed
    score stays the diagonal Mahalanobis distance, computed entirely
    in integer arithmetic.
    """

    w_hidden: np.ndarray       # raw ints, (H, D), weight format
    b_hidden: np.ndarray       # raw ints, (H,), weight format
    mean: np.ndarray           # raw ints, (H,), activation format
    inv_var: np.ndarray        # raw ints, (H,), statistics format
    sigmoid_lut: np.ndarray    # raw ints, (SIGMOID_LUT_ENTRIES,)
    weight_format: FixedPointFormat
    activation_format: FixedPointFormat
    statistics_format: FixedPointFormat

    @classmethod
    def from_model(
        cls,
        model: ExtremeLearningMachine,
        weight_format: FixedPointFormat = Q4_12,
        activation_format: FixedPointFormat = Q8_8,
        statistics_format: FixedPointFormat = Q16_16,
    ) -> "QuantizedElm":
        """Lower a fitted ELM to fixed point.

        ``inv_var`` spans several orders of magnitude (tight neurons
        have tiny variances), so the per-neuron statistics get their
        own wide format — 64 extra words of model memory, versus
        saturating the score's most informative terms.
        """
        if not model.fitted:
            raise ModelError("quantize requires a fitted ELM")
        weights = model.export_weights()
        inv_var = np.clip(
            weights.inv_var,
            statistics_format.min_value,
            statistics_format.max_value,
        )
        return cls(
            w_hidden=weight_format.quantize_array(weights.w_hidden),
            b_hidden=weight_format.quantize_array(weights.b_hidden),
            mean=activation_format.quantize_array(weights.mean),
            inv_var=statistics_format.quantize_array(inv_var),
            sigmoid_lut=build_sigmoid_lut(activation_format),
            weight_format=weight_format,
            activation_format=activation_format,
            statistics_format=statistics_format,
        )

    # ------------------------------------------------------------------
    # Inference (integer arithmetic throughout)
    # ------------------------------------------------------------------

    def hidden_raw(self, features: np.ndarray) -> np.ndarray:
        """Quantized hidden activations (raw ints in the activation
        format) for float feature rows."""
        features = np.atleast_2d(np.asarray(features, dtype=np.float64))
        if features.shape[1] != self.w_hidden.shape[1]:
            raise ModelError("feature width mismatch")
        x_raw = self.weight_format.quantize_array(features)
        # integer matmul accumulates in int64; product carries
        # 2*fraction_bits, rescale to the activation format.
        acc = x_raw @ self.w_hidden.T.astype(np.int64)
        shift = (
            2 * self.weight_format.fraction_bits
            - self.activation_format.fraction_bits
        )
        # bias: weight format -> activation format
        ratio = (
            self.activation_format.fraction_bits
            - self.weight_format.fraction_bits
        )
        bias = self.b_hidden.astype(np.int64)
        bias = bias << ratio if ratio >= 0 else bias >> -ratio
        pre = (acc >> shift) + bias
        pre = np.clip(
            pre,
            self.activation_format.min_raw,
            self.activation_format.max_raw,
        )
        return sigmoid_lut_lookup(
            pre, self.sigmoid_lut, self.activation_format
        )

    def score(self, features: np.ndarray) -> np.ndarray:
        """Quantized Mahalanobis score, returned in real units."""
        h = self.hidden_raw(features).astype(np.int64)
        deviation = h - self.mean.astype(np.int64)
        act_frac = self.activation_format.fraction_bits
        stat_frac = self.statistics_format.fraction_bits
        # Defer all rescaling to the end of the per-term product:
        # dev^2 carries 2*act fraction bits, inv_var stat bits; one
        # final shift brings the term back to the activation format
        # without flooring the small squares first.  dev^2 <= 2^30 and
        # inv_var < 2^32, so the product stays inside int64.
        products = deviation * deviation * self.inv_var.astype(np.int64)
        terms = products >> (act_frac + stat_frac)
        total = terms.sum(axis=1)
        return total / self.activation_format.scale

    # ------------------------------------------------------------------
    # Footprint / fidelity reporting
    # ------------------------------------------------------------------

    @property
    def weight_bits(self) -> int:
        return (
            (self.w_hidden.size + self.b_hidden.size)
            * self.weight_format.width
            + self.mean.size * self.activation_format.width
            + self.inv_var.size * self.statistics_format.width
        )

    def memory_savings_vs_f32(self) -> float:
        """Fraction of model-memory saved relative to float32."""
        f32_bits = (
            self.w_hidden.size + self.b_hidden.size
            + self.mean.size + self.inv_var.size
        ) * 32
        return 1.0 - self.weight_bits / f32_bits


def quantization_agreement(
    model: ExtremeLearningMachine,
    features: np.ndarray,
    weight_format: FixedPointFormat = Q4_12,
    activation_format: FixedPointFormat = Q8_8,
) -> float:
    """Spearman-style rank agreement between float and quantized
    scores — what matters for a threshold detector is ordering, not
    magnitude."""
    quantized = QuantizedElm.from_model(
        model, weight_format, activation_format
    )
    float_scores = model.score_mahalanobis(features)
    fixed_scores = quantized.score(features)
    ranks_a = np.argsort(np.argsort(float_scores)).astype(np.float64)
    ranks_b = np.argsort(np.argsort(fixed_scores)).astype(np.float64)
    ranks_a -= ranks_a.mean()
    ranks_b -= ranks_b.mean()
    denominator = np.sqrt((ranks_a ** 2).sum() * (ranks_b ** 2).sum())
    if denominator == 0:
        return 0.0
    return float((ranks_a * ranks_b).sum() / denominator)
