"""Feature transforms shared by the software models and the MCM
protocol converter (which must produce bit-identical inputs for the
GPU deployment)."""

from __future__ import annotations

import numpy as np

from repro.errors import ModelError


def histogram_features(windows: np.ndarray, vocabulary_size: int) -> np.ndarray:
    """Count vectors over the vocabulary for each ID window.

    ``windows`` has shape (N, W) of integer IDs in
    ``[0, vocabulary_size)``; returns float32 (N, vocabulary_size).
    This mirrors the IGM vector encoder's HISTOGRAM mode.
    """
    windows = np.asarray(windows)
    if windows.ndim == 1:
        windows = windows[None, :]
    if windows.size and (
        windows.min() < 0 or windows.max() >= vocabulary_size
    ):
        raise ModelError("window IDs outside the vocabulary")
    n, _ = windows.shape
    out = np.zeros((n, vocabulary_size), dtype=np.float32)
    for row in range(n):
        counts = np.bincount(windows[row], minlength=vocabulary_size)
        out[row] = counts[:vocabulary_size]
    return out


def normalize_histogram(histograms: np.ndarray) -> np.ndarray:
    """Scale count vectors to frequencies (rows sum to 1)."""
    histograms = np.asarray(histograms, dtype=np.float32)
    sums = histograms.sum(axis=-1, keepdims=True)
    sums[sums == 0] = 1.0
    return histograms / sums


def one_hot(ids: np.ndarray, vocabulary_size: int) -> np.ndarray:
    """One-hot encode an ID array; appends a trailing vocab axis."""
    ids = np.asarray(ids)
    if ids.size and (ids.min() < 0 or ids.max() >= vocabulary_size):
        raise ModelError("IDs outside the vocabulary")
    out = np.zeros(ids.shape + (vocabulary_size,), dtype=np.float32)
    np.put_along_axis(
        out, ids[..., None].astype(np.int64), 1.0, axis=-1
    )
    return out


class PatternDictionary:
    """Semantic n-gram pattern dictionary (after Creech & Hu [2]).

    Training memorizes the ``capacity`` most frequent n-grams of the
    normal windows; a window is then described by the counts of each
    dictionary pattern plus one out-of-dictionary count (index
    ``size - 1``).  Out-of-context branch insertions produce n-grams
    the program never emits, so their windows pile mass onto the
    out-of-dictionary bin and deviate from every in-dictionary count —
    the order-sensitive signal a plain histogram misses.

    The same mapping runs inside the MCM protocol converter at
    inference time, so this class is shared by training and deployment.

    ``unseen_gain`` weights the out-of-dictionary bin: each unseen
    n-gram counts ``gain`` times.  Phase changes in normal execution
    produce a *few* unseen patterns per window while injected gadgets
    produce many, so amplifying the unseen count separates the two
    populations.  In hardware the converter simply emits the unseen
    index ``gain`` times — no datapath change.
    """

    def __init__(
        self, n: int = 3, capacity: int = 255, unseen_gain: int = 1
    ) -> None:
        if n < 1:
            raise ModelError("pattern length must be >= 1")
        if capacity < 1:
            raise ModelError("capacity must be >= 1")
        if unseen_gain < 1:
            raise ModelError("unseen_gain must be >= 1")
        self.n = n
        self.capacity = capacity
        self.unseen_gain = unseen_gain
        self._index: dict = {}

    def fit(self, windows: np.ndarray) -> "PatternDictionary":
        from collections import Counter

        windows = np.atleast_2d(np.asarray(windows, dtype=np.int64))
        if windows.shape[1] < self.n:
            raise ModelError("windows shorter than pattern length")
        counts: Counter = Counter()
        for row in windows:
            for start in range(len(row) - self.n + 1):
                counts[tuple(int(v) for v in row[start:start + self.n])] += 1
        self._index = {
            gram: position
            for position, (gram, _) in enumerate(
                counts.most_common(self.capacity)
            )
        }
        return self

    @property
    def fitted(self) -> bool:
        return bool(self._index)

    @property
    def size(self) -> int:
        """Feature dimensionality: dictionary slots + the unseen bin."""
        return len(self._index) + 1

    @property
    def unseen_index(self) -> int:
        return len(self._index)

    def indices(self, window: np.ndarray) -> np.ndarray:
        """Pattern index per n-gram position (the sparse encoding the
        protocol converter hands the GPU).  Unseen positions repeat
        the unseen index ``unseen_gain`` times, so the output length
        varies between ``positions`` and ``positions * unseen_gain``.
        """
        if not self.fitted:
            raise ModelError("pattern dictionary used before fit()")
        window = np.asarray(window, dtype=np.int64)
        if len(window) < self.n:
            raise ModelError("window shorter than pattern length")
        out = []
        for start in range(len(window) - self.n + 1):
            gram = tuple(int(v) for v in window[start:start + self.n])
            index = self._index.get(gram)
            if index is None:
                out.extend([self.unseen_index] * self.unseen_gain)
            else:
                out.append(index)
        return np.array(out, dtype=np.int64)

    @property
    def max_indices_per_window(self) -> int:
        """Worst-case :meth:`indices` length for buffer sizing."""
        return self.unseen_gain

    def max_indices(self, window: int) -> int:
        return (window - self.n + 1) * self.unseen_gain

    def features(self, windows: np.ndarray) -> np.ndarray:
        """Dense normalized count features (the software-model input).

        Matches :meth:`indices` exactly: unseen n-grams contribute
        ``unseen_gain`` counts; normalization is by the position count
        (not the gained total), mirroring the kernel's fixed 1/M scale.
        """
        windows = np.atleast_2d(np.asarray(windows, dtype=np.int64))
        positions = windows.shape[1] - self.n + 1
        out = np.zeros((len(windows), self.size), dtype=np.float32)
        for row_index, row in enumerate(windows):
            for index in self.indices(row):
                out[row_index, index] += 1
        return out / positions


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function."""
    out = np.empty_like(x, dtype=np.float64)
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    exp_x = np.exp(x[~positive])
    out[~positive] = exp_x / (1.0 + exp_x)
    return out


def log_softmax(logits: np.ndarray) -> np.ndarray:
    """Log-softmax along the last axis."""
    shifted = logits - logits.max(axis=-1, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=-1, keepdims=True))
