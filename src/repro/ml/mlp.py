"""MLP autoencoder baseline.

The paper motivates ELM as "more lightweight than a traditional
multi-layer perceptron (MLP) while providing similar accuracy"; this
is that traditional MLP — a fully trained one-hidden-layer autoencoder
scored by reconstruction error — used in the accuracy/efficiency
comparison benches.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.errors import ModelError
from repro.ml.features import sigmoid
from repro.utils.rng import derive_seed, make_rng


class MlpAutoencoder:
    """D -> H -> D autoencoder with sigmoid hidden units."""

    def __init__(
        self,
        input_dim: int,
        hidden_dim: int = 64,
        seed: int = 0,
    ) -> None:
        if input_dim < 1 or hidden_dim < 1:
            raise ModelError("dimensions must be positive")
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        rng = make_rng(derive_seed(seed, "mlp", input_dim, hidden_dim))
        scale1 = np.sqrt(2.0 / input_dim)
        scale2 = np.sqrt(2.0 / hidden_dim)
        self.w1 = rng.normal(0, scale1, (hidden_dim, input_dim))
        self.b1 = np.zeros(hidden_dim)
        self.w2 = rng.normal(0, scale2, (input_dim, hidden_dim))
        self.b2 = np.zeros(input_dim)
        self.trained = False

    def _forward(self, x: np.ndarray):
        h = sigmoid(x @ self.w1.T + self.b1)
        recon = h @ self.w2.T + self.b2
        return h, recon

    def fit(
        self,
        features: np.ndarray,
        epochs: int = 30,
        batch_size: int = 64,
        learning_rate: float = 5e-2,
        seed: int = 0,
    ) -> List[float]:
        """Plain SGD on mean squared reconstruction error."""
        x_all = np.atleast_2d(np.asarray(features, dtype=np.float64))
        if x_all.shape[1] != self.input_dim:
            raise ModelError("feature width mismatch")
        rng = make_rng(derive_seed(seed, "mlp-train"))
        losses: List[float] = []
        for _ in range(epochs):
            order = rng.permutation(len(x_all))
            epoch_loss = 0.0
            batches = 0
            for start in range(0, len(x_all), batch_size):
                x = x_all[order[start:start + batch_size]]
                h, recon = self._forward(x)
                error = recon - x
                loss = float((error ** 2).mean())
                n = len(x)
                d_recon = 2.0 * error / (n * self.input_dim)
                grad_w2 = d_recon.T @ h
                grad_b2 = d_recon.sum(axis=0)
                dh = d_recon @ self.w2 * h * (1 - h)
                grad_w1 = dh.T @ x
                grad_b1 = dh.sum(axis=0)
                self.w2 -= learning_rate * grad_w2
                self.b2 -= learning_rate * grad_b2
                self.w1 -= learning_rate * grad_w1
                self.b1 -= learning_rate * grad_b1
                epoch_loss += loss
                batches += 1
            losses.append(epoch_loss / max(1, batches))
        self.trained = True
        return losses

    def score(self, features: np.ndarray) -> np.ndarray:
        """Reconstruction error per row (higher = more anomalous)."""
        if not self.trained:
            raise ModelError("MLP used before fit()")
        x = np.atleast_2d(np.asarray(features, dtype=np.float64))
        _, recon = self._forward(x)
        return ((recon - x) ** 2).sum(axis=1)

    @property
    def parameter_count(self) -> int:
        """Trained parameters — the 'weight' of the model the paper's
        lightweight-ELM argument compares against."""
        return int(
            self.w1.size + self.b1.size + self.w2.size + self.b2.size
        )
