"""STIDE-style n-gram baseline.

The classic host-based IDS approach (Forrest et al. [1]): memorize the
n-grams of normal traces; score a window by the fraction of its
n-grams never seen in training.  Cheap, deterministic, and the
baseline every learned model must beat on mimicry-style attacks.
"""

from __future__ import annotations

from typing import Iterable, Set, Tuple

import numpy as np

from repro.errors import ModelError


class NgramModel:
    """Set-of-known-n-grams detector."""

    def __init__(self, n: int = 3) -> None:
        if n < 1:
            raise ModelError("n must be >= 1")
        self.n = n
        self._known: Set[Tuple[int, ...]] = set()
        self.trained = False

    def _grams(self, sequence: np.ndarray) -> Iterable[Tuple[int, ...]]:
        sequence = np.asarray(sequence, dtype=np.int64)
        for start in range(len(sequence) - self.n + 1):
            yield tuple(int(v) for v in sequence[start:start + self.n])

    def fit(self, windows: np.ndarray) -> "NgramModel":
        windows = np.atleast_2d(np.asarray(windows, dtype=np.int64))
        if windows.shape[1] < self.n:
            raise ModelError(
                f"windows of length {windows.shape[1]} cannot hold "
                f"{self.n}-grams"
            )
        for row in windows:
            self._known.update(self._grams(row))
        self.trained = True
        return self

    @property
    def table_size(self) -> int:
        return len(self._known)

    def score(self, windows: np.ndarray) -> np.ndarray:
        """Fraction of unknown n-grams per window (0 = all familiar)."""
        if not self.trained:
            raise ModelError("n-gram model used before fit()")
        windows = np.atleast_2d(np.asarray(windows, dtype=np.int64))
        scores = np.zeros(len(windows))
        for index, row in enumerate(windows):
            grams = list(self._grams(row))
            if not grams:
                continue
            unknown = sum(1 for gram in grams if gram not in self._known)
            scores[index] = unknown / len(grams)
        return scores
