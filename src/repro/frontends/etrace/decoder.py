"""Golden software decoder for the E-Trace-inspired packet stream.

The structural twin of :class:`repro.coresight.decoder.PftDecoder`:
fully streaming (bytes can arrive in arbitrary chunks with packet
state carried across calls), three error-handling modes (strict /
lenient / resync-hunt), an end-of-stream ``finish`` that surfaces
truncated tail packets, and checkpoint export/restore.  Resync hunting
scans for the alignment preamble (``4 x 0x00`` then ``0xAA``) the
encoder emits before every sync burst.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import PacketDecodeError
from repro.frontends.etrace.packets import (
    ADDRESS_VARINT_MAX_BYTES,
    ALIGN_END,
    ALIGN_FILL,
    ALIGN_FILL_COUNT,
    CONTEXT_PAYLOAD,
    FMT_ADDRESS,
    FMT_BRANCH_MAP,
    FMT_SYNC,
    HEADER_ADDRESS,
    HEADER_ADDRESS_TRAP,
    MAX_CAUSE,
    SUPPORT_PAYLOAD,
    SYNC_START_PAYLOAD,
    SYNC_SUB_CONTEXT,
    SYNC_SUB_START,
    SYNC_SUB_SUPPORT,
    zigzag_decode,
)
from repro.obs import MetricsRegistry, NULL_REGISTRY


@dataclass(frozen=True)
class EtraceBranch:
    """One taken branch recovered from the stream."""

    address: int
    trap: bool = False
    cause: int = 0

    @property
    def is_syscall(self) -> bool:
        return self.trap


@dataclass(frozen=True)
class EtraceBranchMap:
    """A run of single-bit branch outcomes (True = taken)."""

    taken: Tuple[bool, ...]


@dataclass(frozen=True)
class EtraceSync:
    address: int
    context_id: int


@dataclass(frozen=True)
class EtraceContext:
    context_id: int


@dataclass(frozen=True)
class EtraceSupport:
    options: int
    version: int


@dataclass(frozen=True)
class EtraceTruncation:
    """End-of-stream marker: a packet was cut off mid-flight."""

    state: str
    pending_bytes: int


class _State(enum.Enum):
    IDLE = "idle"
    ALIGN = "align"
    SYNC = "sync"
    CONTEXT = "context"
    SUPPORT = "support"
    MAP = "map"
    ADDRESS = "address"
    ADDRESS_CAUSE = "address-cause"
    HUNT = "hunt"


class EtraceDecoder:
    """Streaming packet decoder (see :class:`PftDecoder` for modes)."""

    def __init__(
        self,
        strict: bool = True,
        resync_hunt: bool = False,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.strict = strict
        self.resync_hunt = resync_hunt
        self._state = _State.HUNT if resync_hunt else _State.IDLE
        self._scratch: List[int] = []
        self._zeros = 0
        self._map_count = 0
        self._trap = False
        self._pending_address = 0
        self._last_units = 0
        self._ever_locked = False
        self.resyncs = 0
        self.truncated = 0
        self.hunt_bytes = 0
        self.metrics = metrics or NULL_REGISTRY
        self._m_resyncs = self.metrics.counter("etrace.decoder.resyncs")
        self._m_truncated = self.metrics.counter("etrace.decoder.truncated")
        self._m_hunt_bytes = self.metrics.counter("etrace.decoder.hunt_bytes")

    # ------------------------------------------------------------------

    def feed(self, data: bytes) -> List[object]:
        """Decode a chunk; returns the packets completed by it."""
        out: List[object] = []
        for byte in data:
            decoded = self._step(byte)
            if decoded is not None:
                out.extend(decoded)
        return out

    def branches(self, data: bytes) -> List[EtraceBranch]:
        """Feed and keep only the taken-branch address packets."""
        return [p for p in self.feed(data) if isinstance(p, EtraceBranch)]

    def step_byte(self, byte: int) -> List[object]:
        """Decode exactly one byte."""
        return self._step(byte) or []

    def finish(self) -> List[object]:
        """Declare end-of-stream; surface a truncated trailing packet.

        Same contract as :meth:`PftDecoder.finish`: strict decoders
        raise, others count the event and return an
        :class:`EtraceTruncation` marker; idle or hunting decoders
        return ``[]``.  Either way the decoder is reset to its start
        state, ready for a new stream.
        """
        state = self._state
        if state in (_State.IDLE, _State.HUNT):
            return []
        pending = (
            self._zeros if state is _State.ALIGN else len(self._scratch)
        )
        self._scratch = []
        self._zeros = 0
        self._state = _State.HUNT if self.resync_hunt else _State.IDLE
        self.truncated += 1
        self._m_truncated.inc()
        if self.strict and not self.resync_hunt:
            raise PacketDecodeError(
                f"truncated {state.value} packet at end of stream "
                f"({pending} byte(s) pending)"
            )
        return [EtraceTruncation(state=state.value, pending_bytes=pending)]

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------

    def export_state(self) -> dict:
        """JSON-able carry state for checkpointing (see repro.durability)."""
        return {
            "state": self._state.value,
            "scratch": list(self._scratch),
            "zeros": self._zeros,
            "map_count": self._map_count,
            "trap": self._trap,
            "pending_address": self._pending_address,
            "last_units": self._last_units,
            "ever_locked": self._ever_locked,
            "resyncs": self.resyncs,
            "truncated": self.truncated,
            "hunt_bytes": self.hunt_bytes,
        }

    def restore_state(self, state: dict) -> None:
        self._state = _State(state["state"])
        self._scratch = list(state["scratch"])
        self._zeros = state["zeros"]
        self._map_count = state["map_count"]
        self._trap = state["trap"]
        self._pending_address = state["pending_address"]
        self._last_units = state["last_units"]
        self._ever_locked = state["ever_locked"]
        self.resyncs = state["resyncs"]
        self.truncated = state["truncated"]
        self.hunt_bytes = state["hunt_bytes"]

    # ------------------------------------------------------------------

    def _error(
        self, byte: Optional[int], message: str
    ) -> Optional[List[object]]:
        """Shared error path: hunt, raise, or skip per the mode."""
        if self.resync_hunt:
            return self._begin_hunt(byte)
        if self.strict:
            raise PacketDecodeError(message)
        self._scratch = []
        self._zeros = 0
        self._state = _State.IDLE
        return []

    def _begin_hunt(self, byte: Optional[int]) -> Optional[List[object]]:
        """Enter hunt mode after an error; optionally retry ``byte``."""
        self._scratch = []
        self._zeros = 0
        self._state = _State.HUNT
        if byte is None:
            return None
        return self._hunt(byte)

    def _hunt(self, byte: int) -> Optional[List[object]]:
        """Scan for the align preamble (>=4 x 0x00 then 0xAA)."""
        if byte == ALIGN_FILL:
            self._zeros += 1
            return None
        if byte == ALIGN_END and self._zeros >= ALIGN_FILL_COUNT:
            self._state = _State.IDLE
            self._zeros = 0
            if self._ever_locked:
                self.resyncs += 1
                self._m_resyncs.inc()
            self._ever_locked = True
            return []
        self.hunt_bytes += self._zeros + 1
        self._m_hunt_bytes.inc(self._zeros + 1)
        self._zeros = 0
        return None

    def _step(self, byte: int) -> Optional[List[object]]:
        state = self._state
        if state is _State.HUNT:
            return self._hunt(byte)
        if state is _State.IDLE:
            return self._handle_header(byte)
        if state is _State.ALIGN:
            if byte == ALIGN_FILL:
                self._zeros += 1
                return None
            if byte == ALIGN_END and self._zeros >= ALIGN_FILL_COUNT:
                self._state = _State.IDLE
                self._zeros = 0
                self._ever_locked = True
                return []
            return self._error(
                byte, f"bad align termination byte {byte:#04x}"
            )
        if state is _State.SYNC:
            self._scratch.append(byte)
            if len(self._scratch) == SYNC_START_PAYLOAD:
                address = int.from_bytes(bytes(self._scratch[:4]), "little")
                context = int.from_bytes(bytes(self._scratch[4:]), "little")
                self._scratch = []
                self._state = _State.IDLE
                self._last_units = address >> 1
                return [EtraceSync(address=address, context_id=context)]
            return None
        if state is _State.CONTEXT:
            self._scratch.append(byte)
            if len(self._scratch) == CONTEXT_PAYLOAD:
                context = int.from_bytes(bytes(self._scratch), "little")
                self._scratch = []
                self._state = _State.IDLE
                return [EtraceContext(context_id=context)]
            return None
        if state is _State.SUPPORT:
            self._scratch.append(byte)
            if len(self._scratch) == SUPPORT_PAYLOAD:
                options, version = self._scratch
                self._scratch = []
                self._state = _State.IDLE
                return [EtraceSupport(options=options, version=version)]
            return None
        if state is _State.MAP:
            self._scratch.append(byte)
            if len(self._scratch) == (self._map_count + 7) // 8:
                return self._complete_map()
            return None
        if state is _State.ADDRESS:
            self._scratch.append(byte)
            if byte & 0x80:
                if len(self._scratch) >= ADDRESS_VARINT_MAX_BYTES:
                    return self._error(
                        None, "address varint exceeds 5 bytes"
                    )
                return None
            return self._complete_address()
        if state is _State.ADDRESS_CAUSE:
            if byte > MAX_CAUSE:
                return self._error(
                    None, f"trap cause {byte:#04x} out of range"
                )
            self._state = _State.IDLE
            return [
                EtraceBranch(
                    address=self._pending_address, trap=True, cause=byte
                )
            ]
        raise PacketDecodeError(f"decoder in impossible state {state}")

    def _handle_header(self, byte: int) -> Optional[List[object]]:
        if byte == ALIGN_FILL:
            self._state = _State.ALIGN
            self._zeros = 1
            return None
        fmt = byte & 0x3
        if fmt == FMT_BRANCH_MAP:
            if byte & 0x04:
                return self._error(
                    byte, f"reserved branch-map header bit {byte:#04x}"
                )
            count = byte >> 3
            if count < 1:
                return self._error(
                    byte, "branch map with zero outcomes"
                )
            self._map_count = count
            self._scratch = []
            self._state = _State.MAP
            return None
        if fmt == FMT_ADDRESS:
            if byte not in (HEADER_ADDRESS, HEADER_ADDRESS_TRAP):
                return self._error(
                    byte, f"reserved address header bits {byte:#04x}"
                )
            self._trap = byte == HEADER_ADDRESS_TRAP
            self._scratch = []
            self._state = _State.ADDRESS
            return None
        if fmt == FMT_SYNC:
            if byte & 0xF0:
                return self._error(
                    byte, f"reserved sync header bits {byte:#04x}"
                )
            sub = (byte >> 2) & 0x3
            self._scratch = []
            if sub == SYNC_SUB_START:
                self._state = _State.SYNC
                return None
            if sub == SYNC_SUB_CONTEXT:
                self._state = _State.CONTEXT
                return None
            if sub == SYNC_SUB_SUPPORT:
                self._state = _State.SUPPORT
                return None
            return self._error(byte, "reserved sync subformat 3")
        return self._error(byte, f"unknown header byte {byte:#04x}")

    def _complete_map(self) -> List[object]:
        count = self._map_count
        payload = self._scratch
        self._scratch = []
        self._map_count = 0
        self._state = _State.IDLE
        taken = tuple(
            (payload[i // 8] >> (i % 8)) & 1 == 0 for i in range(count)
        )
        return [EtraceBranchMap(taken=taken)]

    def _complete_address(self) -> Optional[List[object]]:
        value = 0
        for index, group in enumerate(self._scratch):
            value |= (group & 0x7F) << (7 * index)
        self._scratch = []
        units = self._last_units + zigzag_decode(value)
        if not 0 <= units <= 0x7FFF_FFFF:
            return self._error(None, "address delta out of range")
        self._last_units = units
        address = units << 1
        if self._trap:
            self._trap = False
            self._pending_address = address
            self._state = _State.ADDRESS_CAUSE
            return None
        self._state = _State.IDLE
        return [EtraceBranch(address=address)]
