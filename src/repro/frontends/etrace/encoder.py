"""E-Trace encoder: branch event stream -> compressed packet stream.

Mirrors :class:`repro.coresight.ptm.Ptm`'s shape — lazy initial sync,
periodic re-sync by byte budget, per-session carried state, checkpoint
export/restore — while speaking the RISC-V-style grammar from
:mod:`repro.frontends.etrace.packets`: not-taken conditionals gather
into branch-map packets, every taken branch emits a differential
address packet (address-broadcast, so the IGM can recover targets
without the program image), and syscalls carry a trap cause byte.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import PacketEncodeError
from repro.frontends.etrace.packets import (
    ALIGN_PREAMBLE,
    MAX_MAP_BRANCHES,
    encode_address,
    encode_branch_map,
    encode_context,
    encode_support,
    encode_sync_start,
)
from repro.obs import MetricsRegistry, NULL_REGISTRY
from repro.workloads.cfg import BranchEvent, BranchKind, is_map_only


@dataclass
class EtraceConfig:
    """E-Trace programming model (the knobs a driver would set)."""

    context_id: int = 1
    #: Re-emit an align + sync burst after this many trace bytes.
    sync_interval_bytes: int = 1024


class EtraceEncoder:
    """Stateful packet encoder for one traced context."""

    def __init__(
        self,
        config: Optional[EtraceConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.config = config or EtraceConfig()
        self._last_units = 0
        self._pending_map: List[bool] = []
        self._bytes_since_sync = 0
        self._started = False
        self.total_bytes = 0
        self.packet_counts = {
            "support": 0, "sync": 0, "context": 0, "map": 0, "address": 0,
        }
        self.metrics = metrics or NULL_REGISTRY
        self._m_events = self.metrics.counter("etrace.events")
        self._m_bytes = self.metrics.counter("etrace.bytes")
        self._m_sync_bytes = self.metrics.counter("etrace.sync_bytes")
        self._m_packets = {
            kind: self.metrics.counter(f"etrace.packets.{kind}")
            for kind in self.packet_counts
        }

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------

    def feed(self, event: BranchEvent) -> bytes:
        """Encode one branch event; returns the bytes it produced."""
        self._m_events.inc()
        out = bytearray()
        if not self._started:
            out += self._emit_start(event)
            self._started = True

        if is_map_only(event):
            self._pending_map.append(False)
            if len(self._pending_map) >= MAX_MAP_BRANCHES:
                out += self._flush_map()
        else:
            out += self._flush_map()
            target = event.target
            if target & 0x1:
                raise PacketEncodeError(
                    "branch target not halfword aligned"
                )
            if not 0 <= target <= 0xFFFF_FFFF:
                raise PacketEncodeError("branch target out of range")
            units = target >> 1
            packet = encode_address(
                units - self._last_units,
                trap=event.kind is BranchKind.SYSCALL,
            )
            self._last_units = units
            self.packet_counts["address"] += 1
            self._m_packets["address"].inc()
            out += packet

        self._account(out)
        if self._bytes_since_sync >= self.config.sync_interval_bytes:
            sync = self._emit_sync(event)
            self._account(sync)
            out += sync
        return bytes(out)

    def flush(self) -> bytes:
        """Emit any buffered branch-map bits (end of trace session)."""
        out = self._flush_map()
        self._account(out)
        return bytes(out)

    def switch_context(self, context_id: int) -> bytes:
        """Process switch: flush the map, emit a context packet."""
        out = bytearray(self._flush_map())
        self.config.context_id = context_id
        out += encode_context(context_id)
        self.packet_counts["context"] += 1
        self._m_packets["context"].inc()
        self._account(out)
        return bytes(out)

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------

    def export_state(self) -> dict:
        """JSON-able carry state for checkpointing (see repro.durability)."""
        return {
            "context_id": self.config.context_id,
            "last_units": self._last_units,
            "pending_map": list(self._pending_map),
            "bytes_since_sync": self._bytes_since_sync,
            "started": self._started,
            "total_bytes": self.total_bytes,
            "packet_counts": dict(self.packet_counts),
        }

    def restore_state(self, state: dict) -> None:
        self.config.context_id = state["context_id"]
        self._last_units = state["last_units"]
        self._pending_map = [bool(bit) for bit in state["pending_map"]]
        self._bytes_since_sync = state["bytes_since_sync"]
        self._started = state["started"]
        self.total_bytes = state["total_bytes"]
        self.packet_counts = dict(state["packet_counts"])

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _account(self, chunk: bytes) -> None:
        self.total_bytes += len(chunk)
        self._bytes_since_sync += len(chunk)
        self._m_bytes.inc(len(chunk))

    def _flush_map(self) -> bytes:
        if not self._pending_map:
            return b""
        packet = encode_branch_map(self._pending_map)
        self._pending_map = []
        self.packet_counts["map"] += 1
        self._m_packets["map"].inc()
        return packet

    def _emit_start(self, event: BranchEvent) -> bytes:
        """Trace-on burst: align + support packet + full sync."""
        out = bytearray(ALIGN_PREAMBLE)
        out += encode_support()
        self.packet_counts["support"] += 1
        self._m_packets["support"].inc()
        out += self._emit_sync(event, preamble=False)
        self._m_sync_bytes.inc(len(ALIGN_PREAMBLE) + 3)
        return bytes(out)

    def _emit_sync(self, event: BranchEvent, preamble: bool = True) -> bytes:
        """Align preamble + full-sync packet; resets compression."""
        self._bytes_since_sync = 0
        address = event.source & ~0x1
        out = bytearray(ALIGN_PREAMBLE if preamble else b"")
        out += encode_sync_start(address, self.config.context_id)
        self.packet_counts["sync"] += 1
        self._m_packets["sync"].inc()
        # After a sync point deltas restart from a known address.
        self._last_units = address >> 1
        self._m_sync_bytes.inc(len(out))
        return bytes(out)


def encode_trace(events, config: Optional[EtraceConfig] = None) -> bytes:
    """Convenience: encode a whole event sequence into one byte stream."""
    encoder = EtraceEncoder(config)
    out = bytearray()
    for event in events:
        out += encoder.feed(event)
    out += encoder.flush()
    return bytes(out)
