"""RISC-V E-Trace-inspired packet grammar: formats and codec helpers.

The Efficient Trace for RISC-V specification compresses a branch
stream with three ideas our grammar keeps:

- **Branch maps**: runs of not-taken conditional branches become one
  packet carrying up to 31 single-bit outcomes (bit ``1`` = branch not
  taken, the E-Trace polarity).
- **Differential addresses**: a taken branch reports its target as a
  *signed delta* from the previous reported address, in halfword
  (2-byte instruction) units, varint-encoded so short hops cost one
  byte.  Like the CoreSight model this runs in an address-broadcast
  style — every taken branch reports its target — because the IGM must
  recover targets from the stream alone, without the program image.
- **Synchronisation**: periodic full-address + context packets preceded
  by an alignment preamble, so a late-attaching (or resynchronising)
  decoder can find a packet boundary in the raw byte stream.

Header byte layout (``fmt = header & 0x3``):

    fmt 1  branch map    bits[7:3] = outcome count (1..31), bit2 = 0;
                         payload = ceil(count / 8) map bytes, LSB first
    fmt 2  address       bit2 = trap flag, bits[7:3] = 0; payload =
                         zigzag-LEB128 delta of (target >> 1); a trap
                         appends one cause byte (mcause code, < 16)
    fmt 3  sync family   bits[3:2] = subformat, bits[7:4] = 0:
                         0 = sync start (4B LE address + 4B LE context)
                         1 = context   (4B LE context)
                         2 = support   (options byte + version byte)
                         3 = reserved (decode error)
    fmt 0  reserved      only valid as alignment filler (0x00)

The alignment preamble is ``4 x 0x00`` followed by ``0xAA``; ``0xAA``
has fmt 2 with non-zero high bits, so it can never be mistaken for a
packet header, and runs of zeros never occur inside valid packets in
header position.
"""

from __future__ import annotations

from repro.errors import PacketEncodeError

# --- alignment preamble -------------------------------------------------
ALIGN_FILL = 0x00
ALIGN_END = 0xAA
ALIGN_FILL_COUNT = 4
ALIGN_PREAMBLE = bytes([ALIGN_FILL] * ALIGN_FILL_COUNT + [ALIGN_END])

# --- header formats -----------------------------------------------------
FMT_BRANCH_MAP = 0x1
FMT_ADDRESS = 0x2
FMT_SYNC = 0x3

HEADER_ADDRESS = 0x02          # plain differential address
HEADER_ADDRESS_TRAP = 0x06     # bit2: trap (syscall) target
HEADER_SYNC_START = 0x03       # subformat 0
HEADER_CONTEXT = 0x07          # subformat 1
HEADER_SUPPORT = 0x0B          # subformat 2

SYNC_SUB_START = 0
SYNC_SUB_CONTEXT = 1
SYNC_SUB_SUPPORT = 2

#: Most outcomes one branch-map packet can carry (5 header bits).
MAX_MAP_BRANCHES = 31
#: Longest legal address varint: zigzag of a 32-bit-range delta needs
#: at most 33 significand bits = 5 LEB128 groups.
ADDRESS_VARINT_MAX_BYTES = 5
#: RISC-V mcause exception code for an environment call (the syscall
#: analogue of CoreSight's SVC exception type).
CAUSE_ECALL = 0x08
#: Trap cause bytes are mcause exception codes and fit in 4 bits.
MAX_CAUSE = 0x0F

SYNC_START_PAYLOAD = 8
CONTEXT_PAYLOAD = 4
SUPPORT_PAYLOAD = 2

#: Support-packet "options" byte: address broadcast + branch maps on.
SUPPORT_OPTIONS = 0x03
SUPPORT_VERSION = 0x01


def zigzag_encode(value: int) -> int:
    """Map a signed delta to an unsigned varint payload."""
    return value * 2 if value >= 0 else -value * 2 - 1


def zigzag_decode(value: int) -> int:
    """Inverse of :func:`zigzag_encode`."""
    return (value >> 1) ^ -(value & 1)


def encode_varint(value: int) -> bytes:
    """LEB128: 7 payload bits per byte, bit7 = continuation."""
    if value < 0:
        raise PacketEncodeError("varint payload must be non-negative")
    out = bytearray()
    while True:
        group = value & 0x7F
        value >>= 7
        if value:
            out.append(group | 0x80)
        else:
            out.append(group)
            return bytes(out)


def encode_branch_map(outcomes) -> bytes:
    """One branch-map packet from a run of taken/not-taken outcomes."""
    count = len(outcomes)
    if not 1 <= count <= MAX_MAP_BRANCHES:
        raise PacketEncodeError(
            f"branch map carries 1..{MAX_MAP_BRANCHES} outcomes, "
            f"got {count}"
        )
    out = bytearray([FMT_BRANCH_MAP | (count << 3)])
    payload = [0] * ((count + 7) // 8)
    for index, taken in enumerate(outcomes):
        if not taken:  # E-Trace polarity: 1 = not taken
            payload[index // 8] |= 1 << (index % 8)
    out += bytes(payload)
    return bytes(out)


def encode_address(delta_units: int, trap: bool = False,
                   cause: int = CAUSE_ECALL) -> bytes:
    """One differential-address packet (plus trap cause if flagged)."""
    header = HEADER_ADDRESS_TRAP if trap else HEADER_ADDRESS
    out = bytearray([header])
    out += encode_varint(zigzag_encode(delta_units))
    if len(out) - 1 > ADDRESS_VARINT_MAX_BYTES:
        raise PacketEncodeError("address delta exceeds varint budget")
    if trap:
        if not 0 <= cause <= MAX_CAUSE:
            raise PacketEncodeError(f"trap cause {cause} out of range")
        out.append(cause)
    return bytes(out)


def encode_sync_start(address: int, context_id: int) -> bytes:
    """Full-synchronisation packet: absolute address + context."""
    if not 0 <= address <= 0xFFFF_FFFF:
        raise PacketEncodeError("sync address out of 32-bit range")
    out = bytearray([HEADER_SYNC_START])
    out += address.to_bytes(4, "little")
    out += (context_id & 0xFFFF_FFFF).to_bytes(4, "little")
    return bytes(out)


def encode_context(context_id: int) -> bytes:
    out = bytearray([HEADER_CONTEXT])
    out += (context_id & 0xFFFF_FFFF).to_bytes(4, "little")
    return bytes(out)


def encode_support(options: int = SUPPORT_OPTIONS,
                   version: int = SUPPORT_VERSION) -> bytes:
    return bytes([HEADER_SUPPORT, options & 0xFF, version & 0xFF])
