"""The RISC-V E-Trace grammar behind the frontend interface."""

from __future__ import annotations

from typing import List, Optional

from repro.frontends.base import TraceFrontend
from repro.frontends.etrace.decoder import EtraceDecoder
from repro.frontends.etrace.driver import EtraceDriver
from repro.frontends.etrace.encoder import EtraceConfig
from repro.frontends.etrace.transport import EtraceDeframer
from repro.obs import MetricsRegistry


class EtraceFrontend(TraceFrontend):
    """Branch maps + differential addresses over the checksummed ETP."""

    name = "etrace"
    counter_namespace = "etrace"
    decoder_counters = (
        "etrace.decoder.resyncs",
        "etrace.decoder.truncated",
        "etrace.decoder.hunt_bytes",
    )
    deframer_counters = (
        "etrace.deframer.resyncs",
        "etrace.deframer.bytes_discarded",
    )

    def __init__(
        self,
        etrace_config: Optional[EtraceConfig] = None,
        sync_period: int = 64,
    ) -> None:
        #: Shared between the driver and the batched encode stage, so
        #: control-plane changes (``set_context_id``) reach both.
        self.etrace_config = etrace_config or EtraceConfig()
        self.sync_period = sync_period

    def create_driver(
        self, metrics: Optional[MetricsRegistry] = None
    ) -> EtraceDriver:
        return EtraceDriver(
            etrace_config=self.etrace_config,
            sync_period=self.sync_period,
            metrics=metrics,
        )

    def build_encode_stages(
        self, metrics: Optional[MetricsRegistry] = None
    ) -> List:
        # Deferred import: repro.pipeline.stages pulls in numpy-heavy
        # modules the control-plane users of this frontend never need.
        from repro.frontends.etrace.stages import (
            EtraceEncodeStage,
            EtraceFrameStage,
        )

        return [
            EtraceEncodeStage(config=self.etrace_config, metrics=metrics),
            EtraceFrameStage(sync_period=self.sync_period, metrics=metrics),
        ]

    def new_deframer(
        self,
        resync_hunt: bool = False,
        metrics: Optional[MetricsRegistry] = None,
    ) -> EtraceDeframer:
        return EtraceDeframer(resync_hunt=resync_hunt, metrics=metrics)

    def new_decoder(
        self,
        strict: bool = True,
        resync_hunt: bool = False,
        metrics: Optional[MetricsRegistry] = None,
    ) -> EtraceDecoder:
        return EtraceDecoder(
            strict=strict, resync_hunt=resync_hunt, metrics=metrics
        )
