"""Kernel-driver-style configuration facade for the E-Trace path.

The E-Trace twin of :class:`repro.coresight.driver.CoreSightDriver`:
owns the encoder and link framer, exposes the same enable / disable /
``set_context_id`` control surface and trace/flush data plane, so the
SoC layer can hold either driver behind the
:class:`repro.frontends.base.TraceDriver` protocol.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.errors import SocConfigError
from repro.frontends.etrace.encoder import EtraceConfig, EtraceEncoder
from repro.frontends.etrace.transport import EtraceDeframer, EtraceFramer
from repro.obs import MetricsRegistry, NULL_REGISTRY
from repro.workloads.cfg import BranchEvent


class EtraceDriver:
    """Configures and drives the encoder -> link framer trace path."""

    def __init__(
        self,
        etrace_config: Optional[EtraceConfig] = None,
        sync_period: int = 64,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.etrace_config = etrace_config or EtraceConfig()
        self.sync_period = sync_period
        self.metrics = metrics or NULL_REGISTRY
        self._encoder: Optional[EtraceEncoder] = None
        self._framer: Optional[EtraceFramer] = None
        self.enabled = False

    # ------------------------------------------------------------------
    # Control-plane
    # ------------------------------------------------------------------

    def enable(self) -> None:
        """Power up the encoder and link with the current configuration."""
        self._encoder = EtraceEncoder(self.etrace_config, metrics=self.metrics)
        self._framer = EtraceFramer(
            sync_period=self.sync_period, metrics=self.metrics
        )
        self.enabled = True

    def disable(self) -> None:
        self._encoder = None
        self._framer = None
        self.enabled = False

    def set_context_id(self, context_id: int) -> None:
        """Track a different process (takes effect on next enable)."""
        if self.enabled:
            raise SocConfigError("disable tracing before reconfiguring")
        self.etrace_config.context_id = context_id

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------

    def export_state(self) -> dict:
        """JSON-able carry state for checkpointing (see repro.durability)."""
        if not self.enabled or self._encoder is None or self._framer is None:
            raise SocConfigError("E-Trace path not enabled")
        return {
            "encoder": self._encoder.export_state(),
            "framer": self._framer.export_state(),
        }

    def restore_state(self, state: dict) -> None:
        self.disable()
        self.enable()
        assert self._encoder is not None and self._framer is not None
        self._encoder.restore_state(state["encoder"])
        self._framer.restore_state(state["framer"])

    # ------------------------------------------------------------------
    # Data-plane
    # ------------------------------------------------------------------

    def trace(self, event: BranchEvent) -> bytes:
        """Push one branch event through the encoder; returns frame bytes."""
        if not self.enabled or self._encoder is None or self._framer is None:
            raise SocConfigError("E-Trace path not enabled")
        packet_bytes = self._encoder.feed(event)
        return self._framer.push(packet_bytes)

    def flush(self) -> bytes:
        if not self.enabled or self._encoder is None or self._framer is None:
            raise SocConfigError("E-Trace path not enabled")
        out = self._framer.push(self._encoder.flush())
        out += self._framer.flush()
        return out

    def trace_all(self, events: Iterable[BranchEvent]) -> bytes:
        """Trace a whole event stream and flush (training collection)."""
        out = bytearray()
        for event in events:
            out += self.trace(event)
        out += self.flush()
        return bytes(out)

    @staticmethod
    def new_deframer() -> EtraceDeframer:
        """Receiver for the framed stream (what IGM instantiates)."""
        return EtraceDeframer()
