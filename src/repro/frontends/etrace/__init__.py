"""RISC-V E-Trace-inspired branch trace grammar.

A second, structurally different frontend for the RTAD pipeline:
branch-map packets for runs of not-taken conditionals, zigzag-varint
differential address packets for taken branches, periodic align+sync
bursts, all framed over a variable-length checksummed link ("ETP").
See :mod:`repro.frontends.etrace.packets` for the wire format and
``docs/FRONTENDS.md`` for the contract this package implements.
"""

from repro.frontends.etrace.decoder import (
    EtraceBranch,
    EtraceBranchMap,
    EtraceContext,
    EtraceDecoder,
    EtraceSupport,
    EtraceSync,
    EtraceTruncation,
)
from repro.frontends.etrace.driver import EtraceDriver
from repro.frontends.etrace.encoder import (
    EtraceConfig,
    EtraceEncoder,
    encode_trace,
)
from repro.frontends.etrace.frontend import EtraceFrontend
from repro.frontends.etrace.transport import EtraceDeframer, EtraceFramer

__all__ = [
    "EtraceBranch",
    "EtraceBranchMap",
    "EtraceConfig",
    "EtraceContext",
    "EtraceDecoder",
    "EtraceDeframer",
    "EtraceDriver",
    "EtraceEncoder",
    "EtraceFramer",
    "EtraceFrontend",
    "EtraceSupport",
    "EtraceSync",
    "EtraceTruncation",
    "encode_trace",
]
