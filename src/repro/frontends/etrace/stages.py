"""Batched dataplane stages for the E-Trace frontend.

The encode stage reuses the grammar-neutral
:class:`~repro.pipeline.stages.ByteCountEncodeStage` driving a real
:class:`EtraceEncoder` per event — the E-Trace grammar has no
vectorized fast path yet, so reference encoding *is* the model.  The
link stage is fully vectorized, mirroring
:class:`~repro.pipeline.stages.TpiuFrameStage`'s cumulative-sum frame
accounting with the ETP constants: 15 payload bytes per 17-byte full
frame, an 8-byte sync pattern, and a short (unpadded) tail frame.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.frontends.etrace.encoder import EtraceConfig, EtraceEncoder
from repro.frontends.etrace.transport import (
    FRAME_OVERHEAD,
    PAYLOAD_PER_FRAME,
    SYNC_SIZE,
)
from repro.obs import MetricsRegistry
from repro.pipeline.batch import TraceBatch
from repro.pipeline.stage import StageBase
from repro.pipeline.stages import ByteCountEncodeStage

_FULL_FRAME = PAYLOAD_PER_FRAME + FRAME_OVERHEAD


class EtraceEncodeStage(ByteCountEncodeStage):
    """Branch events -> per-event E-Trace packet byte counts."""

    def __init__(
        self,
        config: Optional[EtraceConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.config = config or EtraceConfig()
        super().__init__(
            name="etrace",
            encoder_factory=lambda: EtraceEncoder(
                self.config, metrics=self.metrics
            ),
            metrics=metrics,
        )


class EtraceFrameStage(StageBase):
    """Packet byte counts -> ETP link bytes leaving the trace port."""

    name = "etrace_link"

    def __init__(
        self,
        sync_period: int = 64,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        super().__init__(metrics=metrics)
        if sync_period < 1:
            raise ValueError("sync_period must be >= 1")
        self.sync_period = sync_period
        self.reset()
        self._m_frames = self.metrics.counter("etrace.link.frames")
        self._m_sync_frames = self.metrics.counter("etrace.link.sync_frames")
        self._m_payload = self.metrics.counter("etrace.link.payload_bytes")

    def reset(self) -> None:
        self._buffer = 0
        # A fresh framer emits the sync pattern before its first frame.
        self._frames_since_sync = self.sync_period

    def export_state(self) -> dict:
        return {
            "buffer": self._buffer,
            "frames_since_sync": self._frames_since_sync,
        }

    def restore_state(self, state: dict) -> None:
        self._buffer = state["buffer"]
        self._frames_since_sync = state["frames_since_sync"]

    def _advance_frames(self, frames: int) -> int:
        """Consume ``frames`` data-frame slots; return sync patterns."""
        period = self.sync_period
        g0 = period - self._frames_since_sync
        if frames <= g0:
            self._frames_since_sync += frames
            return 0
        syncs = (frames - g0 - 1) // period + 1
        last = g0 + (syncs - 1) * period
        self._frames_since_sync = frames - last
        return syncs

    def process(self, batch: TraceBatch) -> TraceBatch:
        self._account_batch(batch)
        if batch.tail:
            total = self._buffer + batch.tail_ptm_bytes
            complete, remainder = divmod(total, PAYLOAD_PER_FRAME)
            data_frames = complete + (1 if remainder else 0)
            syncs = self._advance_frames(data_frames)
            batch.tail_frame_bytes = (
                complete * _FULL_FRAME
                + ((remainder + FRAME_OVERHEAD) if remainder else 0)
                + syncs * SYNC_SIZE
            )
            self._buffer = 0
            self._m_frames.inc(data_frames)
            self._m_sync_frames.inc(syncs)
            self._m_payload.inc(total)
            return batch
        if len(batch) == 0:
            batch.frame_bytes = np.zeros(0, dtype=np.int64)
            return batch
        assert batch.ptm_bytes is not None
        cumulative = self._buffer + np.cumsum(batch.ptm_bytes)
        frames_after = cumulative // PAYLOAD_PER_FRAME
        frames_per_event = np.diff(frames_after, prepend=0)
        total_frames = int(frames_after[-1])
        period = self.sync_period
        g0 = period - self._frames_since_sync
        syncs_before = np.where(
            frames_after <= g0,
            0,
            (frames_after - g0 - 1) // period + 1,
        )
        syncs_per_event = np.diff(syncs_before, prepend=0)
        batch.frame_bytes = (
            frames_per_event * _FULL_FRAME + syncs_per_event * SYNC_SIZE
        )
        total_syncs = int(syncs_before[-1])
        self._advance_frames(total_frames)
        self._buffer = int(cumulative[-1]) % PAYLOAD_PER_FRAME
        self._m_frames.inc(total_frames)
        self._m_sync_frames.inc(total_syncs)
        self._m_payload.inc(PAYLOAD_PER_FRAME * total_frames)
        return batch
