"""E-Trace transport link ("ETP"): packet bytes -> checksummed frames.

The structural twin of :mod:`repro.coresight.tpiu`, with the layout a
RISC-V trace funnel would use instead of the TPIU's fixed 16-byte
frames:

    byte 0       ``0xE0 | payload_length`` (length 1..15)
    bytes 1..n   payload (raw encoder packet bytes)
    byte n+1     checksum: XOR of the payload bytes, tweaked with 0x5C
                 so an all-zero frame cannot checksum to itself

Frames are *variable length* — a flush emits a short frame instead of
a zero-padded one — so the deframer walks header-to-header rather than
slicing fixed strides.  Every ``sync_period`` frames an 8-byte sync
pattern (``7 x 0x55`` then ``0xD5``) is inserted so a late-attaching or
resynchronising receiver can find a frame boundary; ``0x55`` and
``0xD5`` are not legal frame headers, so the pattern cannot occur in
header position.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import FrameSyncError
from repro.obs import MetricsRegistry, NULL_REGISTRY

#: Header byte high nibble; low nibble carries the payload length.
FRAME_HEADER_BASE = 0xE0
PAYLOAD_PER_FRAME = 15
#: Full frame: header + 15 payload bytes + checksum.
FRAME_OVERHEAD = 2
FRAME_SIZE = PAYLOAD_PER_FRAME + FRAME_OVERHEAD
#: XOR tweak folded into every checksum byte.
CHECKSUM_TWEAK = 0x5C
SYNC_PATTERN = bytes([0x55] * 7 + [0xD5])
SYNC_SIZE = len(SYNC_PATTERN)


def frame_checksum(payload: bytes) -> int:
    check = CHECKSUM_TWEAK
    for byte in payload:
        check ^= byte
    return check


class EtraceFramer:
    """Link transmitter: accepts packet bytes, emits complete frames."""

    def __init__(
        self,
        sync_period: int = 64,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if sync_period < 1:
            raise ValueError("sync_period must be >= 1")
        self.sync_period = sync_period
        self._buffer = bytearray()
        self._frames_since_sync = sync_period  # sync immediately at start
        self.frames_emitted = 0
        self.metrics = metrics or NULL_REGISTRY
        self._m_frames = self.metrics.counter("etrace.link.frames")
        self._m_sync_frames = self.metrics.counter("etrace.link.sync_frames")
        self._m_payload = self.metrics.counter("etrace.link.payload_bytes")

    def export_state(self) -> dict:
        """JSON-able carry state for checkpointing (see repro.durability)."""
        return {
            "buffer": bytes(self._buffer).hex(),
            "frames_since_sync": self._frames_since_sync,
            "frames_emitted": self.frames_emitted,
        }

    def restore_state(self, state: dict) -> None:
        self._buffer = bytearray(bytes.fromhex(state["buffer"]))
        self._frames_since_sync = state["frames_since_sync"]
        self.frames_emitted = state["frames_emitted"]

    def push(self, data: bytes) -> bytes:
        """Buffer packet bytes; return any complete frames produced."""
        self._buffer += data
        out = bytearray()
        while len(self._buffer) >= PAYLOAD_PER_FRAME:
            payload = bytes(self._buffer[:PAYLOAD_PER_FRAME])
            del self._buffer[:PAYLOAD_PER_FRAME]
            out += self._frame(payload)
        return bytes(out)

    def flush(self) -> bytes:
        """Emit a final short frame with whatever remains buffered."""
        if not self._buffer:
            return b""
        payload = bytes(self._buffer)
        self._buffer.clear()
        return self._frame(payload)

    def _frame(self, payload: bytes) -> bytes:
        assert 1 <= len(payload) <= PAYLOAD_PER_FRAME
        out = bytearray()
        if self._frames_since_sync >= self.sync_period:
            out += SYNC_PATTERN
            self._frames_since_sync = 0
            self._m_sync_frames.inc()
        out.append(FRAME_HEADER_BASE | len(payload))
        out += payload
        out.append(frame_checksum(payload))
        self.frames_emitted += 1
        self._frames_since_sync += 1
        self._m_frames.inc()
        self._m_payload.inc(len(payload))
        return bytes(out)


class EtraceDeframer:
    """Receiver side: frames back to the raw packet byte stream.

    Starts unsynchronised: discards bytes until the sync pattern is
    seen, then walks header-to-header through variable-length frames.
    With ``resync_hunt=True`` a malformed header or checksum mismatch
    (the symptoms of byte loss shifting the frame boundary) does not
    raise: the deframer drops sync, counts a resync, and hunts for the
    next sync pattern.
    """

    def __init__(
        self,
        resync_hunt: bool = False,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.resync_hunt = resync_hunt
        self._synced = False
        self._buffer = bytearray()
        self.frames_consumed = 0
        self.bytes_discarded = 0
        self.frame_resyncs = 0
        self.metrics = metrics or NULL_REGISTRY
        self._m_resyncs = self.metrics.counter("etrace.deframer.resyncs")
        self._m_bytes_discarded = self.metrics.counter(
            "etrace.deframer.bytes_discarded"
        )

    def _discard(self, amount: int) -> None:
        self.bytes_discarded += amount
        self._m_bytes_discarded.inc(amount)

    def _desync(self, amount: int, message: str) -> None:
        """A malformed frame: drop sync and hunt for the next pattern."""
        if not self.resync_hunt:
            raise FrameSyncError(message)
        self._synced = False
        self.frame_resyncs += 1
        self._m_resyncs.inc()
        self._discard(amount)
        del self._buffer[:amount]

    def export_state(self) -> dict:
        """JSON-able carry state for checkpointing (see repro.durability)."""
        return {
            "synced": self._synced,
            "buffer": bytes(self._buffer).hex(),
            "frames_consumed": self.frames_consumed,
            "bytes_discarded": self.bytes_discarded,
            "frame_resyncs": self.frame_resyncs,
        }

    def restore_state(self, state: dict) -> None:
        self._synced = state["synced"]
        self._buffer = bytearray(bytes.fromhex(state["buffer"]))
        self.frames_consumed = state["frames_consumed"]
        self.bytes_discarded = state["bytes_discarded"]
        self.frame_resyncs = state["frame_resyncs"]

    @property
    def synced(self) -> bool:
        return self._synced

    def push(self, data: bytes) -> bytes:
        """Consume frame bytes; return recovered packet payload bytes."""
        self._buffer += data
        out = bytearray()
        while True:
            if not self._synced:
                index = bytes(self._buffer).find(SYNC_PATTERN)
                if index < 0:
                    # keep a tail that could be a sync prefix
                    keep = min(len(self._buffer), SYNC_SIZE - 1)
                    self._discard(len(self._buffer) - keep)
                    del self._buffer[:len(self._buffer) - keep]
                    break
                self._discard(index)
                del self._buffer[:index + SYNC_SIZE]
                self._synced = True
                continue
            if not self._buffer:
                break
            lead = self._buffer[0]
            if lead == SYNC_PATTERN[0]:
                if len(self._buffer) < SYNC_SIZE:
                    break
                if bytes(self._buffer[:SYNC_SIZE]) == SYNC_PATTERN:
                    del self._buffer[:SYNC_SIZE]
                    continue
                self._desync(1, "corrupt sync pattern")
                continue
            length = lead & 0x0F
            if (lead & 0xF0) != FRAME_HEADER_BASE or length < 1:
                self._desync(1, f"invalid frame header {lead:#04x}")
                continue
            total = length + FRAME_OVERHEAD
            if len(self._buffer) < total:
                break
            payload = bytes(self._buffer[1:1 + length])
            check = self._buffer[1 + length]
            if check != frame_checksum(payload):
                self._desync(total, "frame checksum mismatch")
                continue
            del self._buffer[:total]
            out += payload
            self.frames_consumed += 1
        return bytes(out)
