"""The trace-frontend contract: what a branch-trace grammar provides.

The paper's pipeline (branch trace -> IGM vectors -> ML-MIAOW
inference) is ISA-agnostic: nothing downstream of the trace port cares
*which* grammar compressed the branch stream, only how many bytes each
event produced (FIFO timing) and which targets were taken (IGM
mapping).  A :class:`TraceFrontend` packages everything that *is*
grammar-specific behind one object:

- ``create_driver`` — the kernel-driver-style encoder facade
  (enable/disable lifecycle, per-event ``trace``, ``flush``,
  ``set_context_id``, checkpoint export/restore).
- ``build_encode_stages`` — the batched-dataplane stages that model
  the encoder + link framer at the byte-accounting level
  (:class:`repro.pipeline.stages.PtmEncodeStage` and friends).
- ``new_deframer`` / ``new_decoder`` — receiver-side factories, with
  ``resync_hunt`` fault recovery for the chaos harness.
- Counter-namespace metadata so observability surfaces (``repro.eval
  metrics``) can enumerate a frontend's resync/truncation counters
  without knowing the grammar.

See ``docs/FRONTENDS.md`` for the full contract, including the driver
protocol and the resync semantics each implementation must honour.
"""

from __future__ import annotations

import abc
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Protocol,
    Tuple,
    runtime_checkable,
)

from repro.errors import SocConfigError
from repro.obs import MetricsRegistry
from repro.workloads.cfg import BranchEvent

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.pipeline.stage import Stage


@runtime_checkable
class TraceDriver(Protocol):
    """What every frontend's encoder driver must expose.

    The session lifecycle is explicit: a freshly created driver is
    *disabled* and refuses to trace; ``enable`` powers up a fresh
    encoder + link framer, ``disable`` tears them down.  Callers that
    own sessions (:class:`repro.soc.cpu.HostCpu`,
    :class:`repro.soc.loop.LoopDataplane`) enable at session start, so
    a frontend is never traced before the session begins.
    """

    enabled: bool

    def enable(self) -> None: ...
    def disable(self) -> None: ...
    def set_context_id(self, context_id: int) -> None: ...
    def trace(self, event: BranchEvent) -> bytes: ...
    def flush(self) -> bytes: ...
    def trace_all(self, events: Iterable[BranchEvent]) -> bytes: ...
    def export_state(self) -> dict: ...
    def restore_state(self, state: dict) -> None: ...


class TraceFrontend(abc.ABC):
    """One branch-trace grammar: encoder, link layer, and receivers."""

    #: Registry key (``RtadConfig.frontend`` selector value).
    name: str = "abstract"
    #: Prefix of the encoder-side observability counters
    #: (``ptm.*``/``tpiu.*`` for CoreSight, ``etrace.*`` for E-Trace).
    counter_namespace: str = ""
    #: Receiver-side resync/loss counters this grammar maintains,
    #: surfaced by ``repro.eval metrics`` robustness tables.
    decoder_counters: Tuple[str, ...] = ()
    deframer_counters: Tuple[str, ...] = ()

    @abc.abstractmethod
    def create_driver(
        self, metrics: Optional[MetricsRegistry] = None
    ) -> TraceDriver:
        """Build the (disabled) encoder driver for one trace session
        owner.  Configuration objects are shared with the stages built
        by :meth:`build_encode_stages`, so control-plane changes (e.g.
        ``set_context_id``) are visible to both dataplanes."""

    @abc.abstractmethod
    def build_encode_stages(
        self, metrics: Optional[MetricsRegistry] = None
    ) -> List["Stage"]:
        """Batched-dataplane stages modelling encoder + link framer.

        Returned in pipeline order; the assembler appends the shared
        grammar-neutral FIFO/IGM/deliver stages after them.  Byte
        counts must match the driver produced by :meth:`create_driver`
        bit-for-bit (the dataplane-equivalence tests pin this).
        """

    @abc.abstractmethod
    def new_deframer(
        self,
        resync_hunt: bool = False,
        metrics: Optional[MetricsRegistry] = None,
    ):
        """Link-layer receiver: framed stream -> trace packet bytes."""

    @abc.abstractmethod
    def new_decoder(
        self,
        strict: bool = True,
        resync_hunt: bool = False,
        metrics: Optional[MetricsRegistry] = None,
    ):
        """Packet-grammar receiver: trace bytes -> decoded packets."""


_REGISTRY: Dict[str, Callable[[], TraceFrontend]] = {}


def register_frontend(
    name: str, factory: Callable[[], TraceFrontend]
) -> None:
    """Register a frontend factory under ``name`` (last one wins)."""
    _REGISTRY[name] = factory


def frontend_names() -> Tuple[str, ...]:
    """The selectable frontend names (``RtadConfig.frontend`` values)."""
    _ensure_builtins()
    return tuple(sorted(_REGISTRY))


def get_frontend(name: str, **kwargs) -> TraceFrontend:
    """Instantiate a registered frontend by name.

    ``kwargs`` are forwarded to the frontend constructor, so callers
    can pass grammar-specific configuration (``ptm_config=...`` for
    CoreSight, ``etrace_config=...`` for E-Trace).
    """
    _ensure_builtins()
    factory = _REGISTRY.get(name)
    if factory is None:
        raise SocConfigError(
            f"unknown trace frontend {name!r} "
            f"(have: {', '.join(sorted(_REGISTRY))})"
        )
    return factory(**kwargs)  # type: ignore[call-arg]


def make_frontend(
    name: str, ptm_config=None, **kwargs
) -> TraceFrontend:
    """Resolve a frontend selector plus optional legacy PTM config.

    ``Deployment.ptm_config`` predates the frontend interface; it only
    makes sense for the CoreSight grammar, so passing it alongside any
    other frontend is a configuration error rather than a silent drop.
    """
    if ptm_config is not None:
        if name != "coresight":
            raise SocConfigError(
                f"ptm_config is CoreSight-specific (frontend={name!r})"
            )
        return get_frontend(name, ptm_config=ptm_config, **kwargs)
    return get_frontend(name, **kwargs)


def _ensure_builtins() -> None:
    """Late-register the built-in frontends (avoids import cycles)."""
    if "coresight" not in _REGISTRY:
        from repro.frontends.coresight import CoreSightFrontend

        _REGISTRY.setdefault("coresight", CoreSightFrontend)
    if "etrace" not in _REGISTRY:
        from repro.frontends.etrace import EtraceFrontend

        _REGISTRY.setdefault("etrace", EtraceFrontend)
