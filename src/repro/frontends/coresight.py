"""The ARM CoreSight PTM/TPIU grammar behind the frontend interface.

This adapter is a thin veneer: every component already existed
(:class:`repro.coresight.driver.CoreSightDriver`, the batched
:class:`~repro.pipeline.stages.PtmEncodeStage` /
:class:`~repro.pipeline.stages.TpiuFrameStage`, the
:class:`~repro.coresight.tpiu.TpiuDeframer` and
:class:`~repro.coresight.decoder.PftDecoder`) — the frontend simply
owns the shared configuration and hands the pieces out, so
``frontend="coresight"`` stays byte-identical to the pre-frontend SoC.
"""

from __future__ import annotations

from typing import List, Optional

from repro.coresight.decoder import PftDecoder
from repro.coresight.driver import CoreSightDriver
from repro.coresight.ptm import PtmConfig
from repro.coresight.tpiu import DEFAULT_SOURCE_ID, TpiuDeframer
from repro.frontends.base import TraceFrontend
from repro.obs import MetricsRegistry


class CoreSightFrontend(TraceFrontend):
    """PTM branch-broadcast packets framed by the 16-byte TPIU port."""

    name = "coresight"
    counter_namespace = "ptm"
    decoder_counters = (
        "coresight.decoder.resyncs",
        "coresight.decoder.truncated",
        "coresight.decoder.hunt_bytes",
    )
    deframer_counters = (
        "tpiu.frame_resyncs",
        "tpiu.bytes_discarded",
    )

    def __init__(
        self,
        ptm_config: Optional[PtmConfig] = None,
        source_id: int = DEFAULT_SOURCE_ID,
        sync_period: int = 64,
    ) -> None:
        #: Shared between the driver and the batched encode stage, so
        #: control-plane changes (``set_context_id``) reach both.
        self.ptm_config = ptm_config or PtmConfig()
        self.source_id = source_id
        self.sync_period = sync_period

    def create_driver(
        self, metrics: Optional[MetricsRegistry] = None
    ) -> CoreSightDriver:
        return CoreSightDriver(
            ptm_config=self.ptm_config,
            source_id=self.source_id,
            sync_period=self.sync_period,
            metrics=metrics,
        )

    def build_encode_stages(
        self, metrics: Optional[MetricsRegistry] = None
    ) -> List:
        # Deferred import: repro.pipeline.stages pulls in numpy-heavy
        # modules the control-plane users of this frontend never need.
        from repro.pipeline.stages import PtmEncodeStage, TpiuFrameStage

        return [
            PtmEncodeStage(config=self.ptm_config, metrics=metrics),
            TpiuFrameStage(sync_period=self.sync_period, metrics=metrics),
        ]

    def new_deframer(
        self,
        resync_hunt: bool = False,
        metrics: Optional[MetricsRegistry] = None,
    ) -> TpiuDeframer:
        return TpiuDeframer(
            expected_source_id=self.source_id,
            resync_hunt=resync_hunt,
            metrics=metrics,
        )

    def new_decoder(
        self,
        strict: bool = True,
        resync_hunt: bool = False,
        metrics: Optional[MetricsRegistry] = None,
    ) -> PftDecoder:
        return PftDecoder(
            strict=strict, resync_hunt=resync_hunt, metrics=metrics
        )
