"""Pluggable trace frontends: branch-trace grammars behind one contract.

Everything downstream of the trace port — the PTM FIFO timing model,
the IGM address mapper, the vector encoder, ML-MIAOW — is grammar
agnostic.  A :class:`TraceFrontend` bundles the grammar-specific
pieces (encoder driver, batched encode/frame stages, deframer and
decoder factories, counter namespaces) so the SoC selects a grammar
with ``RtadConfig(frontend="coresight")`` or ``frontend="etrace"``.
"""

from repro.frontends.base import (
    TraceDriver,
    TraceFrontend,
    frontend_names,
    get_frontend,
    make_frontend,
    register_frontend,
)
from repro.frontends.coresight import CoreSightFrontend

__all__ = [
    "CoreSightFrontend",
    "TraceDriver",
    "TraceFrontend",
    "frontend_names",
    "get_frontend",
    "make_frontend",
    "register_frontend",
]
