"""IGM top level: 32-bit trace port in, input vectors out.

Wires TA -> P2S -> address mapper -> vector encoder with the cycle
behaviour of the RTL: one trace word enters TA per IGM cycle, P2S
serializes one address per cycle, and the IVG needs
:data:`VECTORIZE_CYCLES` (two) cycles to map + encode — the "16 ns"
step (2) of Fig. 7 at the 125 MHz module clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence

from repro.errors import IgmError
from repro.igm.address_mapper import AddressMapper
from repro.igm.p2s import P2sEntry, ParallelToSerial
from repro.igm.trace_analyzer import TraceAnalyzer
from repro.igm.vector_encoder import EncoderMode, InputVector, VectorEncoder
from repro.obs import MetricsRegistry, NULL_REGISTRY

#: IGM cycles from a serialized address to a completed vector element
#: (address-map lookup + vector-encode register stage).
VECTORIZE_CYCLES = 2


@dataclass
class IgmConfig:
    """Host-visible IGM configuration registers."""

    mode: EncoderMode = EncoderMode.SEQUENCE
    window: int = 16
    stride: int = 1
    mapper_capacity: int = 1024
    p2s_depth: int = 16
    trace_source_id: int = 0x1
    #: Only pass branches of this traced process (PTM context ID);
    #: None monitors every context on the trace port.
    monitored_context: Optional[int] = None


class Igm:
    """The Input Generation Module."""

    def __init__(
        self,
        config: Optional[IgmConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.config = config or IgmConfig()
        self.metrics = metrics or NULL_REGISTRY
        self.trace_analyzer = TraceAnalyzer(
            source_id=self.config.trace_source_id,
            monitored_context=self.config.monitored_context,
            metrics=self.metrics,
        )
        self.p2s = ParallelToSerial(depth=self.config.p2s_depth)
        self.mapper = AddressMapper(
            capacity=self.config.mapper_capacity, metrics=self.metrics
        )
        self._encoder: Optional[VectorEncoder] = None
        self.cycle = 0
        self.vectors: List[InputVector] = []

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------

    def configure(self, monitored_addresses: Sequence[int]) -> None:
        """Program the mapper table and size the encoder vocabulary."""
        self.mapper.load(monitored_addresses)
        self._encoder = VectorEncoder(
            mode=self.config.mode,
            window=self.config.window,
            vocabulary_size=self.mapper.size + 1,
            stride=self.config.stride,
            metrics=self.metrics,
        )

    @property
    def configured(self) -> bool:
        return self._encoder is not None

    @property
    def encoder(self) -> VectorEncoder:
        if self._encoder is None:
            raise IgmError("IGM used before configure()")
        return self._encoder

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------

    def push_word(self, word: int) -> List[InputVector]:
        """One IGM cycle: ingest a trace word, advance the pipeline."""
        if self._encoder is None:
            raise IgmError("IGM used before configure()")
        self.cycle += 1
        decoded = self.trace_analyzer.process_word(
            word, decode=self._ta_may_decode()
        )
        burst = [
            P2sEntry(
                address=branch.address,
                is_syscall=branch.is_syscall,
                decode_cycle=self.cycle,
            )
            for branch in decoded
        ]
        self.p2s.push_burst(burst)
        return self._drain_one()

    def idle_cycle(self) -> List[InputVector]:
        """Advance one cycle with no new trace word (drains backlogs)."""
        if self._encoder is None:
            raise IgmError("IGM used before configure()")
        self.cycle += 1
        if self._ta_may_decode():
            decoded = self.trace_analyzer.idle_cycle()
        else:
            decoded = []
        burst = [
            P2sEntry(
                address=branch.address,
                is_syscall=branch.is_syscall,
                decode_cycle=self.cycle,
            )
            for branch in decoded
        ]
        self.p2s.push_burst(burst)
        return self._drain_one()

    def drain(self) -> List[InputVector]:
        """Run idle cycles until the TA backlog and P2S empty."""
        out: List[InputVector] = []
        while self.trace_analyzer.backlog or not self.p2s.empty:
            out.extend(self.idle_cycle())
        return out

    def push_words(self, words: Iterable[int]) -> List[InputVector]:
        """Stream many words, then drain."""
        out: List[InputVector] = []
        for word in words:
            out.extend(self.push_word(word))
        out.extend(self.drain())
        return out

    def _ta_may_decode(self) -> bool:
        """Ready/valid back-pressure: the TA byte lanes only advance
        when the P2S can absorb a worst-case 4-address burst."""
        return len(self.p2s) <= self.p2s.depth - 4

    def _drain_one(self) -> List[InputVector]:
        """P2S pops one address per cycle into the IVG."""
        entry = self.p2s.pop()
        if entry is None:
            return []
        index = self.mapper.lookup(entry.address)
        if index is None:
            return []
        vector = self.encoder.push(
            index=index,
            address=entry.address,
            cycle=self.cycle + VECTORIZE_CYCLES,
        )
        if vector is None:
            return []
        self.vectors.append(vector)
        return [vector]
