"""Trace Analyzer: the packet-decode front end of IGM.

The TA receives the TPIU stream through a 32-bit port.  "Because the
trace stream is constructed of multiple packets of one or more bytes of
data, decoding for each packet must be done sequentially in bytes.  TA
has four TA units responsible for each byte decoding" — so at most four
payload bytes are decoded per TA cycle, and the worst case yields four
branch addresses in a single cycle (four 1-byte address packets).

Deframing runs ahead of decode: a completing TPIU frame releases up to
15 payload bytes at once, which land in a small backlog buffer that the
four byte lanes drain at 4 bytes/cycle.  Sustained payload rate is
15/16 of the port rate, so the backlog is bounded by one frame.

Each :class:`TaUnit` is a byte-granular decoder stage; the packet state
machine threads through the four units exactly as a pipelined hardware
decoder would thread its state across byte lanes.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Tuple

from repro.coresight.decoder import (
    DecodedBranch,
    DecodedContext,
    DecodedISync,
    PftDecoder,
)
from repro.coresight.tpiu import TpiuDeframer
from repro.obs import MetricsRegistry, NULL_REGISTRY


@dataclass
class TaUnit:
    """One byte-lane decoder.

    The four units share one packet-decoder state machine (in RTL this
    is a forwarded state vector between lanes); each unit's ``decode``
    consumes exactly one byte and reports any packet completed at that
    byte boundary.
    """

    lane: int
    bytes_decoded: int = 0
    branches_decoded: int = 0

    def decode(self, state: PftDecoder, byte: int) -> List[object]:
        self.bytes_decoded += 1
        completed = state.step_byte(byte)
        self.branches_decoded += sum(
            1 for p in completed if isinstance(p, DecodedBranch)
        )
        return completed


class TraceAnalyzer:
    """Four TA units fed from the 32-bit trace port, one word per cycle."""

    NUM_UNITS = 4

    def __init__(
        self,
        source_id: int = 0x1,
        strict: bool = False,
        monitored_context: Optional[int] = None,
        resync_hunt: bool = False,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self._deframer = TpiuDeframer(
            expected_source_id=source_id,
            resync_hunt=resync_hunt,
            metrics=metrics,
        )
        self._decoder = PftDecoder(
            strict=strict, resync_hunt=resync_hunt, metrics=metrics
        )
        self._pending: Deque[int] = deque()
        self.units = [TaUnit(lane=i) for i in range(self.NUM_UNITS)]
        self.cycles = 0
        self.words_consumed = 0
        self.max_backlog = 0
        #: Filter branches to one traced process; None passes all.
        self.monitored_context = monitored_context
        self.current_context: Optional[int] = None
        self.branches_filtered_by_context = 0
        self.metrics = metrics or NULL_REGISTRY
        self._m_words = self.metrics.counter("igm.ta.words")
        self._m_bytes = self.metrics.counter("igm.ta.bytes_decoded")
        self._m_branches = self.metrics.counter("igm.ta.branches_decoded")
        self._m_filtered = self.metrics.counter("igm.ta.context_filtered")
        self._m_backlog = self.metrics.gauge("igm.ta.backlog")

    @property
    def backlog(self) -> int:
        """Payload bytes deframed but not yet decoded."""
        return len(self._pending)

    @property
    def synced(self) -> bool:
        return self._deframer.synced

    @property
    def resyncs(self) -> int:
        """Packet-decoder re-locks (resync-hunt mode only)."""
        return self._decoder.resyncs

    @property
    def frame_resyncs(self) -> int:
        """Deframer sync losses recovered (resync-hunt mode only)."""
        return self._deframer.frame_resyncs

    def finish(self) -> List[DecodedBranch]:
        """End of stream: drain the backlog, then close the decoder.

        Closing counts a truncated trailing packet on the decoder
        (``coresight.decoder.truncated``); on a strict decoder it
        raises instead — see :meth:`PftDecoder.finish`.
        """
        branches: List[DecodedBranch] = []
        while self._pending:
            branches.extend(self.idle_cycle())
        self._decoder.finish()
        return branches

    def process_word(self, word: int, decode: bool = True) -> List[DecodedBranch]:
        """Consume one 32-bit trace-port word (one TA cycle).

        ``decode=False`` models downstream back-pressure: the word
        still enters the deframer (the trace port cannot be stalled)
        but the byte lanes hold their state this cycle.
        """
        self.words_consumed += 1
        self._m_words.inc()
        payload = self._deframer.push(int(word).to_bytes(4, "little"))
        self._pending.extend(payload)
        self.max_backlog = max(self.max_backlog, len(self._pending))
        self._m_backlog.set(len(self._pending))
        if not decode:
            self.cycles += 1
            return []
        return self._decode_cycle()

    def idle_cycle(self) -> List[DecodedBranch]:
        """One TA cycle with no new port word: drain the backlog."""
        return self._decode_cycle()

    def _decode_cycle(self) -> List[DecodedBranch]:
        self.cycles += 1
        branches: List[DecodedBranch] = []
        for lane in range(self.NUM_UNITS):
            if not self._pending:
                break
            byte = self._pending.popleft()
            self._m_bytes.inc()
            for item in self.units[lane].decode(self._decoder, byte):
                if isinstance(item, DecodedContext):
                    self.current_context = item.context_id
                elif isinstance(item, DecodedISync):
                    self.current_context = item.context_id
                elif isinstance(item, DecodedBranch):
                    if (
                        self.monitored_context is not None
                        and self.current_context is not None
                        and self.current_context != self.monitored_context
                    ):
                        self.branches_filtered_by_context += 1
                        self._m_filtered.inc()
                        continue
                    branches.append(item)
        self._m_branches.inc(len(branches))
        return branches

    def process_words(self, words: List[int]) -> List[Tuple[int, DecodedBranch]]:
        """Consume many words then drain; returns (cycle, branch) pairs."""
        out: List[Tuple[int, DecodedBranch]] = []
        for word in words:
            for branch in self.process_word(word):
                out.append((self.cycles, branch))
        while self._pending:
            for branch in self.idle_cycle():
                out.append((self.cycles, branch))
        return out
