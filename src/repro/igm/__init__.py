"""Input Generation Module (IGM).

Hardware that turns the raw CoreSight trace-port stream into ML input
vectors, mirroring Fig. 2 of the paper:

    32-bit port -> Trace Analyzer (4 TA units) -> P2S -> IVG
                   IVG = Address Mapper -> Vector Encoder

The functional behaviour is verified against the golden software
decoder; the cycle behaviour (one word per cycle into TA, one address
per cycle out of P2S, 2-cycle vectorization) drives the Fig. 7 latency
reproduction.
"""

from repro.igm.trace_analyzer import TraceAnalyzer, TaUnit
from repro.igm.p2s import ParallelToSerial
from repro.igm.address_mapper import AddressMapper
from repro.igm.vector_encoder import VectorEncoder, InputVector, EncoderMode
from repro.igm.igm import Igm, IgmConfig

__all__ = [
    "TraceAnalyzer",
    "TaUnit",
    "ParallelToSerial",
    "AddressMapper",
    "VectorEncoder",
    "InputVector",
    "EncoderMode",
    "Igm",
    "IgmConfig",
]
