"""Address mapper: the configurable relevance filter of the IVG.

"The address mapper lets only the relevant branch addresses be passed
by filtering out the addresses not existing within a lookup table.
Users can configure the table to select branches related to their ML
models, such as system calls or critical API function calls."
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.errors import MapperConfigError
from repro.obs import MetricsRegistry, NULL_REGISTRY

#: Hardware lookup-table capacity (CAM entries in the RTL).
DEFAULT_CAPACITY = 1024


class AddressMapper:
    """Content-addressable lookup table over branch target addresses.

    Each entry maps an address to a small dense index — the value the
    vector encoder consumes.  Index 0 is never assigned; it is the
    "miss" code on the hardware match bus.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if capacity < 1:
            raise MapperConfigError("capacity must be positive")
        self.capacity = capacity
        self._table: Dict[int, int] = {}
        self.hits = 0
        self.misses = 0
        self.metrics = metrics or NULL_REGISTRY
        self._m_hits = self.metrics.counter("igm.mapper.hits")
        self._m_misses = self.metrics.counter("igm.mapper.misses")

    # ------------------------------------------------------------------
    # Configuration (host writes through the control bus)
    # ------------------------------------------------------------------

    def load(self, addresses: Iterable[int]) -> None:
        """Program the table; indices are assigned in sorted order so a
        given address set always yields the same encoding."""
        addresses = sorted(set(int(a) for a in addresses))
        if len(addresses) > self.capacity:
            raise MapperConfigError(
                f"{len(addresses)} entries exceed table capacity "
                f"{self.capacity}"
            )
        for address in addresses:
            if address < 0 or address > 0xFFFFFFFF:
                raise MapperConfigError(f"bad address {address:#x}")
        self._table = {
            address: index + 1 for index, address in enumerate(addresses)
        }
        self.hits = 0
        self.misses = 0

    def clear(self) -> None:
        self._table = {}

    @property
    def entries(self) -> List[int]:
        return sorted(self._table)

    @property
    def size(self) -> int:
        return len(self._table)

    # ------------------------------------------------------------------
    # Match path
    # ------------------------------------------------------------------

    def lookup(self, address: int) -> Optional[int]:
        """Return the dense index for a monitored address, else None."""
        index = self._table.get(int(address))
        if index is None:
            self.misses += 1
            self._m_misses.inc()
            return None
        self.hits += 1
        self._m_hits.inc()
        return index

    def __contains__(self, address: int) -> bool:
        return int(address) in self._table
