"""Parallel-to-serial converter between TA and IVG.

"Since the incoming 32-bit input can be decoded into four branch
addresses in the worst case, we install the parallel-to-serial
converter (P2S) between TA and input vector generator" — the IVG
accepts one address per cycle, so a burst of up to four decoded
addresses must be spread over subsequent cycles.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional

from repro.errors import IgmError


@dataclass(frozen=True)
class P2sEntry:
    """One queued address with the TA cycle it was decoded at."""

    address: int
    is_syscall: bool
    decode_cycle: int


class ParallelToSerial:
    """Small hardware queue: up to 4 pushes per cycle, 1 pop per cycle."""

    def __init__(self, depth: int = 16) -> None:
        if depth < 4:
            raise IgmError("P2S must hold at least one worst-case word")
        self.depth = depth
        self._queue: Deque[P2sEntry] = deque()
        self.max_occupancy = 0
        self.pushes = 0
        self.drops = 0

    def push_burst(self, entries: List[P2sEntry]) -> None:
        """Enqueue the addresses decoded in one TA cycle."""
        if len(entries) > 4:
            raise IgmError("TA cannot decode more than 4 addresses/cycle")
        for entry in entries:
            if len(self._queue) >= self.depth:
                # Hardware would back-pressure the TA; bursts beyond the
                # queue are counted as drops so the SoC layer can report
                # loss instead of silently stalling.
                self.drops += 1
                continue
            self._queue.append(entry)
            self.pushes += 1
        self.max_occupancy = max(self.max_occupancy, len(self._queue))

    def pop(self) -> Optional[P2sEntry]:
        """One serialized address per cycle (None when empty)."""
        if not self._queue:
            return None
        return self._queue.popleft()

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def empty(self) -> bool:
        return not self._queue
