"""Vector encoder: mapped branch indices -> ML input vectors.

"The filtered address values are transferred in real time to VE as
input and then converted into vector format following a conversion
table that can be configured to match the need of target ML models."

Two conversion modes cover the two deployed models:

- ``SEQUENCE``: a sliding window of the last W mapped indices — the
  LSTM input (branch sequence modeling, [8]).
- ``HISTOGRAM``: a count vector over the table indices within a window
  of W events — the ELM input (contiguous syscall-pattern features in
  the spirit of [2]).
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional

import numpy as np

from repro.errors import EncoderConfigError
from repro.obs import MetricsRegistry, NULL_REGISTRY


class EncoderMode(enum.Enum):
    SEQUENCE = "sequence"
    HISTOGRAM = "histogram"


@dataclass(frozen=True)
class InputVector:
    """One vector handed to the MCM.

    ``trigger_address`` / ``trigger_cycle`` identify the branch event
    that completed the window — detection latency is measured from
    that branch's retirement.
    """

    values: np.ndarray
    sequence_number: int
    trigger_address: int
    trigger_cycle: int

    @property
    def width(self) -> int:
        return int(self.values.shape[0])


class VectorEncoder:
    """Windowed conversion of mapped indices into input vectors."""

    def __init__(
        self,
        mode: EncoderMode = EncoderMode.SEQUENCE,
        window: int = 16,
        vocabulary_size: int = 64,
        stride: int = 1,
        metrics: "MetricsRegistry | None" = None,
    ) -> None:
        if window < 1:
            raise EncoderConfigError("window must be >= 1")
        if stride < 1:
            raise EncoderConfigError("stride must be >= 1")
        if vocabulary_size < 2:
            raise EncoderConfigError("vocabulary must hold >= 2 indices")
        self.mode = mode
        self.window = window
        self.stride = stride
        self.vocabulary_size = vocabulary_size
        self._history: Deque[int] = deque(maxlen=window)
        self._since_emit = 0
        self._sequence_number = 0
        self.vectors_emitted = 0
        self.metrics = metrics or NULL_REGISTRY
        self._m_pushes = self.metrics.counter("igm.encoder.pushes")
        self._m_vectors = self.metrics.counter("igm.vectors_encoded")

    def reset(self, reset_sequence: bool = False) -> None:
        """Drop the window history (new trace session).

        ``reset_sequence`` also rewinds the sequence counter so the
        next session numbers its vectors from zero — full
        fresh-encoder equivalence.
        """
        self._history.clear()
        self._since_emit = 0
        if reset_sequence:
            self._sequence_number = 0

    def export_state(self) -> dict:
        """JSON-able carry state for checkpointing (see repro.durability)."""
        return {
            "history": list(self._history),
            "since_emit": self._since_emit,
            "sequence_number": self._sequence_number,
            "vectors_emitted": self.vectors_emitted,
        }

    def restore_state(self, state: dict) -> None:
        self._history = deque(state["history"], maxlen=self.window)
        self._since_emit = state["since_emit"]
        self._sequence_number = state["sequence_number"]
        self.vectors_emitted = state["vectors_emitted"]

    def push(
        self, index: int, address: int, cycle: int
    ) -> Optional[InputVector]:
        """Accept one mapped index; emit a vector when a window fills.

        Returns None until the first window is complete, then one
        vector every ``stride`` further events.
        """
        if not 0 < index < self.vocabulary_size:
            raise EncoderConfigError(
                f"mapped index {index} outside vocabulary "
                f"[1, {self.vocabulary_size})"
            )
        self._m_pushes.inc()
        self._history.append(index)
        if len(self._history) < self.window:
            return None
        self._since_emit += 1
        if self._since_emit < self.stride and self._sequence_number > 0:
            return None
        self._since_emit = 0
        values = self._convert()
        vector = InputVector(
            values=values,
            sequence_number=self._sequence_number,
            trigger_address=address,
            trigger_cycle=cycle,
        )
        self._sequence_number += 1
        self.vectors_emitted += 1
        self._m_vectors.inc()
        return vector

    def _convert(self) -> np.ndarray:
        if self.mode is EncoderMode.SEQUENCE:
            return np.array(self._history, dtype=np.int64)
        counts = np.zeros(self.vocabulary_size, dtype=np.int64)
        for index in self._history:
            counts[index] += 1
        return counts
