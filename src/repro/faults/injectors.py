"""Byte-level trace-stream corruption driven by a :class:`FaultPlan`.

:class:`StreamFaultInjector` wraps any producer of raw trace bytes
(typically the framed TPIU output) and applies bit flips, byte drops,
byte duplications, and frame-desync runs.  Decisions are indexed by the
*absolute* byte offset in the stream, so feeding the same bytes in
different chunk sizes yields the identical corrupted stream — the
property the cross-dataplane determinism tests pin down.

A plan with no active byte channels (or ``rate=0`` everywhere) is a
byte-identical passthrough: ``feed`` returns its input object untouched.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.faults.plan import BYTE_KINDS, FaultKind, FaultPlan
from repro.obs import MetricsRegistry, NULL_REGISTRY


class StreamFaultInjector:
    """Stateful byte corruptor: tracks the absolute stream offset."""

    def __init__(
        self,
        plan: FaultPlan,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.plan = plan
        self._active = plan.active(BYTE_KINDS)
        self.metrics = metrics or NULL_REGISTRY
        self._m_flipped = self.metrics.counter("faults.bytes.flipped")
        self._m_dropped = self.metrics.counter("faults.bytes.dropped")
        self._m_duplicated = self.metrics.counter("faults.bytes.duplicated")
        self._m_desyncs = self.metrics.counter("faults.bytes.desyncs")
        # Lifetime totals, kept as plain attributes so callers can read
        # them even under the null registry.
        self.flipped = 0
        self.dropped = 0
        self.duplicated = 0
        self.desyncs = 0
        self.reset()

    def reset(self) -> None:
        """New stream: restart at offset zero (lifetime counts kept)."""
        self._offset = 0
        # Bytes still owed to a desync run that crossed a chunk edge.
        self._pending_drop = 0

    def feed(self, data: bytes) -> bytes:
        """Corrupt one chunk; returns the surviving (mutated) bytes."""
        n = len(data)
        offset = self._offset
        self._offset += n
        if n == 0 or not self._active:
            return data
        indices = np.arange(offset, offset + n, dtype=np.uint64)
        array = np.frombuffer(data, dtype=np.uint8).copy()
        counts = np.ones(n, dtype=np.int64)

        # Continue a desync run left over from the previous chunk.
        carried = min(self._pending_drop, n)
        if carried:
            counts[:carried] = 0
            self._pending_drop -= carried

        flip = self.plan.decide_array(FaultKind.BIT_FLIP, indices)
        num_flips = int(flip.sum())
        if num_flips:
            hashes = self.plan.hash_array(FaultKind.BIT_FLIP, indices[flip])
            bits = (hashes >> np.uint64(58)).astype(np.uint8) & np.uint8(7)
            array[flip] ^= np.uint8(1) << bits
            self.flipped += num_flips
            self._m_flipped.inc(num_flips)

        dup = self.plan.decide_array(FaultKind.BYTE_DUP, indices)
        counts[dup & (counts > 0)] = 2

        drop = self.plan.decide_array(FaultKind.BYTE_DROP, indices)
        counts[drop] = 0

        desync_spec = self.plan.spec(FaultKind.FRAME_DESYNC)
        if desync_spec is not None:
            desync = self.plan.decide_array(FaultKind.FRAME_DESYNC, indices)
            run = desync_spec.desync_bytes
            for position in np.nonzero(desync)[0]:
                start = int(position)
                end = min(start + run, n)
                counts[start:end] = 0
                if start + run > n:
                    self._pending_drop = max(
                        self._pending_drop, start + run - n
                    )
                self.desyncs += 1
                self._m_desyncs.inc()

        num_dropped = int((counts == 0).sum())
        num_duplicated = int((counts > 1).sum())
        self.dropped += num_dropped
        self.duplicated += num_duplicated
        if num_dropped:
            self._m_dropped.inc(num_dropped)
        if num_duplicated:
            self._m_duplicated.inc(num_duplicated)
        if not num_dropped and not num_duplicated and not num_flips:
            return data
        return np.repeat(array, counts).tobytes()


def corrupt_stream(data: bytes, plan: FaultPlan) -> bytes:
    """One-shot convenience: corrupt a whole stream from offset zero."""
    return StreamFaultInjector(plan).feed(data)
