"""Seeded fault plans: *what* to break, *how often*, reproducibly.

A :class:`FaultPlan` is a declarative schema — a seed plus a tuple of
:class:`FaultSpec` entries (fault kind, rate, kind-specific knobs).
Injectors never draw from a stateful RNG; every decision is a pure
counter-based hash of ``(seed, kind, absolute index)``:

    h = splitmix64(channel_base(seed, kind) + index)
    inject  <=>  h < rate * 2**64

which makes fault placement *chunk-invariant*: the batched dataplane
(events arriving in 32k chunks) and the per-event reference loop make
byte-for-byte identical choices, and re-running the same plan over the
same stream reproduces the same corruption exactly.  Derived values
(which bit to flip, the corrupted address) come from a second hash of
the decision value, so they are just as deterministic.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

_MASK64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15
_MIX1 = 0xBF58476D1CE4E5B9
_MIX2 = 0x94D049BB133111EB
_KIND_SALT = 0xD1B54A32D192ED03
_VALUE_SALT = 0xA5A5A5A5A5A5A5A5


def splitmix64(value: int) -> int:
    """One splitmix64 finalization round (pure, 64-bit wrapping)."""
    z = (value + _GOLDEN) & _MASK64
    z = ((z ^ (z >> 30)) * _MIX1) & _MASK64
    z = ((z ^ (z >> 27)) * _MIX2) & _MASK64
    return z ^ (z >> 31)


def splitmix64_array(values: np.ndarray) -> np.ndarray:
    """Vectorized :func:`splitmix64` over a uint64 array."""
    with np.errstate(over="ignore"):
        z = values + np.uint64(_GOLDEN)
        z = (z ^ (z >> np.uint64(30))) * np.uint64(_MIX1)
        z = (z ^ (z >> np.uint64(27))) * np.uint64(_MIX2)
        return z ^ (z >> np.uint64(31))


class FaultKind(enum.Enum):
    """Fault taxonomy across the trace path and the shared engine."""

    # Byte-level trace-stream faults (framed TPIU stream).
    BIT_FLIP = "bit-flip"          # one bit of one trace byte inverted
    BYTE_DROP = "byte-drop"        # one trace byte lost on the port
    BYTE_DUP = "byte-dup"          # one trace byte delivered twice
    FRAME_DESYNC = "frame-desync"  # a run of bytes lost mid-frame
    # Event-level dataplane faults (before PTM encode).
    EVENT_DROP = "event-drop"      # a branch event never traced
    EVENT_DUP = "event-dup"        # a branch event traced twice
    EVENT_CORRUPT = "event-corrupt"  # branch target replaced by garbage
    # Vector-path faults.
    FIFO_OVERFLOW = "fifo-overflow"  # burst of vectors lost at the FIFO
    # Shared-engine service faults (indexed by grant number).
    MCM_STALL = "mcm-stall"        # one service takes stall_us longer
    MCM_HANG = "mcm-hang"          # one service never completes
    # Tenant-level faults (indexed by monitoring round).
    TENANT_CRASH = "tenant-crash"  # the monitored program dies mid-round
    # Integrity faults (indexed by pipeline chunk).
    CHUNK_CORRUPT = "chunk-corrupt"  # a batch mutated in flight, silently
    # Connection-level faults (indexed by a client's frame number).
    CONN_SLOW_LORIS = "conn-slow-loris"  # frame dribbled in tiny writes
    CONN_DISCONNECT = "conn-disconnect"  # client dies mid-frame
    CONN_CORRUPT = "conn-corrupt"        # frame payload corrupted on wire
    CONN_FLOOD = "conn-flood"            # frame duplicated into a burst


#: Stable per-kind channel identifiers — never renumber, they feed the
#: hash and renumbering would silently change every seeded plan.
_KIND_IDS = {
    FaultKind.BIT_FLIP: 1,
    FaultKind.BYTE_DROP: 2,
    FaultKind.BYTE_DUP: 3,
    FaultKind.FRAME_DESYNC: 4,
    FaultKind.EVENT_DROP: 5,
    FaultKind.EVENT_DUP: 6,
    FaultKind.EVENT_CORRUPT: 7,
    FaultKind.FIFO_OVERFLOW: 8,
    FaultKind.MCM_STALL: 9,
    FaultKind.MCM_HANG: 10,
    FaultKind.TENANT_CRASH: 11,
    FaultKind.CHUNK_CORRUPT: 12,
    FaultKind.CONN_SLOW_LORIS: 13,
    FaultKind.CONN_DISCONNECT: 14,
    FaultKind.CONN_CORRUPT: 15,
    FaultKind.CONN_FLOOD: 16,
}

BYTE_KINDS = (
    FaultKind.BIT_FLIP,
    FaultKind.BYTE_DROP,
    FaultKind.BYTE_DUP,
    FaultKind.FRAME_DESYNC,
)
EVENT_KINDS = (
    FaultKind.EVENT_DROP,
    FaultKind.EVENT_DUP,
    FaultKind.EVENT_CORRUPT,
)
SERVICE_KINDS = (FaultKind.MCM_STALL, FaultKind.MCM_HANG)
CONNECTION_KINDS = (
    FaultKind.CONN_SLOW_LORIS,
    FaultKind.CONN_DISCONNECT,
    FaultKind.CONN_CORRUPT,
    FaultKind.CONN_FLOOD,
)


@dataclass(frozen=True)
class FaultSpec:
    """One fault channel: a kind, its rate, and kind-specific knobs."""

    kind: FaultKind
    #: Probability per unit (byte, event, vector, grant, or round).
    rate: float
    #: FIFO_OVERFLOW: vectors lost per triggered burst.
    burst: int = 8
    #: MCM_STALL: extra service time injected into one grant.
    stall_us: float = 100.0
    #: FRAME_DESYNC: consecutive bytes lost per triggered desync.
    desync_bytes: int = 7

    def __post_init__(self) -> None:
        if not isinstance(self.kind, FaultKind):
            raise ValueError(f"kind must be a FaultKind, got {self.kind!r}")
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {self.rate}")
        if self.burst < 1:
            raise ValueError("burst must be >= 1")
        if self.stall_us < 0:
            raise ValueError("stall_us must be >= 0")
        if self.desync_bytes < 1:
            raise ValueError("desync_bytes must be >= 1")

    @property
    def threshold(self) -> int:
        """Decision threshold on the 64-bit hash value."""
        return min(int(self.rate * 2.0**64), 1 << 64)


@dataclass(frozen=True)
class FaultPlan:
    """A seed plus the set of fault channels to inject."""

    seed: int = 0
    specs: Tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))
        kinds = [spec.kind for spec in self.specs]
        if len(set(kinds)) != len(kinds):
            raise ValueError(f"duplicate fault kinds in plan: {kinds}")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def spec(self, kind: FaultKind) -> Optional[FaultSpec]:
        """The active (rate > 0) spec for ``kind``, if any."""
        for spec in self.specs:
            if spec.kind is kind and spec.rate > 0.0:
                return spec
        return None

    def active(self, kinds: Sequence[FaultKind]) -> bool:
        return any(self.spec(kind) is not None for kind in kinds)

    @property
    def is_noop(self) -> bool:
        """True when no channel can ever fire (rate=0 everywhere)."""
        return all(spec.rate == 0.0 for spec in self.specs)

    # ------------------------------------------------------------------
    # Counter-based hashing
    # ------------------------------------------------------------------

    def _base(self, kind: FaultKind) -> int:
        return splitmix64(
            (self.seed & _MASK64) ^ ((_KIND_IDS[kind] * _KIND_SALT) & _MASK64)
        )

    def hash(self, kind: FaultKind, index: int) -> int:
        """The 64-bit decision value for unit ``index`` on ``kind``."""
        return splitmix64((self._base(kind) + index) & _MASK64)

    def hash_array(self, kind: FaultKind, indices: np.ndarray) -> np.ndarray:
        base = np.uint64(self._base(kind))
        with np.errstate(over="ignore"):
            return splitmix64_array(indices.astype(np.uint64) + base)

    def decide(self, kind: FaultKind, index: int) -> bool:
        """Does channel ``kind`` fire at absolute unit ``index``?"""
        spec = self.spec(kind)
        if spec is None:
            return False
        return self.hash(kind, index) < spec.threshold

    def decide_array(
        self, kind: FaultKind, indices: np.ndarray
    ) -> np.ndarray:
        spec = self.spec(kind)
        if spec is None:
            return np.zeros(len(indices), dtype=bool)
        if spec.threshold >= 1 << 64:
            return np.ones(len(indices), dtype=bool)
        return self.hash_array(kind, indices) < np.uint64(spec.threshold)

    def value(self, kind: FaultKind, index: int) -> int:
        """A derived 64-bit parameter, independent of the decision bit."""
        return splitmix64(self.hash(kind, index) ^ _VALUE_SALT)
