"""Dataplane fault injection: event-level faults and FIFO bursts.

Two insertion points mirror where real hardware loses data:

- :class:`EventFaultStage` sits at the head of the staged pipeline and
  drops / duplicates / corrupts branch events ahead of whichever
  frontend's encode stages the pipeline assembled (CoreSight PTM or
  E-Trace — the channels are grammar-neutral) — the model of a trace
  source that glitched upstream of the port.
- :class:`VectorFaultStage` sits between the IGM and delivery and
  drops *bursts* of encoded vectors — the model of a PTM-FIFO overflow
  window in which everything buffered is lost at once.

Byte-level corruption (bit flips, drops, frame desyncs) is not a
stage: it lives in :class:`repro.faults.injectors.StreamFaultInjector`
and applies to any frontend's *framed* byte stream.  Recovery from
those faults is each grammar's own resync path — TPIU frame hunt +
PFT ``resync_hunt`` for CoreSight, ETP sync-pattern hunt + E-Trace
alignment hunt for E-Trace — exercised side by side by the chaos
harness (:mod:`repro.eval.chaos`).

The stages are thin wrappers over pure, chunk-invariant helpers
(:func:`apply_event_faults`, :class:`VectorOverflowModel`) that the
per-event reference loop in :meth:`repro.soc.rtad.RtadSoc` reuses
directly, so ``dataplane="batched"`` and ``dataplane="loop"`` inject
the identical fault pattern for the same :class:`FaultPlan`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.faults.plan import EVENT_KINDS, FaultKind, FaultPlan
from repro.obs import MetricsRegistry
from repro.pipeline.batch import EventBatch, TraceBatch
from repro.pipeline.stage import StageBase
from repro.workloads.cfg import BranchEvent


@dataclass
class EventFaultCounts:
    """What one :func:`apply_event_faults` pass did."""

    dropped: int = 0
    duplicated: int = 0
    corrupted: int = 0

    def __bool__(self) -> bool:
        return bool(self.dropped or self.duplicated or self.corrupted)


def corrupt_target(plan: FaultPlan, index: int) -> int:
    """Deterministic garbage branch target: word-aligned, 32-bit."""
    return plan.value(FaultKind.EVENT_CORRUPT, index) & 0xFFFF_FFFC


def apply_event_faults(
    events: Sequence[BranchEvent],
    plan: Optional[FaultPlan],
    start_index: int = 0,
) -> Tuple[Sequence[BranchEvent], EventFaultCounts]:
    """Apply event-level channels; indexes are absolute in the stream.

    Returns the (possibly new) event sequence plus the mutation counts;
    when nothing fires the original sequence object is returned
    untouched, preserving the rate=0 byte-identical guarantee.
    """
    counts = EventFaultCounts()
    if plan is None or not plan.active(EVENT_KINDS):
        return events, counts
    out: List[BranchEvent] = []
    for offset, event in enumerate(events):
        index = start_index + offset
        if plan.decide(FaultKind.EVENT_DROP, index):
            counts.dropped += 1
            continue
        if plan.decide(FaultKind.EVENT_CORRUPT, index):
            event = dataclasses.replace(
                event, target=corrupt_target(plan, index)
            )
            counts.corrupted += 1
        out.append(event)
        if plan.decide(FaultKind.EVENT_DUP, index):
            out.append(event)
            counts.duplicated += 1
    if not counts:
        return events, counts
    return out, counts


class VectorOverflowModel:
    """FIFO_OVERFLOW admission: triggered vectors start a loss burst.

    ``admit`` is called once per encoded vector in stream order.  When
    the channel fires at a vector's absolute index, that vector and the
    next ``burst - 1`` are lost — the whole buffered window drains to
    nowhere, like a real overflow.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.spec = plan.spec(FaultKind.FIFO_OVERFLOW)
        self.dropped = 0
        self.reset()

    def reset(self) -> None:
        self._index = 0
        self._burst_left = 0

    def admit(self) -> bool:
        if self.spec is None:
            self._index += 1
            return True
        index = self._index
        self._index += 1
        if self._burst_left > 0:
            self._burst_left -= 1
            self.dropped += 1
            return False
        if self.plan.decide(FaultKind.FIFO_OVERFLOW, index):
            self._burst_left = self.spec.burst - 1
            self.dropped += 1
            return False
        return True


class EventFaultStage(StageBase):
    """Head-of-pipeline stage applying the event-level channels."""

    name = "fault_events"
    # Legitimate mutation: the pipeline re-stamps the integrity tag
    # after this stage so injected event faults are not double-counted
    # as silent corruption.
    mutates_events = True

    def __init__(
        self,
        plan: FaultPlan,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        super().__init__(metrics=metrics)
        self.plan = plan
        self.dropped = 0
        self.duplicated = 0
        self.corrupted = 0
        self._m_dropped = self.metrics.counter("faults.events.dropped")
        self._m_duplicated = self.metrics.counter("faults.events.duplicated")
        self._m_corrupted = self.metrics.counter("faults.events.corrupted")
        self.reset()

    def reset(self) -> None:
        self._offset = 0

    def export_state(self) -> dict:
        return {
            "offset": self._offset,
            "dropped": self.dropped,
            "duplicated": self.duplicated,
            "corrupted": self.corrupted,
        }

    def restore_state(self, state: dict) -> None:
        self._offset = state["offset"]
        self.dropped = state["dropped"]
        self.duplicated = state["duplicated"]
        self.corrupted = state["corrupted"]

    @property
    def fault_drops(self) -> int:
        """Losses this stage injected (health-machine accounting)."""
        return self.dropped

    def process(self, batch: TraceBatch) -> TraceBatch:
        self._account_batch(batch)
        if batch.tail or len(batch) == 0:
            return batch
        events = batch.events.events if batch.events else None
        assert events is not None
        start = self._offset
        self._offset += len(events)
        mutated, counts = apply_event_faults(events, self.plan, start)
        if counts:
            batch.events = EventBatch.from_events(list(mutated))
            self.dropped += counts.dropped
            self.duplicated += counts.duplicated
            self.corrupted += counts.corrupted
            self._m_dropped.inc(counts.dropped)
            self._m_duplicated.inc(counts.duplicated)
            self._m_corrupted.inc(counts.corrupted)
        return batch


class ChunkCorruptStage(StageBase):
    """Silent in-flight batch corruption (integrity-tag test channel).

    When the ``CHUNK_CORRUPT`` channel fires at a chunk's absolute
    index, one event's target in the batch is overwritten in place and
    — the point — the integrity tag is deliberately *not* re-stamped
    (``mutates_events`` stays False).  This models corruption between
    stages that the byte-level resync path can never observe; only the
    pipeline's per-boundary CRC check catches it, incrementing
    ``pipeline.integrity.crc_mismatches``.
    """

    name = "fault_chunks"

    def __init__(
        self,
        plan: FaultPlan,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        super().__init__(metrics=metrics)
        self.plan = plan
        self.corrupted_chunks = 0
        self._m_corrupted = self.metrics.counter("faults.chunks.corrupted")
        self.reset()

    def reset(self) -> None:
        self._chunk_index = 0

    def export_state(self) -> dict:
        return {
            "chunk_index": self._chunk_index,
            "corrupted_chunks": self.corrupted_chunks,
        }

    def restore_state(self, state: dict) -> None:
        self._chunk_index = state["chunk_index"]
        self.corrupted_chunks = state["corrupted_chunks"]

    def process(self, batch: TraceBatch) -> TraceBatch:
        self._account_batch(batch)
        if batch.tail or len(batch) == 0:
            return batch
        index = self._chunk_index
        self._chunk_index += 1
        if self.plan.decide(FaultKind.CHUNK_CORRUPT, index):
            assert batch.events is not None
            pos = self.plan.value(FaultKind.CHUNK_CORRUPT, index) % len(batch)
            # Flip to the neighbouring word-aligned address — silently.
            batch.events.target[pos] ^= 4
            self.corrupted_chunks += 1
            self._m_corrupted.inc()
        return batch


class VectorFaultStage(StageBase):
    """Between IGM and delivery: burst-drop encoded vectors."""

    name = "fault_fifo"

    def __init__(
        self,
        plan: FaultPlan,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        super().__init__(metrics=metrics)
        self.model = VectorOverflowModel(plan)
        self._m_dropped = self.metrics.counter("faults.vectors.dropped")

    def reset(self) -> None:
        self.model.reset()

    def export_state(self) -> dict:
        return {
            "index": self.model._index,
            "burst_left": self.model._burst_left,
            "dropped": self.model.dropped,
        }

    def restore_state(self, state: dict) -> None:
        self.model._index = state["index"]
        self.model._burst_left = state["burst_left"]
        self.model.dropped = state["dropped"]

    @property
    def fault_drops(self) -> int:
        return self.model.dropped

    def process(self, batch: TraceBatch) -> TraceBatch:
        self._account_batch(batch)
        if batch.tail or not batch.vectors:
            return batch
        keep = np.fromiter(
            (self.model.admit() for _ in batch.vectors),
            bool,
            count=len(batch.vectors),
        )
        lost = int(len(keep) - keep.sum())
        if not lost:
            return batch
        self._m_dropped.inc(lost)
        batch.vectors = [
            vector for vector, ok in zip(batch.vectors, keep) if ok
        ]
        if batch.vector_event_pos is not None:
            batch.vector_event_pos = batch.vector_event_pos[keep]
        return batch
