"""Process-crash injection at named durability crash points.

The write-ahead journal's guarantees are only as good as the crash
model that tests them.  :class:`CrashPointInjector` simulates a whole
process dying at a specific point in the journaling sequence: the
:class:`~repro.soc.manager.SocManager` calls :meth:`reached` at every
named *site* it passes (round begin, each chunk append, the torn
mid-write, commit, checkpoint); the injector counts sites and raises
:class:`~repro.errors.ProcessCrashError` when the configured one is
hit.  The recovery harness sweeps the kill index across the whole
range, so every ordering of "what made it to disk" is exercised.

The kill index itself is drawn from the existing ``TENANT_CRASH``
fault channel (counter-hashed, so a seed fully determines the sweep).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import ProcessCrashError
from repro.faults.plan import FaultKind, FaultPlan


class CrashPointInjector:
    """Kill the process at the ``kill_at``-th crash site reached.

    ``kill_at=None`` never fires — the injector then only counts
    sites, which the harness uses to learn the total site count of an
    uninterrupted run before choosing kill points.
    """

    def __init__(self, kill_at: Optional[int] = None) -> None:
        if kill_at is not None and kill_at < 0:
            raise ValueError("kill_at must be >= 0")
        self.kill_at = kill_at
        self.sites_reached = 0
        self.fired = False
        self.fired_site: Optional[str] = None
        self.site_counts: Dict[str, int] = {}

    @classmethod
    def from_plan(
        cls, plan: FaultPlan, draw_index: int, total_sites: int
    ) -> "CrashPointInjector":
        """Pick a kill point via the ``TENANT_CRASH`` channel hash."""
        if total_sites < 1:
            raise ValueError("total_sites must be >= 1")
        kill_at = plan.value(FaultKind.TENANT_CRASH, draw_index) % total_sites
        return cls(kill_at=kill_at)

    def fires(self, site: str) -> bool:
        """Count one site; report whether the crash trips here."""
        index = self.sites_reached
        self.sites_reached += 1
        self.site_counts[site] = self.site_counts.get(site, 0) + 1
        if self.kill_at is not None and index == self.kill_at:
            self.fired = True
            self.fired_site = site
            return True
        return False

    def reached(self, site: str) -> None:
        """Count one site; raise :class:`ProcessCrashError` if it trips.

        Sites that need work *between* the decision and the raise (the
        torn mid-write) use :meth:`fires` directly instead.
        """
        if self.fires(site):
            raise ProcessCrashError(
                f"injected process crash at {site!r} "
                f"(site index {self.sites_reached - 1})"
            )


class SigkillInjector(CrashPointInjector):
    """A crash point that dies for real: ``SIGKILL`` to its own pid.

    :class:`CrashPointInjector` models a crash as an exception the
    harness catches in-process; the fleet's chaos experiments need the
    stronger thing — a worker *process* vanishing with no chance to
    flush, reply, or clean up.  Arming this injector at a WAL site
    turns the site into a deterministic ``kill -9``: the same site
    index dies on every run, so the recovery assertions are exact
    rather than racing a timer.

    ``site_filter`` restricts firing to one named site (e.g.
    ``"wal.chunk.done"`` — inputs journaled, round uncommitted), which
    is how the fleet chaos experiment pins "mid-round" precisely.
    """

    def __init__(
        self,
        kill_at: Optional[int] = None,
        site_filter: Optional[str] = None,
    ) -> None:
        super().__init__(kill_at=kill_at)
        self.site_filter = site_filter

    def fires(self, site: str) -> bool:
        if self.site_filter is not None and site != self.site_filter:
            # Filtered sites are observed but never consume the index.
            self.site_counts[site] = self.site_counts.get(site, 0) + 1
            return False
        return super().fires(site)

    def reached(self, site: str) -> None:
        if self.fires(site):
            import os
            import signal

            os.kill(os.getpid(), signal.SIGKILL)
