"""Service-level and tenant-level fault channels.

:class:`ServiceFaultInjector` rides alongside one MCM lane inside the
arbiter: each engine *grant* on that lane draws the MCM_STALL and
MCM_HANG channels, indexed by the lane's grant counter.  A stall adds
``stall_us`` to that one service; a hang never completes — it either
trips the arbiter's watchdog (when ``deadline_us`` is armed) or wedges
the shared engine until the next session reset.

:func:`crash_fraction` drives TENANT_CRASH: indexed by monitoring
round, it returns where in the round's trace the tenant dies (a
fraction in [0, 1)), or ``None`` for a clean round.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.faults.plan import SERVICE_KINDS, FaultKind, FaultPlan


class ServiceFaultInjector:
    """Per-lane grant-indexed stall/hang decisions."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.stalls = 0
        self.hangs = 0
        self._grants = 0

    @classmethod
    def from_plan(
        cls, plan: Optional[FaultPlan]
    ) -> Optional["ServiceFaultInjector"]:
        """An injector only when the plan has active service channels."""
        if plan is None or not plan.active(SERVICE_KINDS):
            return None
        return cls(plan)

    def reset(self) -> None:
        """New session: grant numbering restarts so repeat rounds of
        the same trace reproduce the same fault pattern."""
        self._grants = 0

    def draw(self) -> Tuple[float, bool]:
        """Decide for the next grant; returns ``(extra_ns, hang)``."""
        index = self._grants
        self._grants += 1
        if self.plan.decide(FaultKind.MCM_HANG, index):
            self.hangs += 1
            return float("inf"), True
        if self.plan.decide(FaultKind.MCM_STALL, index):
            spec = self.plan.spec(FaultKind.MCM_STALL)
            assert spec is not None
            self.stalls += 1
            return spec.stall_us * 1e3, False
        return 0.0, False


def crash_fraction(
    plan: Optional[FaultPlan], round_index: int
) -> Optional[float]:
    """Where in round ``round_index`` the tenant crashes, if at all."""
    if plan is None or not plan.decide(FaultKind.TENANT_CRASH, round_index):
        return None
    return plan.value(FaultKind.TENANT_CRASH, round_index) / 2.0**64
