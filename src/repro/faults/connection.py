"""Connection-level fault channels for the ingestion front door.

:class:`ConnectionFaultInjector` rides alongside one *client* of the
``repro.serve`` ingestion service: each outgoing frame draws the four
connection channels, indexed by the client's absolute frame number, so
a client replaying the same frames misbehaves identically.

The channels model the classic front-door abuse patterns:

- ``CONN_SLOW_LORIS`` — the frame is dribbled byte-by-byte in many
  tiny writes (yielding between them), starving naive readers.
- ``CONN_DISCONNECT`` — the connection dies mid-frame; the server
  must discard the partial frame and release the session cleanly.
- ``CONN_CORRUPT`` — one payload byte is flipped on the wire; the
  server must count and refuse the frame without poisoning the
  session or any other tenant.
- ``CONN_FLOOD`` — the frame is duplicated into a burst of
  back-to-back copies, stressing the rate limiter and shed path.

Like every other channel (see :mod:`repro.faults.plan`), decisions are
pure counter-based hashes — no RNG state — so the chaos sweeps are
exactly reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.faults.plan import CONNECTION_KINDS, FaultKind, FaultPlan

#: Flood bursts replay the frame this many extra times.
FLOOD_COPIES = 4

#: Slow-loris dribbles the frame in chunks of at most this many bytes.
LORIS_CHUNK_BYTES = 3


@dataclass(frozen=True)
class FrameFate:
    """What happens to one outgoing frame on this connection."""

    #: Dribble the frame in :data:`LORIS_CHUNK_BYTES` writes.
    slow: bool = False
    #: Close the connection after sending ``cut_fraction`` of the frame.
    disconnect: bool = False
    #: Fraction of the frame written before a mid-frame disconnect.
    cut_fraction: float = 0.5
    #: Flip one payload byte (at ``corrupt_offset`` mod payload length).
    corrupt: bool = False
    corrupt_offset: int = 0
    #: Send this many *extra* copies of the frame back-to-back.
    flood_copies: int = 0

    @property
    def clean(self) -> bool:
        return not (
            self.slow or self.disconnect or self.corrupt or self.flood_copies
        )


class ConnectionFaultInjector:
    """Per-client, frame-indexed connection fault decisions."""

    def __init__(self, plan: FaultPlan, client_index: int = 0) -> None:
        self.plan = plan
        #: Offsets the frame index so distinct clients sharing one plan
        #: misbehave on different frames (seeded, but decorrelated).
        self.client_index = client_index
        self._frames = 0
        self.slow = 0
        self.disconnects = 0
        self.corrupted = 0
        self.floods = 0

    @classmethod
    def from_plan(
        cls, plan: Optional[FaultPlan], client_index: int = 0
    ) -> Optional["ConnectionFaultInjector"]:
        """An injector only when the plan has active connection channels."""
        if plan is None or not plan.active(CONNECTION_KINDS):
            return None
        return cls(plan, client_index=client_index)

    def reset(self) -> None:
        """New connection: frame numbering restarts."""
        self._frames = 0

    def draw(self) -> FrameFate:
        """Decide the fate of the next outgoing frame."""
        index = (self.client_index << 20) + self._frames
        self._frames += 1
        plan = self.plan
        if plan.decide(FaultKind.CONN_DISCONNECT, index):
            self.disconnects += 1
            cut = plan.value(FaultKind.CONN_DISCONNECT, index) / 2.0**64
            return FrameFate(disconnect=True, cut_fraction=cut)
        fate = FrameFate()
        if plan.decide(FaultKind.CONN_CORRUPT, index):
            self.corrupted += 1
            offset = plan.value(FaultKind.CONN_CORRUPT, index)
            fate = FrameFate(
                slow=fate.slow,
                corrupt=True,
                corrupt_offset=offset,
                flood_copies=fate.flood_copies,
            )
        if plan.decide(FaultKind.CONN_FLOOD, index):
            self.floods += 1
            fate = FrameFate(
                slow=fate.slow,
                corrupt=fate.corrupt,
                corrupt_offset=fate.corrupt_offset,
                flood_copies=FLOOD_COPIES,
            )
        if plan.decide(FaultKind.CONN_SLOW_LORIS, index):
            self.slow += 1
            fate = FrameFate(
                slow=True,
                corrupt=fate.corrupt,
                corrupt_offset=fate.corrupt_offset,
                flood_copies=fate.flood_copies,
            )
        return fate
