"""Deterministic fault injection and recovery hooks.

The subsystem has three layers (see docs/ROBUSTNESS.md):

- :mod:`repro.faults.plan` — the declarative :class:`FaultPlan` schema
  and the counter-based hashing that makes every injection decision a
  pure function of ``(seed, kind, index)``.
- :mod:`repro.faults.injectors` / :mod:`repro.faults.stages` /
  :mod:`repro.faults.service` — injector implementations at each level:
  raw trace bytes, dataplane events/vectors, engine services, tenants.
- Recovery lives where the state lives: decoder/deframer resync hunt
  (``repro.coresight``), the arbiter watchdog (``repro.mcm.arbiter``),
  and the tenant health machine (``repro.soc.manager``).

The pipeline stages are exported lazily — importing them pulls in
``repro.pipeline``, which this package must not require at import time
(``FaultPlan`` is referenced from ``RtadConfig``).
"""

from repro.faults.connection import (
    ConnectionFaultInjector,
    FrameFate,
)
from repro.faults.crashpoints import CrashPointInjector
from repro.faults.injectors import StreamFaultInjector, corrupt_stream
from repro.faults.plan import (
    BYTE_KINDS,
    CONNECTION_KINDS,
    EVENT_KINDS,
    SERVICE_KINDS,
    FaultKind,
    FaultPlan,
    FaultSpec,
    splitmix64,
    splitmix64_array,
)
from repro.faults.service import ServiceFaultInjector, crash_fraction

_STAGE_EXPORTS = (
    "ChunkCorruptStage",
    "EventFaultCounts",
    "EventFaultStage",
    "VectorFaultStage",
    "VectorOverflowModel",
    "apply_event_faults",
    "corrupt_target",
)

__all__ = [
    "BYTE_KINDS",
    "CONNECTION_KINDS",
    "ConnectionFaultInjector",
    "CrashPointInjector",
    "EVENT_KINDS",
    "FrameFate",
    "SERVICE_KINDS",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "ServiceFaultInjector",
    "StreamFaultInjector",
    "corrupt_stream",
    "crash_fraction",
    "splitmix64",
    "splitmix64_array",
    *_STAGE_EXPORTS,
]


def __getattr__(name: str):
    if name in _STAGE_EXPORTS:
        from repro.faults import stages

        return getattr(stages, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
