"""Quickstart: detect an injected attack on the RTAD SoC.

Builds the whole stack for one benchmark — synthetic program, trained
ELM over syscall patterns, trimmed 5-CU ML-MIAOW engine, MCM queue —
then injects a legitimate-branch gadget and reports how fast the SoC
judged it.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.eval.prep import get_bundle, make_miaow, make_ml_miaow
from repro.utils.rng import make_rng

BENCHMARK = "403.gcc"


def main() -> None:
    print(f"preparing {BENCHMARK}: program + trained ELM (one-time)...")
    bundle = get_bundle(BENCHMARK, "elm")
    rng = make_rng(7)

    print("\nattack: insert 10 legitimate-but-out-of-context syscalls")
    gadget = [int(g) for g in rng.choice(bundle.gadget_pool, size=10)]

    for name, engine_factory in (
        ("MIAOW   (1 CU, untrimmed)", make_miaow),
        ("ML-MIAOW (5 CUs, trimmed)", make_ml_miaow),
    ):
        soc = bundle.make_soc(engine_factory(), execute_on_gpu=False)
        result = soc.run_attack_trial(
            normal_ids=bundle.normal_ids[:400],
            mean_interval_us=bundle.mean_interval_us,
            gadget_ids=gadget,
            onset_index=200,
            seed=1,
        )
        status = "DETECTED" if result.detected else "missed"
        print(
            f"  {name}: judgment in {result.detection_latency_us:8.1f} us"
            f"  [{status}; {result.inferences} inferences,"
            f" {result.dropped_vectors} dropped]"
        )

    print(
        "\nthe trimmed engine reaches the same judgment ~3x sooner —"
        "\nFig. 8 of the paper, reproduced end to end in simulation."
    )


if __name__ == "__main__":
    main()
