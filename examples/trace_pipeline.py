"""Trace-path walkthrough: CPU branches -> PTM -> TPIU -> IGM -> vectors.

Shows what each hardware stage of the RTAD front end does to a real
branch stream: PTM packet mix and compression ratio, TPIU framing
overhead, the trace analyzer's byte-lane decode, and the address
mapper's filtering down to model-relevant vectors — verified against
the golden software decoder at each step.

Run:  python examples/trace_pipeline.py
"""

from collections import Counter

from repro.coresight.decoder import DecodedAtom, DecodedBranch, PftDecoder
from repro.coresight.driver import CoreSightDriver
from repro.coresight.ptm import Ptm
from repro.coresight.tpiu import TpiuDeframer
from repro.igm import EncoderMode, Igm, IgmConfig
from repro.utils.bitstream import bytes_to_words
from repro.workloads.cfg import BranchKind
from repro.workloads.profiles import get_profile
from repro.workloads.program import SyntheticProgram

BENCHMARK = "483.xalancbmk"
EVENTS = 20_000


def main() -> None:
    program = SyntheticProgram(get_profile(BENCHMARK), seed=3)
    trace = program.run(EVENTS, run_label="walkthrough")
    kinds = Counter(e.kind for e in trace.events)
    print(f"{BENCHMARK}: {EVENTS} branch events")
    for kind, count in kinds.most_common():
        print(f"  {kind.value:>9}: {count:6d}")

    # --- PTM: compress into packets ------------------------------------
    ptm = Ptm()
    stream = bytearray()
    for event in trace.events:
        stream += ptm.feed(event)
    stream += ptm.flush()
    print(f"\nPTM stream: {len(stream)} bytes "
          f"({len(stream) / EVENTS:.2f} bytes/branch)")
    for packet, count in sorted(ptm.packet_counts.items()):
        print(f"  {packet:>9} packets: {count}")

    # --- TPIU: frame for the trace port ---------------------------------
    driver = CoreSightDriver()
    driver.enable()
    framed = driver.trace_all(trace.events)
    overhead = len(framed) / len(stream) - 1
    print(f"\nTPIU: {len(framed)} framed bytes "
          f"(+{overhead * 100:.1f}% framing overhead)")

    # --- golden software decode -----------------------------------------
    payload = TpiuDeframer().push(framed)
    items = PftDecoder().feed(payload)
    branches = [i for i in items if isinstance(i, DecodedBranch)]
    atoms = [i for i in items if isinstance(i, DecodedAtom)]
    taken = [
        e for e in trace.events
        if not (e.kind is BranchKind.CONDITIONAL and not e.taken)
    ]
    exact = all(b.address == e.target for b, e in zip(branches, taken))
    print(f"\ngolden decoder: {len(branches)} branch addresses, "
          f"{len(atoms)} atoms; exact match with CPU events: {exact}")

    # --- IGM: hardware decode + filter + vectorize -----------------------
    monitored = program.monitored_call_targets(count=32)
    igm = Igm(IgmConfig(mode=EncoderMode.SEQUENCE, window=8))
    igm.configure(monitored)
    vectors = igm.push_words(bytes_to_words(framed))
    print(f"\nIGM (mapper: {len(monitored)} monitored addresses):")
    print(f"  TA cycles        : {igm.trace_analyzer.cycles}")
    print(f"  TA peak backlog  : {igm.trace_analyzer.max_backlog} bytes")
    print(f"  mapper hits/miss : {igm.mapper.hits}/{igm.mapper.misses}")
    print(f"  vectors emitted  : {len(vectors)} (window=8)")
    if vectors:
        print(f"  first vector     : {vectors[0].values.tolist()}")
    print(
        f"\nfiltering keeps {igm.mapper.hits}/{len(taken)} branches "
        f"({igm.mapper.hits / len(taken) * 100:.2f}%) — the load the "
        f"ML engine actually sees."
    )


if __name__ == "__main__":
    main()
