"""Fixed-point deployment: trading precision for trimmable area.

The float32 datapath (FADD/FMUL/FMAC/transcendentals) is most of what
ML-MIAOW keeps after trimming.  A quantized model would exercise only
integer logic plus a sigmoid lookup table — if detection survives the
precision loss, the coverage flow could trim the float units too.
This example measures that trade on a trained ELM.

Run:  python examples/quantized_deployment.py
"""

import numpy as np

from repro.ml.detector import roc_auc
from repro.ml.elm import ExtremeLearningMachine
from repro.ml.features import PatternDictionary
from repro.ml.quantize import QuantizedElm, quantization_agreement
from repro.utils.fixed_point import FixedPointFormat, Q4_12, Q8_8
from repro.workloads.dataset import build_dataset
from repro.workloads.profiles import get_profile
from repro.workloads.program import SyntheticProgram

BENCHMARK = "429.mcf"


def main() -> None:
    program = SyntheticProgram(get_profile(BENCHMARK), seed=4)
    dataset = build_dataset(
        program, feature="syscall", window=16,
        train_events=14_000, test_events=6_000, num_attacks=25, seed=4,
    )
    dictionary = PatternDictionary(n=3, capacity=1023, unseen_gain=3)
    dictionary.fit(dataset.train_windows)
    train = dictionary.features(dataset.train_windows)
    normal = dictionary.features(dataset.test_normal)
    anomalous = dictionary.features(dataset.test_anomalous)
    model = ExtremeLearningMachine(
        input_dim=dictionary.size, hidden_dim=256, seed=4
    ).fit(train)

    float_auc = roc_auc(
        model.score_mahalanobis(normal),
        model.score_mahalanobis(anomalous),
    )
    print(f"{BENCHMARK}: float32 ELM AUC = {float_auc:.3f}\n")
    print(f"{'format':>14} | {'AUC':>6} | {'rank agree':>10} | memory")
    print("-" * 52)
    for label, w_fmt, a_fmt in (
        ("Q4.12 / Q8.8", Q4_12, Q8_8),
        ("Q2.6  / Q4.4", FixedPointFormat(2, 6), FixedPointFormat(4, 4)),
    ):
        quantized = QuantizedElm.from_model(model, w_fmt, a_fmt)
        auc = roc_auc(
            quantized.score(normal), quantized.score(anomalous)
        )
        agreement = quantization_agreement(
            model, normal[:200], w_fmt, a_fmt
        )
        savings = quantized.memory_savings_vs_f32() * 100
        print(
            f"{label:>14} | {auc:6.3f} | {agreement:10.3f} | "
            f"-{savings:.0f}%"
        )

    print(
        "\n16-bit weights keep detection intact at half the model"
        "\nmemory; the sigmoid becomes a 256-entry LDS lookup, so a"
        "\nquantized engine could shed the float transcendental blocks"
        "\nthe Table II trim currently keeps."
    )


if __name__ == "__main__":
    main()
