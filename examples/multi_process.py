"""Monitoring one victim process among many (context filtering).

On a real device the trace port interleaves every scheduled process.
PTM tags the stream with context IDs at each switch; an IGM configured
for the victim's context drops all other traffic *before* the mapper,
so a noisy neighbour cannot pollute the model's input or waste engine
cycles.

Run:  python examples/multi_process.py
"""

import numpy as np

from repro.coresight.ptm import Ptm, PtmConfig
from repro.coresight.tpiu import Tpiu
from repro.igm.igm import Igm, IgmConfig
from repro.igm.vector_encoder import EncoderMode
from repro.utils.bitstream import bytes_to_words
from repro.workloads.profiles import get_profile
from repro.workloads.program import SyntheticProgram

VICTIM_CTX = 7
NOISY_CTX = 9
SLICE_EVENTS = 400
SLICES = 8


def main() -> None:
    victim = SyntheticProgram(get_profile("403.gcc"), seed=1)
    neighbour = SyntheticProgram(get_profile("471.omnetpp"), seed=2)
    victim_events = iter(victim.iter_events(SLICES * SLICE_EVENTS, "victim"))
    neighbour_events = iter(
        neighbour.iter_events(SLICES * SLICE_EVENTS, "neighbour")
    )

    # OS scheduler: alternate time slices, PTM tags each switch.
    ptm = Ptm(PtmConfig(context_id=VICTIM_CTX))
    tpiu = Tpiu()
    framed = bytearray()
    for slice_index in range(SLICES):
        if slice_index % 2 == 0:
            context, source = VICTIM_CTX, victim_events
        else:
            context, source = NOISY_CTX, neighbour_events
        framed += tpiu.push(ptm.switch_context(context))
        for _ in range(SLICE_EVENTS):
            framed += tpiu.push(ptm.feed(next(source)))
    framed += tpiu.push(ptm.flush())
    framed += tpiu.flush()
    words = bytes_to_words(bytes(framed))
    print(
        f"trace port: {len(words)} words covering {SLICES} time slices "
        f"of two processes"
    )

    monitored = victim.monitored_call_targets(count=32)
    for label, context in (
        ("unfiltered (all contexts)", None),
        (f"victim only (ctx {VICTIM_CTX})", VICTIM_CTX),
    ):
        igm = Igm(
            IgmConfig(
                mode=EncoderMode.SEQUENCE,
                window=4,
                monitored_context=context,
            )
        )
        igm.configure(monitored)
        vectors = igm.push_words(words)
        ta = igm.trace_analyzer
        print(f"\n{label}:")
        print(f"  context-filtered branches : "
              f"{ta.branches_filtered_by_context}")
        print(f"  mapper hits               : {igm.mapper.hits}")
        print(f"  vectors to the engine     : {len(vectors)}")

    print(
        "\nwithout the filter the neighbour's branches reach the mapper"
        "\n(and any address collision would poison the model's input);"
        "\nwith it, the engine sees the victim and nothing else."
    )


if __name__ == "__main__":
    main()
