"""Programmability demo: author a kernel, run it, then trim the engine.

RTAD's engine is a *programmable* GPGPU ("users may realize and deploy
several models at their disposal") — this example writes a fresh
Southern-Islands-subset kernel, runs it through the OpenCL-style
runtime, and then applies the paper's four-step trimming flow to
produce a custom application-specific engine.

Run:  python examples/gpu_programming.py
"""

import numpy as np

from repro.miaow import Gpu, GpuRuntime
from repro.miaow.assembler import float_bits
from repro.miaow.trimming import TrimmingFlow

# Each lane computes dot(a_row, b) for one row of a 64x16 matrix.
MATVEC = """
.kernel matvec
.vgprs 8
    ; s2 = A base (row-major 64x16), s3 = x base, s4 = y base, s5 = K
    v_mov_b32 v1, 0.0               ; acc
    v_mul_lo_i32 v2, v0, s5         ; row * K
    v_lshlrev_b32 v2, 2, v2
    v_add_i32 v2, v2, s2            ; &A[row, 0]
    s_mov_b32 s6, 0                 ; k
    s_mov_b32 s7, 0                 ; x byte offset
loop:
    s_load_dword s8, s3, s7         ; x[k]
    flat_load_dword v3, v2          ; A[row, k]
    v_mac_f32 v1, v3, s8
    v_add_i32 v2, v2, 4
    s_add_i32 s7, s7, 4
    s_add_i32 s6, s6, 1
    s_cmp_lt_i32 s6, s5
    s_cbranch_scc1 loop
    v_lshlrev_b32 v4, 2, v0
    v_add_i32 v4, v4, s4
    flat_store_dword v4, v1
    s_endpgm
"""

# A second kernel using ops matvec never touches (sqrt).
NORMS = """
.kernel norms
.vgprs 6
    v_cvt_f32_i32 v1, v0
    v_mul_f32 v1, v1, v1
    v_sqrt_f32 v1, v1
    v_lshlrev_b32 v2, 2, v0
    v_add_i32 v2, v2, s2
    flat_store_dword v2, v1
    s_endpgm
"""


def run_matvec(gpu: Gpu) -> np.ndarray:
    runtime = GpuRuntime(gpu)
    kernel = runtime.build_program(MATVEC)
    rows, cols = 64, 16
    rng = np.random.default_rng(0)
    a = rng.normal(size=(rows, cols)).astype(np.float32)
    x = rng.normal(size=cols).astype(np.float32)
    buf_a = runtime.alloc_f32(rows * cols)
    buf_x = runtime.alloc_f32(cols)
    buf_y = runtime.alloc_f32(rows)
    runtime.write(buf_a, a.ravel())
    runtime.write(buf_x, x)
    result = runtime.launch(kernel, 1, [buf_a, buf_x, buf_y, cols])
    y = runtime.read_f32(buf_y, rows)
    print(
        f"  matvec on {gpu.name}: {result.cycles} cycles "
        f"({result.cycles / 50:.1f} us @50 MHz), "
        f"max |err| vs numpy = {np.abs(y - a @ x).max():.2e}"
    )
    return y


def main() -> None:
    print("1) run a hand-written kernel on the full MIAOW")
    reference = run_matvec(Gpu(num_cus=1, name="MIAOW"))

    print("\n2) trim the engine to exactly what this kernel needs")
    flow = TrimmingFlow()
    result = flow.run([("matvec", run_matvec)])
    print(f"  covered points : {len(result.report.covered)}")
    print(f"  kept opcodes   : {sorted(result.allowed_ops)}")
    print(
        f"  area           : {result.full_area.lut_ff_sum:,.0f} ->"
        f" {result.trimmed_area.lut_ff_sum:,.0f} LUT+FF"
        f" (-{result.reduction_pct:.0f}%)"
    )
    print(f"  verified        : {result.verified}")

    print("\n3) the trimmed engine still runs the kernel it was built for")
    trimmed = flow.build_trimmed_gpu(result, num_cus=5)
    trimmed_result = run_matvec(trimmed)
    assert np.allclose(reference, trimmed_result)

    print("\n4) ...but rejects kernels needing trimmed-out logic")
    try:
        runtime = GpuRuntime(flow.build_trimmed_gpu(result, num_cus=1))
        kernel = runtime.build_program(NORMS)
        out = runtime.alloc_f32(64)
        runtime.launch(kernel, 1, [out])
    except Exception as error:
        print(f"  rejected as expected: {error}")


if __name__ == "__main__":
    main()
