"""Train both paper models, deploy them to the GPU, and compare engines.

The full ML lifecycle the paper describes: collect normal traces,
train the ELM (syscall patterns, [2]) and the LSTM (general branches,
[8]), compile each into Southern-Islands kernels, check the GPU
matches the float32 reference bit-for-bit-ish, and measure inference
latency on MIAOW vs ML-MIAOW, plus detection quality.

Run:  python examples/train_and_deploy.py   (takes ~1 minute)
"""

import numpy as np

from repro.miaow import Gpu
from repro.ml.detector import ThresholdDetector, roc_auc
from repro.ml.elm import ExtremeLearningMachine
from repro.ml.features import PatternDictionary
from repro.ml.kernels import DeployedElm, DeployedLstm
from repro.ml.lstm import LstmModel
from repro.workloads.dataset import build_dataset
from repro.workloads.profiles import get_profile
from repro.workloads.program import SyntheticProgram

BENCHMARK = "471.omnetpp"
GPU_CLOCK_MHZ = 50


def deploy_elm(program):
    print("ELM over syscall pattern features")
    dataset = build_dataset(
        program, feature="syscall", window=16,
        train_events=16_000, test_events=6_000, num_attacks=25, seed=0,
    )
    dictionary = PatternDictionary(n=3, capacity=1023, unseen_gain=3)
    dictionary.fit(dataset.train_windows)
    features = dictionary.features(dataset.train_windows)
    model = ExtremeLearningMachine(
        input_dim=dictionary.size, hidden_dim=256, seed=0
    ).fit(features)

    normal = model.score_mahalanobis(
        dictionary.features(dataset.test_normal)
    )
    anomalous = model.score_mahalanobis(
        dictionary.features(dataset.test_anomalous)
    )
    print(f"  dictionary: {dictionary.size} patterns; "
          f"AUC = {roc_auc(normal, anomalous):.3f}")

    window = dataset.test_normal[0]
    for name, cus in (("MIAOW", 1), ("ML-MIAOW", 5)):
        deployment = DeployedElm(model, dictionary, window=16)
        deployment.load(Gpu(num_cus=cus, name=name))
        result = deployment.infer(window)
        reference = deployment.reference_score(window)
        print(
            f"  {name:>8}: {result.dispatch.cycles:5d} cycles "
            f"({result.dispatch.cycles / GPU_CLOCK_MHZ:6.1f} us)  "
            f"score {result.score:.4f} vs f32 ref {reference:.4f}"
        )


def deploy_lstm(program):
    print("\nLSTM over general monitored branches")
    dataset = build_dataset(
        program, feature="call", window=16,
        train_events=180_000, test_events=60_000, num_attacks=25,
        seed=0, mapper_size=48,
    )
    model = LstmModel(dataset.vocabulary.size, hidden_size=32, seed=0)
    losses = model.fit(dataset.train_windows[:6000], epochs=5, seed=0)
    print(f"  vocab {dataset.vocabulary.size}, "
          f"training loss {losses[0]:.3f} -> {losses[-1]:.3f}")
    normal = model.window_nll(dataset.test_normal[:1200])
    anomalous = model.window_nll(dataset.test_anomalous[:1200])
    print(f"  window-NLL AUC = {roc_auc(normal, anomalous):.3f}")

    stream = dataset.test_normal[0]
    for name, cus in (("MIAOW", 1), ("ML-MIAOW", 5)):
        deployment = DeployedLstm(model)
        deployment.load(Gpu(num_cus=cus, name=name))
        reference = deployment.make_reference()
        cycles = []
        max_err = 0.0
        for branch in stream[:8]:
            result = deployment.infer(int(branch))
            expected = reference.infer(int(branch))
            max_err = max(max_err, abs(result.surprisal - expected))
            cycles.append(result.total_cycles)
        mean_cycles = np.mean(cycles)
        print(
            f"  {name:>8}: {mean_cycles:7.0f} cycles/inference "
            f"({mean_cycles / GPU_CLOCK_MHZ:6.1f} us)  "
            f"max |gpu - f32 ref| = {max_err:.2e}"
        )


def main() -> None:
    print(f"benchmark: {BENCHMARK}\n")
    program = SyntheticProgram(get_profile(BENCHMARK), seed=0)
    deploy_elm(program)
    deploy_lstm(program)
    print(
        "\nsame weights, same results, ~2-4x fewer cycles on the trimmed"
        "\n5-CU engine — the performance half of the Table II trade."
    )


if __name__ == "__main__":
    main()
