"""Serving quickstart: stream traces into the SoC over a socket.

Starts the asyncio ingestion front door (`repro.serve.IngestServer`)
on a real TCP port, then attaches two clients: one streaming
pre-decoded event batches, one streaming raw E-Trace grammar bytes
that the server decodes with the resync-hunting receiver pair.  A
third, misbehaving client floods past its token bucket and is shed
with a retry-after hint instead of degrading the others.

Run:  python examples/serving.py
"""

import asyncio

from repro.eval.metrics import build_demo_manager, demo_events
from repro.frontends import get_frontend
from repro.serve import IngestServer, ServeClient, ServeConfig


async def main() -> None:
    manager = build_demo_manager(3, kind="lstm", seed=0)
    server = IngestServer(
        manager,
        ServeConfig(
            deadline_us=200_000.0,       # 200 ms ingest-to-verdict budget
            rate_limit_eps=2_000.0,      # per-tenant sustained cap
            rate_burst_events=256,
        ),
    )
    await server.start()                 # background drain loop
    host, port = await server.start_tcp()
    print(f"front door listening on {host}:{port}")

    events_client = await ServeClient.connect(host, port)
    await events_client.hello("tenant0")
    response = await events_client.send_events(
        demo_events("lstm", 0, 96, run_label="serve-demo")
    )
    print(f"tenant0 events batch: {response['accepted_events']} accepted")

    raw_client = await ServeClient.connect(host, port)
    await raw_client.hello("tenant1", mode="raw", frontend="etrace")
    driver = get_frontend("etrace").create_driver()
    driver.enable()
    stream = driver.trace_all(
        demo_events("lstm", 0, 96, run_label="serve-raw")
    )
    stream += driver.flush()
    response = await raw_client.send_raw(stream)
    print(
        f"tenant1 raw e-trace ({len(stream)} wire bytes): "
        f"{response['accepted_events']} events decoded server-side"
    )

    flood_client = await ServeClient.connect(host, port)
    await flood_client.hello("tenant2")
    for _ in range(4):
        response = await flood_client.send_events(
            demo_events("lstm", 0, 200, run_label="serve-flood")
        )
    print(
        f"tenant2 flood: {flood_client.sheds} of 4 bursts shed "
        f"(retry after ~{max(flood_client.retry_after_ms or [0]):.0f} ms)"
    )

    for client in (events_client, raw_client, flood_client):
        await client.bye()
    await server.stop()

    stats = server.stats()
    print(
        f"served {stats['serve.rounds']} rounds, "
        f"{stats['serve.verdicts']} verdicts; shed "
        f"{server.shed_total()} frames "
        f"(rate_limited={stats['serve.shed.rate_limited']})"
    )


if __name__ == "__main__":
    asyncio.run(main())
