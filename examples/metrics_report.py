"""Instrumented pipeline run: per-stage counters, latencies, spans.

Threads a live ``MetricsRegistry`` through the full RTAD pipeline
(PTM -> FIFO -> TPIU -> mapper -> encoder -> MCM -> engine), runs a
fixed-seed trace, and prints three views of the same run:

1. the condensed per-stage latency table (Fig. 7's read / vectorize /
   copy decomposition plus queueing and engine service),
2. the complete instrument dump (counters, gauges, histograms, spans),
3. the machine-readable JSON snapshot, truncated.

Run:  python examples/metrics_report.py
"""

import json

from repro.eval.metrics import (
    metrics_to_json,
    stage_table,
    run_metrics,
)
from repro.obs import snapshot_to_text

EVENTS = 6_000


def main() -> None:
    print(f"running the lstm demo deployment on {EVENTS} events ...")
    result = run_metrics("lstm", events=EVENTS)
    print(
        f"done in {result.wall_s:.2f}s wall: {result.inferences} "
        f"inferences, {result.interrupts} interrupts, "
        f"{result.dropped} dropped\n"
    )

    print(stage_table(result))
    print()
    print(snapshot_to_text(result.snapshot, title="full instrument dump"))
    print()

    document = json.dumps(
        metrics_to_json([result]), indent=2, sort_keys=True
    )
    lines = document.splitlines()
    print("JSON snapshot (first 20 lines):")
    print("\n".join(lines[:20]))
    print(f"... {len(lines) - 20} more lines")


if __name__ == "__main__":
    main()
