"""Benchmark profiles: lookup, derived rates, suite-wide invariants."""

import pytest

from repro.errors import WorkloadError
from repro.workloads.profiles import (
    CPU_CLOCK_HZ,
    SPEC_CINT2006,
    get_profile,
    profile_names,
)


class TestLookup:
    def test_all_twelve_present(self):
        assert len(SPEC_CINT2006) == 12

    def test_full_and_short_names(self):
        assert get_profile("471.omnetpp") is get_profile("omnetpp")

    def test_unknown_name_raises(self):
        with pytest.raises(WorkloadError):
            get_profile("500.perlbench_r")

    def test_profile_names_order(self):
        names = profile_names()
        assert names[0] == "400.perlbench"
        assert names[-1] == "483.xalancbmk"


class TestDerivedRates:
    def test_instruction_rate(self):
        p = get_profile("401.bzip2")
        assert p.instructions_per_second == pytest.approx(CPU_CLOCK_HZ / p.cpi)

    def test_branch_rate_positive_everywhere(self):
        assert all(p.branch_rate_hz > 0 for p in SPEC_CINT2006)

    def test_mean_block_size_consistent(self):
        for p in SPEC_CINT2006:
            assert p.mean_block_size == pytest.approx(
                1e3 / p.branches_per_kinst
            )

    def test_block_fractions_below_one(self):
        for p in SPEC_CINT2006:
            total = (
                p.call_block_fraction
                + p.indirect_block_fraction
                + p.syscall_block_fraction
            )
            assert 0 < total < 0.5

    def test_monitored_interval_microseconds(self):
        for p in SPEC_CINT2006:
            assert 10 < p.monitored_call_interval_us < 1_000

    def test_syscall_intervals_are_coarse(self):
        """Syscalls are distinctly rarer than monitored calls."""
        for p in SPEC_CINT2006:
            assert p.syscall_interval_us > 2 * p.monitored_call_interval_us


class TestFig8Regime:
    """The interval structure that produces the paper's Fig. 8 story."""

    def test_omnetpp_has_highest_monitored_pressure(self):
        omnetpp = get_profile("omnetpp")
        others = [p for p in SPEC_CINT2006 if p is not omnetpp]
        assert all(
            omnetpp.monitored_call_interval_us
            < p.monitored_call_interval_us
            for p in others
        )

    def test_xalancbmk_second(self):
        ordered = sorted(
            SPEC_CINT2006, key=lambda p: p.monitored_call_interval_us
        )
        assert ordered[0].name == "471.omnetpp"
        assert ordered[1].name == "483.xalancbmk"

    def test_omnetpp_most_call_intensive(self):
        omnetpp = get_profile("omnetpp")
        assert omnetpp.calls_per_kinst == max(
            p.calls_per_kinst for p in SPEC_CINT2006
        )
