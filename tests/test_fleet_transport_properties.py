"""Property-based suite for the shared-memory fleet transport.

Three families of invariants (docs/FLEET.md §5):

- **Round-trip fidelity** — arbitrary payload sizes and chunkings
  survive stage -> fetch byte-identical, through the ring and through
  every spill-to-inline fallback.
- **Torn-slot detection** — corrupting *any* byte of a slot header
  (all 17 offsets: length, CRC, sequence, kind) raises
  ``TransportError`` on both the tagged (descriptor-carried CRC) and
  untagged (full body hash) read paths; untagged reads also catch
  payload tears.
- **No loss, no duplication** — full-ring backpressure spills inline
  without dropping a round, wrapped records stay readable without
  clobbering live slots, and a recycled offset can never satisfy a
  stale descriptor.
"""

import os
import zlib

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.durability.journal import MIN_RECORD_BYTES, record_size
from repro.errors import TransportError
from repro.fleet.transport import (
    SLOT_KIND_CHUNK,
    SLOT_KIND_REPLY,
    WIRE_INLINE,
    WIRE_SHM,
    ShmCoordinatorTransport,
    ShmRing,
    make_worker_transport,
)

#: One bit flipped and all bits flipped — a torn byte either way.
TEAR_MASKS = (0x01, 0xFF)

#: Hypothesis profile: transport pairs are module-scoped (creating a
#: shared-memory segment per example would dominate the runtime), and
#: ring staging resets state per round, so examples stay independent.
COMMON_SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)

payload_lists = st.lists(
    st.binary(min_size=0, max_size=1024), min_size=1, max_size=12
)


def _chained_crc(payloads):
    crc = 0
    for payload in payloads:
        crc = zlib.crc32(payload, crc)
    return crc


def _release(buffers):
    for view in buffers:
        if isinstance(view, memoryview):
            view.release()


@pytest.fixture(scope="module")
def pair():
    coordinator = ShmCoordinatorTransport(ring_bytes=1 << 16)
    worker = make_worker_transport(coordinator.spec())
    assert worker.name == "shm", "in-process attach must not fall back"
    yield coordinator, worker
    worker.close()
    coordinator.close()


@pytest.fixture
def ring():
    handle = ShmRing.create(f"rfleet-prop-{os.getpid()}-{os.urandom(4).hex()}", 4096)
    yield handle
    handle.close()


class TestRoundTrip:
    @given(payloads=payload_lists)
    @COMMON_SETTINGS
    def test_tagged_roundtrip_byte_identical(self, pair, payloads):
        coordinator, worker = pair
        wire = coordinator.stage(payloads, _chained_crc(payloads))
        assert wire[0] == WIRE_SHM
        buffers = worker.fetch(wire)
        try:
            assert [bytes(view) for view in buffers] == payloads
        finally:
            _release(buffers)

    @given(payloads=payload_lists)
    @COMMON_SETTINGS
    def test_untagged_roundtrip_byte_identical(self, pair, payloads):
        coordinator, worker = pair
        buffers = worker.fetch(coordinator.stage(payloads))
        try:
            assert [bytes(view) for view in buffers] == payloads
        finally:
            _release(buffers)

    @given(
        blob=st.binary(min_size=0, max_size=4096),
        cuts=st.lists(st.integers(min_value=0, max_value=4096), max_size=6),
    )
    @COMMON_SETTINGS
    def test_chunking_is_invisible(self, pair, blob, cuts):
        """Any chunking of the same bytes fetches back to the same
        concatenation — the batched slot stores one contiguous body
        and the split is pure view slicing."""
        coordinator, worker = pair
        bounds = sorted(min(cut, len(blob)) for cut in cuts)
        payloads, start = [], 0
        for bound in bounds + [len(blob)]:
            payloads.append(blob[start:bound])
            start = bound
        buffers = worker.fetch(coordinator.stage(payloads))
        try:
            assert b"".join(bytes(view) for view in buffers) == blob
        finally:
            _release(buffers)

    @given(blob=st.binary(min_size=0, max_size=2048))
    @COMMON_SETTINGS
    def test_reply_roundtrip(self, pair, blob):
        coordinator, worker = pair
        reply = {"records": blob, "consumed_bytes": len(blob)}
        wire = worker.stage_reply(reply, WIRE_SHM)
        assert wire[0] == WIRE_SHM
        assert coordinator.fetch_reply(wire) == reply

    def test_reply_mirrors_inline_requests(self, pair):
        """A round that arrived inline is answered inline even though
        a reply ring exists (the pipe-fallback contract)."""
        _, worker = pair
        reply = {"rounds": 1}
        assert worker.stage_reply(reply, WIRE_INLINE) == (WIRE_INLINE, reply)


class TestTornSlots:
    def _tear_every_header_byte(self, data, offset, read):
        """Flip each of the 17 header bytes both ways; every tear must
        raise TransportError and never surface a payload view."""
        for index in range(MIN_RECORD_BYTES):
            for mask in TEAR_MASKS:
                original = data[offset + index]
                data[offset + index] = original ^ mask
                try:
                    with pytest.raises(TransportError):
                        read()
                finally:
                    data[offset + index] = original

    def test_every_offset_chunk_header_tear_detected(self, pair):
        coordinator, worker = pair
        payloads = [b"x" * 96, b"y" * 33, b""]
        wire = coordinator.stage(payloads, _chained_crc(payloads))
        assert wire[0] == WIRE_SHM
        self._tear_every_header_byte(
            worker.c2w.data, wire[2], lambda: worker.fetch(wire)
        )
        # The untouched slot still reads cleanly afterwards.
        _release(worker.fetch(wire))

    def test_every_offset_reply_header_tear_detected(self, pair):
        coordinator, worker = pair
        wire = worker.stage_reply({"records": b"z" * 64}, WIRE_SHM)
        assert wire[0] == WIRE_SHM
        self._tear_every_header_byte(
            coordinator.w2c.data,
            wire[1][1],
            lambda: coordinator.fetch_reply(wire),
        )
        assert coordinator.fetch_reply(wire) == {"records": b"z" * 64}

    def test_every_offset_untagged_tear_detected(self, ring):
        """Without a descriptor tag the whole body is hashed, so
        payload tears are caught too — every byte of the record."""
        payload = os.urandom(57)
        sequence, offset = ring.try_stage(SLOT_KIND_CHUNK, payload)
        for index in range(record_size(len(payload))):
            original = ring.data[offset + index]
            ring.data[offset + index] = original ^ 0xFF
            try:
                with pytest.raises(TransportError):
                    ring.read(sequence, offset, SLOT_KIND_CHUNK)
            finally:
                ring.data[offset + index] = original

    def test_wrong_kind_rejected(self, ring):
        sequence, offset = ring.try_stage(SLOT_KIND_CHUNK, b"body")
        with pytest.raises(TransportError):
            ring.read(sequence, offset, SLOT_KIND_REPLY)

    def test_length_tear_rejected_even_with_intact_crc(self, ring):
        """The length field sits outside the stored CRC; the tagged
        path must still reject a shrunken length (via the descriptor's
        expected length) instead of returning a short view."""
        payload = b"p" * 64
        payload_crc = zlib.crc32(payload)
        sequence, offset = ring.try_stage(
            SLOT_KIND_CHUNK, payload, payload_crc
        )
        import struct

        # Body length claiming a 16-byte payload (9-byte prefix + 16),
        # written over the header with the stored CRC left intact.
        shrunk = record_size(16) - record_size(0) + (record_size(0) - 8)
        stored_crc = struct.unpack_from("<I", ring.data, offset + 4)[0]
        struct.pack_into("<II", ring.data, offset, shrunk, stored_crc)
        with pytest.raises(TransportError):
            ring.read(
                sequence,
                offset,
                SLOT_KIND_CHUNK,
                payload_crc=payload_crc,
                length=len(payload),
            )


class TestNoLossNoDuplication:
    def test_full_ring_spills_inline_without_loss(self):
        coordinator = ShmCoordinatorTransport(ring_bytes=4096)
        worker = make_worker_transport(coordinator.spec())
        try:
            oversized = [os.urandom(4096), os.urandom(64)]
            wire = coordinator.stage(oversized)
            assert wire[0] == WIRE_INLINE
            assert worker.fetch(wire) == oversized
            assert coordinator.take_stats().get("spills") == len(oversized)
            # Backpressure is per round: the next round rides the ring.
            small = [b"tiny"]
            wire = coordinator.stage(small)
            assert wire[0] == WIRE_SHM
            buffers = worker.fetch(wire)
            assert [bytes(view) for view in buffers] == small
            _release(buffers)
        finally:
            worker.close()
            coordinator.close()

    def test_oversized_reply_spills_inline(self):
        coordinator = ShmCoordinatorTransport(ring_bytes=4096)
        worker = make_worker_transport(coordinator.spec())
        try:
            reply = {"records": os.urandom(8192)}
            wire = worker.stage_reply(reply, WIRE_SHM)
            assert wire[0] == WIRE_INLINE
            assert coordinator.fetch_reply(wire) == reply
        finally:
            worker.close()
            coordinator.close()

    @given(rounds=st.lists(payload_lists, min_size=2, max_size=5))
    @COMMON_SETTINGS
    def test_recycled_offsets_reject_stale_descriptors(self, pair, rounds):
        """Sequence numbers outlive offset reuse: after a round
        boundary reclaims the data region, every earlier descriptor
        is rejected — a freed slot can never be silently re-consumed
        as the new round (exactly-once across ring reuse)."""
        coordinator, worker = pair
        stale = []
        for payloads in rounds[:-1]:
            wire = coordinator.stage(payloads, _chained_crc(payloads))
            assert wire[0] == WIRE_SHM
            _release(worker.fetch(wire))
            stale.append(wire)
        final = rounds[-1]
        wire = coordinator.stage(final, _chained_crc(final))
        assert wire[0] == WIRE_SHM
        for old in stale:
            with pytest.raises(TransportError):
                worker.fetch(old)
        buffers = worker.fetch(wire)
        try:
            assert [bytes(view) for view in buffers] == final
        finally:
            _release(buffers)

    def test_wraparound_preserves_live_slots(self, ring):
        """General SPSC shape: consuming the head frees space at the
        front, so a record that would cross the end wraps to offset 0.
        The wrap must not clobber live slots, the wrapped record must
        read back byte-identical, and the freed head descriptor must
        be rejected."""
        head = os.urandom(1500)
        live = os.urandom(1500)
        wrapped = os.urandom(1400)
        head_slot = ring.try_stage(SLOT_KIND_CHUNK, head)
        live_slot = ring.try_stage(SLOT_KIND_CHUNK, live)
        assert head_slot is not None and live_slot is not None
        # No free space yet: the wrap candidate is refused, not lost.
        assert ring.try_stage(SLOT_KIND_CHUNK, wrapped) is None
        # The consumer drains the head record, reclaiming its bytes
        # (the strictly alternating fleet protocol frees whole rounds
        # via free_all; this reproduces the partial-free ring state).
        ring._used -= record_size(len(head))
        slot = ring.try_stage(SLOT_KIND_CHUNK, wrapped)
        assert slot is not None
        assert slot[1] == 0, "record crossing the end wraps to offset 0"
        assert ring.wraps == 1
        view = ring.read(slot[0], 0, SLOT_KIND_CHUNK)
        assert bytes(view) == wrapped
        view.release()
        # The live middle slot is untouched by the wrap...
        view = ring.read(live_slot[0], live_slot[1], SLOT_KIND_CHUNK)
        assert bytes(view) == live
        view.release()
        # ...and the freed head offset no longer satisfies its stale
        # descriptor (the wrapped record overwrote it).
        with pytest.raises(TransportError):
            ring.read(head_slot[0], head_slot[1], SLOT_KIND_CHUNK)
