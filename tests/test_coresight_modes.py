"""PTM configuration modes and encoder statistics."""

import numpy as np
import pytest

from repro.coresight.decoder import DecodedAtom, DecodedBranch, PftDecoder
from repro.coresight.ptm import Ptm, PtmConfig
from repro.workloads.cfg import BranchEvent, BranchKind


def events_mixed(n=200):
    out = []
    rng = np.random.default_rng(0)
    for i in range(n):
        kind = [
            BranchKind.CONDITIONAL, BranchKind.UNCONDITIONAL,
            BranchKind.INDIRECT, BranchKind.CALL,
        ][int(rng.integers(0, 4))]
        taken = bool(rng.random() < 0.6)
        out.append(
            BranchEvent(
                cycle=i * 12,
                source=0x10000 + 4 * i,
                target=int(0x20000 + 4 * rng.integers(0, 64)),
                kind=kind,
                taken=taken if kind is BranchKind.CONDITIONAL else True,
            )
        )
    return out


class TestWaypointMode:
    """branch_broadcast=False: direct branches become atoms, only
    indirect control flow emits addresses (classic PFT)."""

    def encode(self, events):
        ptm = Ptm(PtmConfig(branch_broadcast=False))
        data = b"".join(ptm.feed(e) for e in events) + ptm.flush()
        return PftDecoder().feed(data), ptm

    def test_direct_branches_have_no_addresses(self):
        events = [
            BranchEvent(0, 0x1000, 0x2000, BranchKind.INDIRECT),
            BranchEvent(1, 0x1010, 0x1020, BranchKind.CONDITIONAL,
                        taken=True),
            BranchEvent(2, 0x1020, 0x1030, BranchKind.UNCONDITIONAL),
        ]
        items, _ = self.encode(events)
        branches = [i for i in items if isinstance(i, DecodedBranch)]
        atoms = [i for i in items if isinstance(i, DecodedAtom)]
        # only the indirect branch carries an address
        assert len(branches) == 1
        assert branches[0].address == 0x2000
        # the two direct taken branches became E atoms
        assert sum(1 for a in atoms if a.taken) == 2

    def test_waypoint_stream_smaller_than_broadcast(self):
        events = events_mixed(400)
        broadcast = Ptm(PtmConfig(branch_broadcast=True))
        waypoint = Ptm(PtmConfig(branch_broadcast=False))
        size_b = len(
            b"".join(broadcast.feed(e) for e in events) + broadcast.flush()
        )
        size_w = len(
            b"".join(waypoint.feed(e) for e in events) + waypoint.flush()
        )
        assert size_w < size_b

    def test_atom_taken_mix_preserved(self):
        events = [
            BranchEvent(0, 0x1000, 0x2000, BranchKind.INDIRECT),
            BranchEvent(1, 0x1010, 0x1020, BranchKind.CONDITIONAL,
                        taken=True),
            BranchEvent(2, 0x1020, 0x1014, BranchKind.CONDITIONAL,
                        taken=False),
            BranchEvent(3, 0x1024, 0x1030, BranchKind.CONDITIONAL,
                        taken=True),
        ]
        items, _ = self.encode(events)
        atoms = [i.taken for i in items if isinstance(i, DecodedAtom)]
        assert atoms == [True, False, True]


class TestEncoderStatistics:
    def test_packet_counts_consistent_with_stream(self):
        events = events_mixed(300)
        ptm = Ptm()
        data = b"".join(ptm.feed(e) for e in events) + ptm.flush()
        assert ptm.total_bytes == len(data)
        items = PftDecoder().feed(data)
        decoded_branches = sum(
            1 for i in items if isinstance(i, DecodedBranch)
        )
        assert decoded_branches == ptm.packet_counts["branch"]

    def test_sync_interval_respected(self):
        config = PtmConfig(sync_interval_bytes=100)
        ptm = Ptm(config)
        for event in events_mixed(500):
            ptm.feed(event)
        # At least one sync per ~100 bytes of trace.
        assert ptm.packet_counts["isync"] >= ptm.total_bytes // 200

    def test_context_id_travels(self):
        from repro.coresight.decoder import DecodedContext

        ptm = Ptm(PtmConfig(context_id=0xBEEF))
        data = ptm.feed(
            BranchEvent(0, 0x1000, 0x2000, BranchKind.UNCONDITIONAL)
        )
        contexts = [
            i for i in PftDecoder().feed(data)
            if isinstance(i, DecodedContext)
        ]
        assert contexts[0].context_id == 0xBEEF
