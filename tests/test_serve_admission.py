"""Admission layers in isolation: bucket, controller, breaker."""

import pytest

from repro.errors import ServeError
from repro.serve import (
    AdmissionController,
    BreakerPolicy,
    BreakerState,
    CircuitBreaker,
    TokenBucket,
)
from repro.soc.manager import TenantHealth


class TestTokenBucket:
    def test_burst_then_refusal_with_backoff(self):
        bucket = TokenBucket(rate_per_s=100.0, burst=50)
        ok, _ = bucket.admit(50, now_s=0.0)
        assert ok
        ok, retry_s = bucket.admit(10, now_s=0.0)
        assert not ok
        # 10 tokens at 100/s: wait 0.1 s.
        assert retry_s == pytest.approx(0.1)
        # A refusal consumes nothing.
        assert bucket.tokens == 0.0

    def test_refill_is_time_driven(self):
        bucket = TokenBucket(rate_per_s=100.0, burst=50)
        bucket.admit(50, now_s=0.0)
        ok, _ = bucket.admit(20, now_s=0.2)  # refilled 20
        assert ok
        ok, _ = bucket.admit(1000, now_s=10.0)  # never above burst
        assert not ok

    def test_validation(self):
        with pytest.raises(ServeError):
            TokenBucket(rate_per_s=0, burst=10)
        with pytest.raises(ServeError):
            TokenBucket(rate_per_s=10, burst=0)


class TestAdmissionController:
    def test_queue_depth_cap(self):
        controller = AdmissionController(
            deadline_us=None, max_queued_events=100
        )
        assert controller.check(100) == (None, 0.0)
        controller.admitted(100)
        reason, retry_s = controller.check(1)
        assert reason == "queue_depth"
        assert retry_s > 0
        controller.drained(100, elapsed_s=0.01)
        assert controller.check(1) == (None, 0.0)

    def test_deadline_prediction_sheds_at_the_door(self):
        controller = AdmissionController(
            deadline_us=1_000.0,  # 1 ms budget
            max_queued_events=1 << 20,
            drain_rate_guess_eps=10_000.0,  # 10 events/ms
        )
        controller.admitted(5)
        assert controller.check(1)[0] is None
        # 100 queued at 10/ms -> 10 ms predicted wait >> 1 ms deadline.
        controller.admitted(95)
        reason, retry_s = controller.check(1)
        assert reason == "deadline"
        assert retry_s > 0

    def test_drain_rate_ewma_tracks_observations(self):
        controller = AdmissionController(
            deadline_us=None,
            max_queued_events=1000,
            drain_rate_guess_eps=1000.0,
            ewma_alpha=0.5,
        )
        controller.admitted(100)
        controller.drained(100, elapsed_s=0.01)  # observed 10k eps
        assert controller.drain_rate_eps == pytest.approx(5500.0)
        assert controller.queued_events == 0

    def test_stale_shed_releases_queue(self):
        controller = AdmissionController(
            deadline_us=None, max_queued_events=100
        )
        controller.admitted(80)
        controller.shed_stale(80)
        assert controller.queued_events == 0

    def test_validation(self):
        with pytest.raises(ServeError):
            AdmissionController(deadline_us=0, max_queued_events=10)
        with pytest.raises(ServeError):
            AdmissionController(deadline_us=None, max_queued_events=0)


class TestCircuitBreaker:
    POLICY = BreakerPolicy(
        trip_shed_ratio=0.5, trip_rounds=2, recover_rounds=2,
        sample_stride=4,
    )

    def _storm_round(self, breaker, frames=4):
        for _ in range(frames):
            admitted, _ = breaker.admit_frame()
            if admitted:
                breaker.record_shed()

    def test_shed_storm_trips_then_samples_then_recovers(self):
        breaker = CircuitBreaker(self.POLICY)
        self._storm_round(breaker)
        breaker.observe_round(TenantHealth.HEALTHY)
        assert breaker.state is BreakerState.CLOSED  # 1 bad round
        self._storm_round(breaker)
        breaker.observe_round(TenantHealth.HEALTHY)
        assert breaker.state is BreakerState.SAMPLING
        assert breaker.trips == 1
        # SAMPLING admits exactly 1 frame in sample_stride.
        decisions = [breaker.admit_frame() for _ in range(8)]
        assert sum(1 for ok, _ in decisions if ok) == 2
        assert all(
            reason == "sampled" for ok, reason in decisions if not ok
        )
        # Two clean rounds close it again.
        breaker.observe_round(TenantHealth.HEALTHY)
        breaker.observe_round(TenantHealth.HEALTHY)
        assert breaker.state is BreakerState.CLOSED
        assert breaker.recoveries == 1

    def test_quarantine_forces_open_then_probation_samples(self):
        breaker = CircuitBreaker(self.POLICY)
        breaker.observe_round(TenantHealth.QUARANTINED)
        assert breaker.state is BreakerState.OPEN
        ok, reason = breaker.admit_frame()
        assert not ok and reason == "breaker_open"
        # Probation ends: degrade to sampled ingest, not full.
        breaker.observe_round(TenantHealth.HEALTHY)
        assert breaker.state is BreakerState.SAMPLING

    def test_degraded_health_forces_sampling(self):
        breaker = CircuitBreaker(self.POLICY)
        breaker.observe_round(TenantHealth.DEGRADED)
        assert breaker.state is BreakerState.SAMPLING
        assert breaker.trips == 1

    def test_refused_frames_count_toward_the_storm(self):
        """Frames the gate never saw (undecodable payloads) still trip
        the breaker — a corrupt-heavy stream is a storm too."""
        breaker = CircuitBreaker(self.POLICY)
        for _ in range(2):
            for _ in range(4):
                breaker.record_refused_frame()
            breaker.observe_round(TenantHealth.HEALTHY)
        assert breaker.state is BreakerState.SAMPLING

    def test_policy_validation(self):
        with pytest.raises(ServeError):
            BreakerPolicy(trip_shed_ratio=0.0)
        with pytest.raises(ServeError):
            BreakerPolicy(sample_stride=0)
