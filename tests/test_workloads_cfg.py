"""CFG generation: structure, integrity, determinism."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.utils.rng import make_rng
from repro.workloads.cfg import (
    BasicBlock,
    BranchKind,
    ControlFlowGraph,
    generate_cfg,
    INSTRUCTION_BYTES,
    SYSCALL_BASE,
    TEXT_BASE,
)


def make_small_cfg(seed=0, **overrides):
    params = dict(
        num_functions=12,
        blocks_per_function=8,
        mean_block_size=5.0,
        syscall_block_fraction=0.01,
        call_block_fraction=0.1,
        indirect_block_fraction=0.03,
        num_syscalls=8,
        seed_rng=make_rng(seed),
    )
    params.update(overrides)
    return generate_cfg(**params)


class TestGeneration:
    def test_validates(self):
        make_small_cfg().validate()

    def test_function_count(self):
        cfg = make_small_cfg()
        assert len(cfg.functions) == 12

    def test_entry_is_first_function(self):
        cfg = make_small_cfg()
        assert cfg.entry == cfg.functions[0].entry

    def test_blocks_word_aligned(self):
        cfg = make_small_cfg()
        assert all(b.address % INSTRUCTION_BYTES == 0 for b in cfg.blocks.values())

    def test_blocks_do_not_overlap(self):
        cfg = make_small_cfg()
        spans = sorted(
            (b.address, b.end_address) for b in cfg.blocks.values()
        )
        for (s1, e1), (s2, _) in zip(spans, spans[1:]):
            assert e1 <= s2

    def test_text_base_respected(self):
        cfg = make_small_cfg()
        assert min(b.address for b in cfg.blocks.values()) >= TEXT_BASE

    def test_syscall_stubs_in_kernel_region(self):
        cfg = make_small_cfg()
        assert all(a >= SYSCALL_BASE for a in cfg.syscall_addresses)

    def test_entry_function_has_call_sites(self):
        """The walker must be able to leave function 0."""
        for seed in range(6):
            cfg = make_small_cfg(seed=seed, call_block_fraction=0.0)
            entry_blocks = [
                cfg.blocks[a] for a in cfg.functions[0].blocks
            ]
            calls = [
                b for b in entry_blocks if b.terminator is BranchKind.CALL
            ]
            assert len(calls) >= 1

    def test_deterministic_given_seed(self):
        a = make_small_cfg(seed=5)
        b = make_small_cfg(seed=5)
        assert sorted(a.blocks) == sorted(b.blocks)
        assert a.call_targets == b.call_targets

    def test_different_seeds_differ(self):
        a = make_small_cfg(seed=1)
        b = make_small_cfg(seed=2)
        assert sorted(a.blocks) != sorted(b.blocks)

    def test_requires_a_function(self):
        with pytest.raises(WorkloadError):
            make_small_cfg(num_functions=0)


class TestValidation:
    def test_dangling_target_caught(self):
        cfg = ControlFlowGraph()
        cfg.add_block(
            BasicBlock(
                address=TEXT_BASE,
                size=4,
                terminator=BranchKind.UNCONDITIONAL,
                taken_target=0xDEAD000,
            )
        )
        cfg.entry = TEXT_BASE
        with pytest.raises(WorkloadError):
            cfg.validate()

    def test_duplicate_block_rejected(self):
        cfg = ControlFlowGraph()
        block = BasicBlock(
            address=TEXT_BASE, size=4, terminator=BranchKind.RETURN
        )
        cfg.add_block(block)
        with pytest.raises(WorkloadError):
            cfg.add_block(block)

    def test_unknown_syscall_number_caught(self):
        cfg = ControlFlowGraph()
        cfg.add_block(
            BasicBlock(
                address=TEXT_BASE,
                size=4,
                terminator=BranchKind.SYSCALL,
                fallthrough=TEXT_BASE,
                syscall_number=99,
            )
        )
        cfg.entry = TEXT_BASE
        with pytest.raises(WorkloadError):
            cfg.validate()

    def test_indirect_without_targets_caught(self):
        cfg = ControlFlowGraph()
        cfg.add_block(
            BasicBlock(
                address=TEXT_BASE,
                size=4,
                terminator=BranchKind.INDIRECT,
            )
        )
        cfg.entry = TEXT_BASE
        with pytest.raises(WorkloadError):
            cfg.validate()

    def test_block_at_unknown_address(self):
        cfg = make_small_cfg()
        with pytest.raises(WorkloadError):
            cfg.block_at(0x3)


class TestBasicBlock:
    def test_branch_address_is_last_instruction(self):
        block = BasicBlock(
            address=0x1000, size=3, terminator=BranchKind.RETURN
        )
        assert block.branch_address == 0x1000 + 2 * INSTRUCTION_BYTES

    def test_end_address(self):
        block = BasicBlock(
            address=0x1000, size=3, terminator=BranchKind.RETURN
        )
        assert block.end_address == 0x1000 + 3 * INSTRUCTION_BYTES
