"""Chaos harness: recovery invariants under swept fault rates."""

import json

import pytest

from repro.eval.chaos import (
    chaos_to_json,
    format_chaos,
    run_chaos,
    run_decoder_sweep,
    run_quarantine_scenario,
)

RATES = (0.0, 0.01)
EVENTS = 900


@pytest.fixture(scope="module")
def chaos():
    return run_chaos(rates=RATES, events=EVENTS, seed=0)


class TestChaosSweep:
    def test_zero_rate_decoder_point_is_lossless(self, chaos):
        point = chaos.decoder[0]
        assert point.rate == 0.0
        assert point.recovered_fraction == 1.0
        assert point.bytes_flipped == 0
        assert point.bytes_dropped == 0
        assert point.decoder_resyncs == 0

    def test_nonzero_rate_decoder_point_relocks(self, chaos):
        point = chaos.decoder[-1]
        assert point.bytes_flipped + point.bytes_dropped > 0
        # the hunt-mode decoder re-locked and kept producing branches
        assert point.decoder_resyncs > 0
        assert 0.0 < point.recovered_fraction < 1.0

    def test_zero_rate_dataplane_point_matches_baseline(self, chaos):
        point = chaos.dataplane[0]
        assert point.inferences == point.baseline_inferences
        assert point.matched == point.baseline_inferences
        assert point.flag_agreement == 1.0
        assert point.events_dropped == 0
        assert point.vectors_dropped == 0

    def test_nonzero_rate_dataplane_point_degrades_gracefully(self, chaos):
        point = chaos.dataplane[-1]
        assert point.events_dropped > 0
        assert point.inferences > 0  # faults thin the stream, not kill it

    def test_quarantine_scenario_preserves_healthy_tenants(self, chaos):
        quarantine = chaos.quarantine
        assert quarantine.quarantines >= 1
        assert quarantine.cancelled >= 1
        assert quarantine.healthy_always_identical

    def test_json_round_trip(self, chaos):
        payload = chaos_to_json(chaos)
        decoded = json.loads(json.dumps(payload, sort_keys=True))
        assert decoded["rates"] == list(RATES)
        assert decoded["events"] == EVENTS
        assert len(decoded["decoder"]) == len(RATES)
        assert len(decoded["dataplane"]) == len(RATES)
        assert decoded["quarantine"]["rounds"]

    def test_text_report_mentions_every_section(self, chaos):
        text = format_chaos(chaos)
        assert "decoder" in text.lower()
        assert "dataplane" in text.lower()
        assert "quarantine" in text.lower()


class TestChaosValidation:
    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            run_chaos(rates=(1.5,), events=100, seed=0)
        with pytest.raises(ValueError):
            run_chaos(rates=(-0.1,), events=100, seed=0)

    def test_decoder_sweep_monotone_damage(self):
        points = run_decoder_sweep((0.0, 0.02), events=EVENTS, seed=0)
        assert points[0].recovered_fraction >= points[1].recovered_fraction

    def test_quarantine_full_lifecycle(self):
        # larger rounds make the stall plan trip in round 0, so the
        # sweep window sees quarantine -> skipped -> re-admission
        result = run_quarantine_scenario(events=6_000, seed=0)
        assert result.quarantines >= 1
        assert result.readmissions >= 1
        assert result.healthy_always_identical
        skipped = [r for r in result.rounds if r.skipped]
        assert skipped
        assert all(
            r.records[result.faulty_tenant] == 0 for r in skipped
        )
        assert all(
            r.healthy_identical is True for r in skipped
        )
