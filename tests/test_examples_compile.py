"""Examples stay importable (full runs are manual/demo-time)."""

import pathlib
import py_compile

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


def test_examples_present():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize(
    "path", EXAMPLES, ids=[p.stem for p in EXAMPLES]
)
def test_example_compiles(path, tmp_path):
    py_compile.compile(
        str(path), cfile=str(tmp_path / (path.stem + ".pyc")), doraise=True
    )


@pytest.mark.parametrize(
    "path", EXAMPLES, ids=[p.stem for p in EXAMPLES]
)
def test_example_has_main_guard_and_docstring(path):
    source = path.read_text()
    assert '__name__ == "__main__"' in source
    assert source.lstrip().startswith('"""')
    assert "Run:" in source  # usage line in the docstring
