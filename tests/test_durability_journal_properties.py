"""Seeded randomized properties of the write-ahead journal.

Like the CoreSight round-trip property suite next door, these use a
plain seeded ``random.Random`` so every run, on every machine, sees
the identical cases.  Three durability properties are exercised:

1. **Round trip** — arbitrary payloads, kinds, segment rolls, and
   event chunkings survive append -> scan (and a file reopen) exactly.
2. **Torn-tail truncation** — a crash may leave any byte-length prefix
   of the final record on disk; reopening at *every* such offset
   recovers precisely the valid record prefix and physically drops the
   tail.
3. **Flip detection** — flipping any single bit of any byte of a
   journal is detected on reopen: either the scan raises
   :class:`JournalCorruptionError` (interior damage) or it truncates
   to strictly fewer records (tail damage).  No flip is ever silently
   absorbed into a full-length replay.
"""

import os
import random

import pytest

from repro.durability import (
    FileJournal,
    MemoryJournal,
    RecordKind,
    decode_trace_chunk,
    encode_record,
    encode_trace_chunk,
)
from repro.errors import JournalCorruptionError
from repro.workloads.cfg import BranchEvent, BranchKind

SEEDS = (2024, 7, 90125)

_KINDS = tuple(BranchKind)


def _random_event(rng: random.Random, cycle: int) -> BranchEvent:
    kind = rng.choice(_KINDS)
    return BranchEvent(
        cycle=cycle,
        source=rng.randrange(1 << 30) << 2,
        target=rng.randrange(1 << 30) << 2,
        kind=kind,
        taken=kind is not BranchKind.CONDITIONAL or rng.random() < 0.6,
    )


def _random_records(rng: random.Random):
    """A random mix of record kinds and payload sizes."""
    records = []
    for _ in range(rng.randrange(1, 12)):
        kind = rng.choice(list(RecordKind))
        payload = bytes(
            rng.randrange(256) for _ in range(rng.randrange(0, 40))
        )
        records.append((kind, payload))
    return records


@pytest.mark.parametrize("seed", SEEDS)
def test_roundtrip_arbitrary_records_and_rolls(tmp_path, seed):
    rng = random.Random(seed)
    for case in range(25):
        expected = _random_records(rng)
        directory = str(tmp_path / f"case-{seed}-{case}")
        disk = FileJournal(directory)
        memory = MemoryJournal()
        for kind, payload in expected:
            disk.append(kind, payload)
            memory.append(kind, payload)
            if rng.random() < 0.25:
                disk.roll()
                memory.roll()
        for journal in (disk, memory, FileJournal(directory)):
            got = journal.records()
            assert [r.sequence for r in got] == list(range(len(expected)))
            assert [(r.kind, r.payload) for r in got] == expected


@pytest.mark.parametrize("seed", SEEDS)
def test_trace_chunk_roundtrip_arbitrary_chunkings(seed):
    rng = random.Random(seed)
    for _ in range(30):
        count = rng.randrange(0, 200)
        cycle = rng.randrange(1 << 20)
        events = []
        for _ in range(count):
            cycle += rng.randrange(1, 500)
            events.append(_random_event(rng, cycle))
        # Slice the trace at random boundaries; every chunk must
        # round-trip independently of how the stream was cut.
        start = 0
        chunk_index = 0
        while start < count or (count == 0 and chunk_index == 0):
            step = rng.randrange(1, 64)
            chunk = events[start:start + step]
            payload = encode_trace_chunk(
                f"tenant{seed % 4}", seed, chunk_index, chunk
            )
            decoded = decode_trace_chunk(payload)
            assert list(decoded.events) == chunk
            assert decoded.chunk_index == chunk_index
            start += step
            chunk_index += 1


@pytest.mark.parametrize("seed", SEEDS)
def test_torn_tail_truncation_at_every_byte_offset(tmp_path, seed):
    rng = random.Random(seed)
    prefix = [
        (
            rng.choice(list(RecordKind)),
            bytes(rng.randrange(256) for _ in range(rng.randrange(0, 24))),
        )
        for _ in range(3)
    ]
    last_kind = rng.choice(list(RecordKind))
    last_payload = bytes(
        rng.randrange(256) for _ in range(rng.randrange(8, 32))
    )
    prefix_bytes = b"".join(
        encode_record(i, kind, payload)
        for i, (kind, payload) in enumerate(prefix)
    )
    last_bytes = encode_record(len(prefix), last_kind, last_payload)

    directory = str(tmp_path / "wal")
    segment = os.path.join(directory, "segment-00000000.wal")
    os.makedirs(directory)
    for keep in range(len(last_bytes)):
        with open(segment, "wb") as handle:
            handle.write(prefix_bytes + last_bytes[:keep])
        journal = FileJournal(directory)
        got = journal.records()
        # Exactly the complete prefix survives; the torn record never
        # becomes visible regardless of where the write was cut.
        assert [(r.kind, r.payload) for r in got] == prefix
        assert journal.next_sequence == len(prefix)
        assert os.path.getsize(segment) == len(prefix_bytes)


@pytest.mark.parametrize("seed", SEEDS)
def test_any_single_bit_flip_is_detected(tmp_path, seed):
    rng = random.Random(seed)
    records = [
        (
            rng.choice(list(RecordKind)),
            bytes(rng.randrange(256) for _ in range(rng.randrange(4, 16))),
        )
        for _ in range(4)
    ]
    pristine_bytes = b"".join(
        encode_record(i, kind, payload)
        for i, (kind, payload) in enumerate(records)
    )
    directory = str(tmp_path / "wal")
    segment = os.path.join(directory, "segment-00000000.wal")
    os.makedirs(directory)

    for position in range(len(pristine_bytes)):
        flipped = bytearray(pristine_bytes)
        flipped[position] ^= 1 << rng.randrange(8)
        with open(segment, "wb") as handle:
            handle.write(flipped)
        try:
            survived = len(FileJournal(directory).records())
        except JournalCorruptionError:
            continue  # detected loudly
        # Tolerated as a torn tail: must have lost at least one record.
        assert survived < len(records), (
            f"flip at byte {position} went undetected"
        )
