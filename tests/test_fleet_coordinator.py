"""Fleet coordinator: sharded dispatch equals solo execution.

The coordinator's contract is transparency: sharding tenants across
worker processes must not change what the SoC computes.  Records from
a fleet shard are byte-identical to a solo :class:`SocManager` hosting
the same tenant subset (same topology → same engine interleaving), the
verdict flags match the all-tenants solo reference (scores and
anomaly decisions are topology-independent), and the ``fleet.*``
counter namespace obeys the conservation law the eval harness gates
on.  The serve front door runs over a coordinator unchanged — the same
duck surface as a solo manager.
"""

import asyncio
import tempfile

import pytest

from repro.errors import FleetError, SocConfigError
from repro.eval.metrics import demo_events
from repro.eval.recovery import record_signature
from repro.fleet import FleetConfig, FleetCoordinator, demo_factory
from repro.obs import MetricsRegistry
from repro.serve import IngestServer, ServeClient, ServeConfig
from repro.soc.manager import SocManager, TenantHealth

KIND = "lstm"
TENANTS = 4
EVENTS = 200


def _names(count=TENANTS):
    return [f"tenant{i}" for i in range(count)]


def _traces(round_index, names=None):
    return {
        name: demo_events(
            KIND, 0, EVENTS, run_label=f"fleet-{name}-r{round_index}"
        )
        for name in (names or _names())
    }


def _fleet(num_shards=2, names=None, config=None, **kwargs):
    return FleetCoordinator(
        demo_factory,
        names or _names(),
        tempfile.mkdtemp(prefix="repro-fleet-test-"),
        config or FleetConfig(num_shards=num_shards),
        **kwargs,
    )


def _signatures(records):
    return {
        name: [record_signature(r) for r in tenant_records]
        for name, tenant_records in records.items()
    }


class TestEquivalence:
    def test_records_byte_identical_to_same_topology_solo(self):
        rounds = [_traces(r) for r in range(2)]
        with _fleet(num_shards=2) as fleet:
            placement = {
                shard.id: list(shard.tenants) for shard in fleet.shards
            }
            fleet_logs = [
                _signatures(fleet.run_events(traces))
                for traces in rounds
            ]
        # Round-robin placement: shard0 = tenant0,2; shard1 = tenant1,3.
        assert placement == {
            0: ["tenant0", "tenant2"],
            1: ["tenant1", "tenant3"],
        }
        # A solo manager per shard tenant subset is the same topology
        # (same private engine, same lane set): byte-identical records,
        # virtual timestamps and sequence numbers included.
        for tenant_subset in placement.values():
            solo = SocManager(
                demo_factory(tenant_subset, kind=KIND),
                metrics=MetricsRegistry(),
            )
            for traces, fleet_log in zip(rounds, fleet_logs):
                solo_records = solo.run_events(
                    {name: traces[name] for name in tenant_subset}
                )
                for name in tenant_subset:
                    assert (
                        _signatures(solo_records)[name]
                        == fleet_log[name]
                    )

    def test_verdict_flags_match_all_tenants_reference(self):
        # Scores and anomaly verdicts do not depend on which engine a
        # tenant lands on — only engine-local bookkeeping (timestamps,
        # sequence numbers) does.
        traces = _traces(0)
        solo = SocManager(
            demo_factory(_names(), kind=KIND), metrics=MetricsRegistry()
        )
        reference = solo.run_events(traces)
        for num_shards in (1, 2, 4):
            with _fleet(num_shards=num_shards) as fleet:
                records = fleet.run_events(traces)
            for name in _names():
                assert [
                    (bool(r.anomalous), float(r.score))
                    for r in records[name]
                ] == [
                    (bool(r.anomalous), float(r.score))
                    for r in reference[name]
                ]


class TestTransports:
    def _run(self, transport, num_shards=2, rounds=2):
        config = FleetConfig(num_shards=num_shards, transport=transport)
        with _fleet(config=config) as fleet:
            logs = [
                _signatures(fleet.run_events(_traces(r)))
                for r in range(rounds)
            ]
            counters = fleet.counters()
            stats = fleet.transport_stats()
            names = fleet.transport_names()
        return logs, counters, stats, names

    def test_pipe_and_shm_runs_are_bit_identical(self):
        """The transport moves bytes; it must never change them.  Same
        workload over the pipe and over the rings: record signatures
        (timestamps and sequence numbers included) and the merged
        counter snapshot compare equal."""
        pipe = self._run("pipe")
        shm = self._run("shm")
        assert shm[3] == {0: "shm", 1: "shm"}, "shm attach fell back"
        assert pipe[0] == shm[0]  # per-round record signatures
        assert pipe[1] == shm[1]  # merged counters (identity surface)

    @pytest.mark.parametrize("num_shards", [1, 2, 4])
    def test_bytes_conservation_per_transport(self, num_shards):
        for transport in ("pipe", "shm"):
            _, _, stats, _ = self._run(
                transport, num_shards=num_shards, rounds=1
            )
            staged = stats["fleet.transport.bytes.staged"]
            assert staged > 0
            assert staged == (
                stats["fleet.transport.bytes.consumed"]
                + stats["fleet.transport.bytes.discarded"]
            )

    def test_undersized_ring_spills_inline_without_loss(self):
        """A round bigger than the ring rides the pipe whole — same
        records, spill counted, conservation intact."""
        reference, _, _, _ = self._run("pipe", rounds=1)
        config = FleetConfig(
            num_shards=2, transport="shm", shm_ring_bytes=4096
        )
        with _fleet(config=config) as fleet:
            logs = [_signatures(fleet.run_events(_traces(0)))]
            stats = fleet.transport_stats()
        assert logs == reference
        assert stats["fleet.transport.payloads.inline"] > 0
        assert stats["fleet.transport.bytes.staged"] == (
            stats["fleet.transport.bytes.consumed"]
            + stats["fleet.transport.bytes.discarded"]
        )


@pytest.mark.parametrize("start_method", ["fork", "spawn"])
class TestStartMethods:
    """The fleet must not assume fork inheritance: a spawned worker
    rebuilds everything from the pickled ``worker_main`` args (factory,
    tenant list, journal dir, transport spec).  Keyed so CI can select
    the portable path alone with ``-k spawn``."""

    def test_round_trip_matches_solo_reference(self, start_method):
        traces = _traces(0)
        solo = SocManager(
            demo_factory(_names(), kind=KIND), metrics=MetricsRegistry()
        )
        reference = solo.run_events(traces)
        config = FleetConfig(num_shards=2, start_method=start_method)
        with _fleet(config=config) as fleet:
            records = fleet.run_events(traces)
            counters = fleet.counters()
            names = fleet.transport_names()
        assert names == {0: "shm", 1: "shm"}
        for name in _names():
            assert [
                (bool(r.anomalous), float(r.score))
                for r in records[name]
            ] == [
                (bool(r.anomalous), float(r.score))
                for r in reference[name]
            ]
        assert counters["fleet.rounds.admitted"] == 2
        assert counters["fleet.restarts"] == 0


class TestCountersAndSurface:
    def test_counters_merge_and_conserve(self):
        registry = MetricsRegistry()
        with _fleet(num_shards=2, metrics=registry) as fleet:
            first = fleet.run_events(_traces(0))
            fleet.run_events(_traces(1))
            counters = fleet.counters()
            delivered = sum(
                len(r) for r in first.values()
            ) + sum(
                len(r)
                for r in fleet.run_events(_traces(2)).values()
            )
            counters = fleet.counters()
        assert counters["fleet.shards"] == 2
        assert counters["fleet.workers.spawned"] == 2
        assert counters["fleet.rounds"] == 3
        # Every shard had traffic every round; nothing crashed.
        assert counters["fleet.rounds.admitted"] == 6
        assert counters["fleet.restarts"] == 0
        assert counters["fleet.rounds.replayed"] == 0
        # Conservation: admitted == per-shard fresh rounds + replays.
        fresh = sum(
            value
            for name, value in counters.items()
            if name.startswith("fleet.shard.") and name.endswith(".rounds")
        )
        assert counters["fleet.rounds.admitted"] == (
            fresh + counters["fleet.rounds.replayed"]
        )
        # Worker socmgr.* counters are summed into the merged view,
        # and the coordinator mirror matches the registry.
        assert counters["socmgr.runs"] == 6
        snapshot = registry.snapshot()["counters"]
        assert snapshot["fleet.rounds"] == 3
        assert counters["fleet.records.delivered"] >= delivered

    def test_idle_shards_get_heartbeats(self):
        with _fleet(num_shards=2) as fleet:
            shard0_only = {
                name: trace
                for name, trace in _traces(0).items()
                if name in fleet.shards[0].tenants
            }
            records = fleet.run_events(shard0_only)
            counters = dict(fleet.counts)
        assert set(records) == set(shard0_only)
        assert counters["fleet.rounds.admitted"] == 1
        assert counters["fleet.heartbeats"] == 1  # idle shard pinged
        assert counters["fleet.heartbeat.misses"] == 0

    def test_manager_duck_surface(self):
        with _fleet(num_shards=2) as fleet:
            assert [t.name for t in fleet.tenants] == [
                "tenant0", "tenant2", "tenant1", "tenant3",
            ]
            facade = fleet.tenant("tenant1")
            assert facade.deployment.config.frontend == "coresight"
            with pytest.raises(SocConfigError):
                fleet.tenant("nobody")
            assert fleet.health() == {
                name: TenantHealth.HEALTHY for name in _names()
            }
            rows = fleet.liveness()
            assert [row["shard"] for row in rows] == [0, 1]
            assert all(row["alive"] for row in rows)
            assert all(row["restarts"] == 0 for row in rows)

    def test_run_after_close_refused(self):
        fleet = _fleet(num_shards=2)
        fleet.close()
        fleet.close()  # idempotent
        with pytest.raises(FleetError, match="closed"):
            fleet.run_events(_traces(0))

    def test_unknown_tenant_traffic_refused(self):
        with _fleet(num_shards=2) as fleet:
            with pytest.raises(SocConfigError, match="nobody"):
                fleet.run_events({"nobody": _traces(0)["tenant0"]})


class TestValidation:
    def test_no_tenants_refused(self):
        with pytest.raises(FleetError):
            FleetCoordinator(demo_factory, [], "/tmp/unused")

    def test_duplicate_tenants_refused(self):
        with pytest.raises(FleetError, match="duplicate"):
            FleetCoordinator(
                demo_factory, ["a", "a"], "/tmp/unused"
            )

    def test_more_shards_than_tenants_refused(self):
        with pytest.raises(FleetError, match="at least one tenant"):
            FleetCoordinator(
                demo_factory,
                ["a", "b"],
                "/tmp/unused",
                FleetConfig(num_shards=3),
            )

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(num_shards=0),
            dict(max_restarts=0),
            dict(heartbeat_timeout_s=0),
            dict(round_timeout_s=-1),
            dict(journal_chunk_events=0),
        ],
    )
    def test_bad_config_refused(self, kwargs):
        with pytest.raises(FleetError):
            FleetConfig(**kwargs)


class TestServeOverFleet:
    def test_front_door_runs_unchanged_over_a_fleet(self):
        # Swapping the solo manager for a coordinator is a constructor
        # change: HELLO validation, ingestion, drain, and verdict
        # accounting all ride the same duck surface.
        async def scenario():
            fleet = _fleet(num_shards=2)
            clock = {"ns": 0}
            server = IngestServer(
                fleet, ServeConfig(), clock_ns=lambda: clock["ns"]
            )
            try:
                client = ServeClient.local(server)
                await client.hello("tenant1")
                response = await client.send_events(
                    demo_events(KIND, 0, 60)
                )
                served = server.drain_once()
                summary = await client.bye()
                await server.stop()
                return response, served, summary, server, dict(
                    fleet.counts
                )
            finally:
                fleet.close()

        response, served, summary, server, counts = asyncio.run(
            scenario()
        )
        assert response["accepted_events"] == 60
        assert served == 60
        assert summary["admitted"] == 1
        assert server.counts["serve.rounds"] == 1
        assert server.counts["serve.verdicts"] > 0
        assert counts["fleet.rounds"] == 1
        assert counts["fleet.rounds.admitted"] == 1  # one busy shard

    def test_unknown_tenant_hello_refused_by_fleet(self):
        async def scenario():
            fleet = _fleet(num_shards=2)
            server = IngestServer(fleet, ServeConfig())
            try:
                client = ServeClient.local(server)
                from repro.errors import ServeError

                with pytest.raises(ServeError, match="HELLO refused"):
                    await client.hello("nobody")
                await server.stop()
            finally:
                fleet.close()

        asyncio.run(scenario())
