"""Wire-protocol codec: framing, CRC, payload round trips."""

import pytest

from repro.errors import FrameProtocolError
from repro.eval.metrics import demo_events
from repro.serve import protocol


class TestFraming:
    def test_roundtrip_byte_at_a_time(self):
        frames = [
            protocol.hello_frame("tenant0", "events"),
            protocol.raw_frame(b"\x00\x01\x02"),
            protocol.bye_frame(),
            protocol.ack_frame(7),
            protocol.shed_frame("deadline", 12.5),
            protocol.err_frame("nope"),
            protocol.summary_frame({"frames": 3}),
        ]
        wire = b"".join(frames)
        decoder = protocol.FrameDecoder()
        out = []
        for i in range(len(wire)):
            out.extend(decoder.feed(wire[i:i + 1]))
        assert [f.type for f in out] == [
            protocol.FrameType.HELLO,
            protocol.FrameType.RAW,
            protocol.FrameType.BYE,
            protocol.FrameType.ACK,
            protocol.FrameType.SHED,
            protocol.FrameType.ERR,
            protocol.FrameType.SUMMARY,
        ]
        assert decoder.pending_bytes == 0
        assert out[1].payload == b"\x00\x01\x02"

    def test_corrupted_body_fails_checksum(self):
        frame = bytearray(protocol.ack_frame(3))
        frame[-1] ^= 0xFF
        with pytest.raises(FrameProtocolError, match="checksum"):
            protocol.FrameDecoder().feed(bytes(frame))

    def test_header_rejects_oversized_length(self):
        with pytest.raises(FrameProtocolError, match="length"):
            protocol.split_header(
                (protocol.MAX_FRAME_BYTES + 1).to_bytes(4, "little")
                + b"\x00\x00\x00\x00"
            )

    def test_header_rejects_zero_length(self):
        with pytest.raises(FrameProtocolError, match="length"):
            protocol.split_header(b"\x00" * protocol.HEADER_BYTES)

    def test_encode_rejects_oversized_body(self):
        with pytest.raises(FrameProtocolError, match="exceeds"):
            protocol.encode_frame(
                protocol.FrameType.RAW, b"x" * protocol.MAX_FRAME_BYTES
            )

    def test_decode_body_rejects_empty(self):
        import zlib

        with pytest.raises(FrameProtocolError, match="empty"):
            protocol.decode_body(b"", zlib.crc32(b""))


class TestPayloads:
    def test_events_batch_roundtrip(self):
        events = demo_events("lstm", seed=3, count=40)
        frame = protocol.FrameDecoder().feed(
            protocol.events_frame(events, sequence=9)
        )[0]
        assert frame.type == protocol.FrameType.EVENTS
        decoded = protocol.decode_events_payload(frame.payload)
        assert list(decoded) == list(events)

    def test_events_payload_garbage_rejected(self):
        with pytest.raises(FrameProtocolError, match="undecodable"):
            protocol.decode_events_payload(b"not a trace chunk")

    def test_hello_json_fields(self):
        frame = protocol.FrameDecoder().feed(
            protocol.hello_frame("t1", "raw", frontend="etrace")
        )[0]
        document = protocol.decode_json(frame.payload)
        assert document == {
            "tenant": "t1", "mode": "raw", "frontend": "etrace",
        }

    def test_shed_carries_backoff_hint(self):
        frame = protocol.FrameDecoder().feed(
            protocol.shed_frame("rate_limited", 33.3333333)
        )[0]
        document = protocol.decode_json(frame.payload)
        assert document["reason"] == "rate_limited"
        assert document["retry_after_ms"] == pytest.approx(33.333)

    def test_decode_json_rejects_non_object(self):
        with pytest.raises(FrameProtocolError):
            protocol.decode_json(b"[1, 2]")
        with pytest.raises(FrameProtocolError):
            protocol.decode_json(b"\xff\xfe")
