"""Seeded randomized lossless round trips through the trace port.

Several hundred generated cases drive the byte-exact chain

    PTM encode -> TPIU framing -> TPIU deframe -> PFT decode

and assert that the branch-address and context-ID sequences survive
losslessly.  Unlike the hypothesis suite next door this generator is a
plain seeded ``random.Random`` — the cases (and therefore the suite's
outcome) are identical on every run, on every machine, and under any
``PYTHONHASHSEED``.
"""

import random

import pytest

from repro.coresight.decoder import (
    DecodedBranch,
    DecodedContext,
    DecodedISync,
    PftDecoder,
)
from repro.coresight.ptm import Ptm, PtmConfig
from repro.coresight.tpiu import Tpiu, TpiuDeframer
from repro.workloads.cfg import BranchEvent, BranchKind

SEEDS = (2024, 7, 90125)
CASES_PER_SEED = 120

_KINDS = (
    BranchKind.CONDITIONAL,
    BranchKind.UNCONDITIONAL,
    BranchKind.CALL,
    BranchKind.RETURN,
    BranchKind.INDIRECT,
    BranchKind.SYSCALL,
)


def _random_event(rng: random.Random, cycle: int) -> BranchEvent:
    kind = rng.choice(_KINDS)
    return BranchEvent(
        cycle=cycle,
        source=rng.randrange(1 << 30) << 2,
        target=rng.randrange(1 << 30) << 2,
        kind=kind,
        taken=kind is not BranchKind.CONDITIONAL or rng.random() < 0.6,
    )


def _random_case(rng: random.Random):
    """One stream: branch events interleaved with context switches.

    Returns ``(steps, expected_targets, expected_contexts)`` where each
    step is either ``("event", BranchEvent)`` or ``("context", id)``.
    """
    steps = []
    expected_targets = []
    expected_contexts = []
    cycle = rng.randrange(1 << 20)
    for _ in range(rng.randrange(1, 80)):
        if rng.random() < 0.08:
            context_id = rng.randrange(1, 1 << 32)
            steps.append(("context", context_id))
            expected_contexts.append(context_id)
        else:
            cycle += rng.randrange(1, 500)
            event = _random_event(rng, cycle)
            steps.append(("event", event))
            if not (
                event.kind is BranchKind.CONDITIONAL and not event.taken
            ):
                expected_targets.append(event.target)
    return steps, expected_targets, expected_contexts


def _roundtrip(steps, rng: random.Random):
    """Drive the byte chain; return decoded packet objects in order."""
    ptm = Ptm(
        PtmConfig(sync_interval_bytes=rng.choice((64, 256, 1024)))
    )
    tpiu = Tpiu(sync_period=rng.choice((1, 4, 64)))
    deframer = TpiuDeframer()
    decoder = PftDecoder()
    decoded = []
    chunk = rng.randrange(1, 33)
    framed = bytearray()
    for action, value in steps:
        if action == "event":
            framed += tpiu.push(ptm.feed(value))
        else:
            framed += tpiu.push(ptm.switch_context(value))
    framed += tpiu.push(ptm.flush())
    framed += tpiu.flush()
    # Feed the port capture to the receiver in odd-sized chunks: frame
    # boundaries must not matter to the deframer.
    for start in range(0, len(framed), chunk):
        decoded.extend(
            decoder.feed(deframer.push(bytes(framed[start:start + chunk])))
        )
    return decoded


@pytest.mark.parametrize("seed", SEEDS)
def test_branch_addresses_and_contexts_lossless(seed):
    rng = random.Random(seed)
    for case_index in range(CASES_PER_SEED):
        steps, expected_targets, expected_contexts = _random_case(rng)
        decoded = _roundtrip(steps, rng)
        branches = [p for p in decoded if isinstance(p, DecodedBranch)]
        contexts = [p for p in decoded if isinstance(p, DecodedContext)]
        label = f"seed={seed} case={case_index}"
        assert [b.address for b in branches] == expected_targets, label
        # Periodic syncs *republish* the live context ID, so the lossless
        # property is on the switch sequence: dropping republications
        # must recover exactly the injected switches, in order.
        current = 1  # PtmConfig default context_id
        switches = []
        for packet in contexts:
            if packet.context_id != current:
                switches.append(packet.context_id)
                current = packet.context_id
        assert switches == expected_contexts, label


@pytest.mark.parametrize("seed", SEEDS)
def test_syscall_flags_survive(seed):
    rng = random.Random(seed + 1_000_000)
    for case_index in range(60):
        steps, expected_targets, _ = _random_case(rng)
        expected_syscalls = [
            event.kind is BranchKind.SYSCALL
            for action, event in steps
            if action == "event"
            and not (
                event.kind is BranchKind.CONDITIONAL and not event.taken
            )
        ]
        branches = [
            p for p in _roundtrip(steps, rng)
            if isinstance(p, DecodedBranch)
        ]
        assert [b.is_syscall for b in branches] == expected_syscalls, (
            f"seed={seed} case={case_index}"
        )


@pytest.mark.parametrize("seed", SEEDS)
def test_isync_carries_current_context(seed):
    """Every periodic i-sync republishes the live context ID.

    The i-sync packet carries a single context byte (the full ID rides
    in the context-ID packet), so only the low byte is checked here.
    """
    rng = random.Random(seed + 2_000_000)
    for _ in range(40):
        steps, _, _ = _random_case(rng)
        decoded = _roundtrip(steps, rng)
        current = 1  # PtmConfig default context_id
        for packet in decoded:
            if isinstance(packet, DecodedContext):
                current = packet.context_id
            elif isinstance(packet, DecodedISync):
                assert packet.context_id == current & 0xFF


def test_generator_is_hash_seed_independent():
    """The case generator touches no hash-order-dependent containers;
    pin the first generated case as a tripwire."""
    rng = random.Random(SEEDS[0])
    steps, targets, contexts = _random_case(rng)
    digest = (
        len(steps),
        len(targets),
        len(contexts),
        targets[0] if targets else None,
    )
    assert digest == (24, 23, 0, 2278232200)
