"""Unit tests for the observability primitives (repro.obs)."""

import json

import pytest

from repro.obs import (
    DEFAULT_BUCKETS,
    NULL_REGISTRY,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    to_json,
    to_text,
)
from repro.obs.span import NULL_SPAN, SpanRecord


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("x")
        assert counter.value == 0
        counter.inc()
        counter.inc(41)
        assert counter.value == 42

    def test_memoized_by_name(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.counter("a") is not registry.counter("b")


class TestGauge:
    def test_tracks_high_water(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        gauge.set(3)
        gauge.set(9)
        gauge.set(2)
        assert gauge.value == 2
        assert gauge.high_water == 9


class TestHistogram:
    def test_empty_reports_zero(self):
        hist = Histogram("h")
        assert hist.count == 0
        assert hist.p50 == 0.0
        assert hist.mean == 0.0

    def test_single_observation_is_exact(self):
        hist = Histogram("h")
        hist.observe(137.0)
        assert hist.p50 == pytest.approx(137.0)
        assert hist.p99 == pytest.approx(137.0)
        assert hist.min == 137.0
        assert hist.max == 137.0
        assert hist.mean == pytest.approx(137.0)

    def test_percentiles_of_uniform_range(self):
        hist = Histogram("h")
        for value in range(1, 1001):  # 1..1000 ns, uniform
            hist.observe(float(value))
        # Fixed buckets guarantee accuracy within one bucket; the 1-2-5
        # series keeps that well inside 25% relative error here.
        assert hist.p50 == pytest.approx(500.0, rel=0.25)
        assert hist.p95 == pytest.approx(950.0, rel=0.25)
        assert hist.p99 == pytest.approx(990.0, rel=0.25)
        assert hist.percentile(1.0) == 1000.0
        assert hist.min == 1.0
        assert hist.max == 1000.0
        assert hist.mean == pytest.approx(500.5)

    def test_percentile_clamped_to_observed_range(self):
        hist = Histogram("h")
        hist.observe(42.0)
        hist.observe(43.0)
        for q in (0.0, 0.5, 0.99, 1.0):
            assert 42.0 <= hist.percentile(q) <= 43.0

    def test_overflow_bucket(self):
        hist = Histogram("h", buckets=[10.0, 100.0])
        hist.observe(5000.0)
        assert hist.counts[-1] == 1
        assert hist.p50 == 5000.0  # clamped to max

    def test_rejects_bad_buckets_and_quantiles(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=[100.0, 10.0])
        # Falsy bucket sequences fall back to the default series.
        assert Histogram("h", buckets=[]).bounds == DEFAULT_BUCKETS
        hist = Histogram("h")
        with pytest.raises(ValueError):
            hist.percentile(1.5)

    def test_default_buckets_sorted_and_wide(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)
        assert DEFAULT_BUCKETS[0] == 10.0
        assert DEFAULT_BUCKETS[-1] >= 1e11


class TestSpans:
    def test_span_records_duration(self):
        registry = MetricsRegistry()
        with registry.trace("work") as span:
            span.annotate(items=3)
        assert len(registry.spans) == 1
        record = registry.spans[0]
        assert isinstance(record, SpanRecord)
        assert record.path == "work"
        assert record.depth == 0
        assert record.duration_ns >= 0
        assert record.annotations == {"items": 3}
        hist = registry.histogram("span.work")
        assert hist.count == 1

    def test_nested_spans_join_paths(self):
        registry = MetricsRegistry()
        with registry.trace("outer"):
            with registry.trace("inner"):
                pass
            with registry.trace("inner"):
                pass
        paths = [record.path for record in registry.spans]
        assert paths == ["outer/inner", "outer/inner", "outer"]
        assert registry.spans[0].depth == 1
        assert registry.spans[2].depth == 0
        assert registry.histogram("span.outer/inner").count == 2
        assert registry.span_stack == []

    def test_span_stack_unwinds_on_exception(self):
        registry = MetricsRegistry()
        with pytest.raises(RuntimeError):
            with registry.trace("fails"):
                raise RuntimeError("boom")
        assert registry.span_stack == []
        assert registry.histogram("span.fails").count == 1

    def test_span_cap_counts_drops(self):
        registry = MetricsRegistry()
        registry.max_spans = 2
        for _ in range(5):
            with registry.trace("t"):
                pass
        assert len(registry.spans) == 2
        assert registry.spans_dropped == 3
        # Aggregation keeps going past the cap.
        assert registry.histogram("span.t").count == 5
        assert registry.snapshot()["spans"] == {"recorded": 2, "dropped": 3}


class TestExporters:
    def _populated(self):
        registry = MetricsRegistry()
        registry.counter("ptm.bytes").inc(1234)
        registry.gauge("fifo.depth").set(7)
        registry.histogram("latency_ns").observe(55.0)
        with registry.trace("run"):
            pass
        return registry

    def test_json_round_trips_snapshot(self):
        registry = self._populated()
        assert json.loads(to_json(registry)) == registry.snapshot()
        assert json.loads(to_json(registry, indent=2)) == registry.snapshot()

    def test_snapshot_is_json_native(self):
        snapshot = self._populated().snapshot()
        assert snapshot["counters"]["ptm.bytes"] == 1234
        assert snapshot["gauges"]["fifo.depth"]["high_water"] == 7
        entry = snapshot["histograms"]["latency_ns"]
        assert entry["count"] == 1
        assert entry["p50"] == pytest.approx(55.0)

    def test_text_export_mentions_every_instrument(self):
        text = to_text(self._populated(), title="demo")
        assert "== demo ==" in text
        assert "ptm.bytes" in text
        assert "1,234" in text
        assert "fifo.depth" in text
        assert "latency_ns" in text
        assert "span.run" in text
        assert "1 recorded" in text

    def test_empty_registry_text(self):
        assert "(no metrics recorded)" in to_text(MetricsRegistry())


class TestNullRegistry:
    def test_is_disabled_and_shared(self):
        assert NULL_REGISTRY.enabled is False
        assert isinstance(NULL_REGISTRY, NullRegistry)
        assert MetricsRegistry.enabled is True

    def test_instruments_are_shared_noops(self):
        registry = NullRegistry()
        counter = registry.counter("a")
        assert counter is registry.counter("b")
        counter.inc(100)
        assert counter.value == 0
        gauge = registry.gauge("g")
        gauge.set(5)
        assert gauge.value == 0.0
        assert gauge.high_water == 0.0
        hist = registry.histogram("h")
        hist.observe(1.0)
        assert hist.count == 0

    def test_trace_is_reusable_noop(self):
        registry = NullRegistry()
        span = registry.trace("anything", key="value")
        assert span is NULL_SPAN
        with span as inner:
            inner.annotate(more=1)
        assert registry.spans == []
        assert registry.span_stack == []

    def test_snapshot_always_empty(self):
        registry = NullRegistry()
        registry.counter("a").inc()
        registry.histogram("h").observe(3.0)
        with registry.trace("s"):
            pass
        assert registry.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
            "spans": {"recorded": 0, "dropped": 0},
        }
