"""Evaluation harness: table/figure reproduction invariants.

These are the shape criteria from DESIGN.md — the properties that must
hold even where absolute numbers differ from the paper.
"""

import numpy as np
import pytest

from repro.eval.fig6 import PAPER_GEOMEAN, fig6_geomeans, format_fig6, run_fig6
from repro.eval.fig7 import PAPER_RTAD, PAPER_SW, format_fig7, run_fig7
from repro.eval.report import format_table


class TestReport:
    def test_alignment(self):
        table = format_table(["a", "bb"], [[1, 2.5], ["xx", 30000.0]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert "|" in lines[0]

    def test_title(self):
        table = format_table(["x"], [[1]], title="T")
        assert table.splitlines()[0] == "T"

    def test_float_formats(self):
        table = format_table(["v"], [[0.1234], [12.34], [12345.6]])
        assert "0.123" in table
        assert "12.3" in table
        assert "12,346" in table


class TestFig6:
    def test_twelve_rows(self):
        assert len(run_fig6()) == 12

    def test_ordering_every_benchmark(self):
        for row in run_fig6():
            assert row.rtad_pct < row.sw_sys_pct or row.rtad_pct < 0.06
            assert row.rtad_pct < row.sw_func_pct < row.sw_all_pct

    def test_geomeans_near_paper(self):
        means = fig6_geomeans(run_fig6())
        assert means["RTAD"] == pytest.approx(PAPER_GEOMEAN["RTAD"], rel=0.3)
        assert means["SW_SYS"] == pytest.approx(
            PAPER_GEOMEAN["SW_SYS"], rel=0.3
        )
        assert means["SW_FUNC"] == pytest.approx(
            PAPER_GEOMEAN["SW_FUNC"], rel=0.3
        )
        assert means["SW_ALL"] == pytest.approx(
            PAPER_GEOMEAN["SW_ALL"], rel=0.3
        )

    def test_rtad_under_tenth_percent(self):
        means = fig6_geomeans(run_fig6())
        assert means["RTAD"] < 0.1

    def test_subset_selection(self):
        rows = run_fig6(benchmarks=["gcc", "mcf"])
        assert [r.benchmark for r in rows] == ["403.gcc", "429.mcf"]

    def test_format_contains_paper_row(self):
        assert "paper geomean" in format_fig6(run_fig6())


class TestFig8Smoke:
    """One cheap cell of the Fig. 8 grid (the full grid is a bench)."""

    @pytest.fixture(scope="class")
    def rows(self):
        from repro.eval.fig8 import run_fig8

        return run_fig8(benchmarks=["403.gcc"], models=("elm",), trials=2)

    def test_structure(self, rows):
        assert len(rows) == 1
        row = rows[0]
        assert row.model == "elm"
        assert row.miaow.engine == "MIAOW"
        assert row.ml_miaow.engine == "ML-MIAOW"

    def test_trimmed_engine_faster(self, rows):
        row = rows[0]
        assert row.ml_miaow.mean_latency_us < row.miaow.mean_latency_us
        assert row.speedup > 2.0

    def test_summary_and_format(self, rows):
        from repro.eval.fig8 import fig8_summary, format_fig8

        summary = fig8_summary(rows)
        assert "elm/MIAOW" in summary
        assert "mean_speedup" in summary
        text = format_fig8(rows)
        assert "403.gcc" in text and "paper" in text


class TestCalibratedVsExact:
    """The calibrated fast path must agree with real GPU execution."""

    def test_same_trial_same_outcome(self):
        import numpy as np

        from repro.eval.prep import get_bundle, make_ml_miaow

        bundle = get_bundle("403.gcc", "elm")
        outcomes = {}
        for mode in (True, False):
            soc = bundle.make_soc(make_ml_miaow(), execute_on_gpu=mode)
            result = soc.run_attack_trial(
                normal_ids=bundle.normal_ids[:80],
                mean_interval_us=bundle.mean_interval_us,
                gadget_ids=[int(g) for g in bundle.gadget_pool[:8]],
                onset_index=40,
                seed=9,
            )
            scores = [r.score for r in soc.mcm.records]
            outcomes[mode] = (result, scores)
        exact, fast = outcomes[True], outcomes[False]
        assert exact[0].detected == fast[0].detected
        assert np.allclose(exact[1], fast[1], rtol=1e-3)
        # Latency differs only by the data-dependent unseen-gather tail
        # that calibrated mode approximates with the steady-state cost.
        assert exact[0].detection_latency_us == pytest.approx(
            fast[0].detection_latency_us, rel=0.25
        )


class TestFig7:
    def test_totals_near_paper(self):
        result = run_fig7()
        assert result.sw.total_us == pytest.approx(
            PAPER_SW.total_us, rel=0.05
        )
        assert result.rtad.total_us == pytest.approx(
            PAPER_RTAD.total_us, rel=0.25
        )

    def test_sw_dominated_by_copy(self):
        result = run_fig7()
        assert result.sw.copy_us > result.sw.vectorize_us > result.sw.read_us

    def test_rtad_dominated_by_ptm_buffering(self):
        result = run_fig7()
        assert result.rtad.read_us > result.rtad.copy_us
        assert result.rtad.vectorize_us == pytest.approx(0.016, rel=0.01)

    def test_advantage_over_16us(self):
        result = run_fig7()
        assert result.rtad_advantage_us == pytest.approx(16.4, rel=0.1)

    def test_format_output(self):
        text = format_fig7(run_fig7())
        assert "paper RTAD" in text
        assert "earlier" in text
