"""Deployed MLP autoencoder: the third model on the same engine."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.igm.vector_encoder import InputVector
from repro.mcm.driver import MlMiaowDriver
from repro.mcm.engines import ProtocolConverter
from repro.mcm.mcm import Mcm, McmConfig
from repro.miaow.gpu import Gpu
from repro.ml.detector import ThresholdDetector, roc_auc
from repro.ml.kernels import DeployedMlp
from repro.ml.mlp import MlpAutoencoder


@pytest.fixture(scope="module")
def trained_mlp():
    rng = np.random.default_rng(0)
    centers = rng.random((3, 33))
    rows = centers[rng.integers(0, 3, 500)] + rng.normal(
        0, 0.04, (500, 33)
    )
    model = MlpAutoencoder(input_dim=33, hidden_dim=48, seed=1)
    model.fit(rows, epochs=20)
    return model, rows, rng


class TestDeployedMlp:
    def test_requires_trained_model(self):
        with pytest.raises(ModelError):
            DeployedMlp(MlpAutoencoder(input_dim=8, hidden_dim=4))

    def test_dims_bounded_by_wavefront(self):
        model = MlpAutoencoder(input_dim=100, hidden_dim=8)
        model.trained = True
        with pytest.raises(ModelError):
            DeployedMlp(model)

    def test_gpu_matches_reference(self, trained_mlp):
        model, rows, _ = trained_mlp
        deployment = DeployedMlp(model)
        deployment.load(Gpu())
        for row in rows[:5]:
            x = row.astype(np.float32)
            result = deployment.infer(x)
            assert result.score == pytest.approx(
                deployment.reference_score(x), rel=1e-3, abs=1e-5
            )

    def test_two_sequential_dispatches(self, trained_mlp):
        model, rows, _ = trained_mlp
        deployment = DeployedMlp(model)
        deployment.load(Gpu())
        result = deployment.infer(rows[0].astype(np.float32))
        assert [d.kernel for d in result.dispatches] == [
            "mlp_hidden", "mlp_recon",
        ]

    def test_no_multi_cu_speedup(self, trained_mlp):
        """Both phases are one workgroup: CUs beyond 1 are idle —
        the structural contrast with the ELM."""
        model, rows, _ = trained_mlp
        x = rows[0].astype(np.float32)
        cycles = {}
        for cus in (1, 5):
            deployment = DeployedMlp(model)
            deployment.load(Gpu(num_cus=cus))
            cycles[cus] = deployment.infer(x).total_cycles
        assert cycles[1] == cycles[5]

    def test_separates_anomalies_on_gpu(self, trained_mlp):
        model, rows, rng = trained_mlp
        deployment = DeployedMlp(model)
        deployment.load(Gpu())
        normal = [
            deployment.infer(r.astype(np.float32)).score
            for r in rows[:30]
        ]
        anomalies = [
            deployment.infer(rng.random(33).astype(np.float32)).score
            for _ in range(30)
        ]
        assert roc_auc(normal, anomalies) > 0.9

    def test_feature_shape_checked(self, trained_mlp):
        model, _, _ = trained_mlp
        deployment = DeployedMlp(model)
        deployment.load(Gpu())
        with pytest.raises(ModelError):
            deployment.infer(np.zeros(5, dtype=np.float32))


class TestMlpInMcm:
    def test_full_mcm_path(self, trained_mlp):
        model, rows, _ = trained_mlp
        driver = MlMiaowDriver(DeployedMlp(model), Gpu(),
                               execute_on_gpu=True)
        assert driver.kind == "mlp"
        assert driver.phases.num_dispatches == 2
        detector = ThresholdDetector(0.9).fit(
            model.score(rows[:200])
        )
        mcm = Mcm(
            driver=driver,
            converter=ProtocolConverter("mlp"),
            detector=detector,
            config=McmConfig(fifo_depth=8),
        )
        # Histogram counts summing to the window size, like the VE's
        # HISTOGRAM mode emits.
        counts = np.zeros(33, dtype=np.int64)
        counts[[1, 4, 4, 9]] = [4, 8, 0, 4]
        vector = InputVector(
            values=counts, sequence_number=0,
            trigger_address=0, trigger_cycle=0,
        )
        mcm.push(vector, arrival_ns=0.0)
        records = mcm.finalize()
        assert len(records) == 1
        assert records[0].score > 0

    def test_converter_normalizes(self):
        converter = ProtocolConverter("mlp")
        out = converter.convert(np.array([2, 0, 2]))
        assert out.dtype == np.float32
        assert out.sum() == pytest.approx(1.0)
        assert converter.words_for(out) == 3

    def test_converter_rejects_empty_histogram(self):
        from repro.errors import McmError

        converter = ProtocolConverter("mlp")
        with pytest.raises(McmError):
            converter.convert(np.zeros(4))

    def test_calibrated_mode_matches(self, trained_mlp):
        model, rows, _ = trained_mlp
        exact = MlMiaowDriver(DeployedMlp(model), Gpu(),
                              execute_on_gpu=True)
        fast = MlMiaowDriver(DeployedMlp(model), Gpu(),
                             execute_on_gpu=False)
        x = (rows[0] / rows[0].sum()).astype(np.float32)
        a = exact.run_inference(x)
        b = fast.run_inference(x)
        assert a.score == pytest.approx(b.score, rel=1e-3, abs=1e-6)
        assert a.phases.total_cycles == b.phases.total_cycles