"""Property-based round trips over arbitrary branch event streams."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.coresight.decoder import DecodedAtom, DecodedBranch, PftDecoder
from repro.coresight.driver import CoreSightDriver
from repro.coresight.ptm import Ptm, PtmConfig, encode_trace
from repro.coresight.tpiu import TpiuDeframer
from repro.workloads.cfg import BranchEvent, BranchKind

word_aligned = st.integers(0, (1 << 30) - 1).map(lambda w: w << 2)

branch_events = st.builds(
    BranchEvent,
    cycle=st.integers(0, 1 << 40),
    source=word_aligned,
    target=word_aligned,
    kind=st.sampled_from([
        BranchKind.CONDITIONAL, BranchKind.UNCONDITIONAL,
        BranchKind.CALL, BranchKind.RETURN, BranchKind.INDIRECT,
        BranchKind.SYSCALL,
    ]),
    taken=st.booleans(),
)


def taken_events(events):
    return [
        e for e in events
        if not (e.kind is BranchKind.CONDITIONAL and not e.taken)
    ]


class TestPtmRoundTripProperties:
    @given(st.lists(branch_events, max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_every_taken_branch_recovered(self, events):
        data = encode_trace(events)
        branches = [
            i for i in PftDecoder().feed(data)
            if isinstance(i, DecodedBranch)
        ]
        expected = taken_events(events)
        assert [b.address for b in branches] == [
            e.target for e in expected
        ]

    @given(st.lists(branch_events, max_size=60))
    @settings(max_examples=30, deadline=None)
    def test_atom_count_matches_not_taken(self, events):
        data = encode_trace(events)
        atoms = [
            i for i in PftDecoder().feed(data)
            if isinstance(i, DecodedAtom)
        ]
        not_taken = [
            e for e in events
            if e.kind is BranchKind.CONDITIONAL and not e.taken
        ]
        assert len(atoms) == len(not_taken)
        assert all(not a.taken for a in atoms)

    @given(st.lists(branch_events, min_size=1, max_size=60))
    @settings(max_examples=30, deadline=None)
    def test_syscalls_marked(self, events):
        data = encode_trace(events)
        branches = [
            i for i in PftDecoder().feed(data)
            if isinstance(i, DecodedBranch)
        ]
        expected = taken_events(events)
        for branch, event in zip(branches, expected):
            assert branch.is_syscall == (event.kind is BranchKind.SYSCALL)

    @given(st.lists(branch_events, max_size=40), st.integers(1, 13))
    @settings(max_examples=30, deadline=None)
    def test_full_port_roundtrip_any_chunking(self, events, chunk):
        """PTM -> TPIU -> deframe -> decode across arbitrary frame
        chunk boundaries."""
        driver = CoreSightDriver()
        driver.enable()
        framed = driver.trace_all(events)
        deframer = TpiuDeframer()
        decoder = PftDecoder()
        branches = []
        for start in range(0, len(framed), chunk):
            payload = deframer.push(framed[start:start + chunk])
            branches.extend(
                i for i in decoder.feed(payload)
                if isinstance(i, DecodedBranch)
            )
        expected = taken_events(events)
        assert [b.address for b in branches] == [
            e.target for e in expected
        ]

    @given(st.lists(branch_events, max_size=50))
    @settings(max_examples=20, deadline=None)
    def test_encoding_is_deterministic(self, events):
        assert encode_trace(events) == encode_trace(events)

    @given(st.lists(branch_events, min_size=5, max_size=80))
    @settings(max_examples=20, deadline=None)
    def test_compression_bounded(self, events):
        """Worst case: full address + exception byte + syncs."""
        data = encode_trace(events)
        assert len(data) <= 8 * len(events) + 64
