"""SocManager durability: journaled rounds, checkpoints, recovery.

Small-scale (two tenants, a few hundred events) counterparts of the
``python -m repro.eval recovery`` harness, plus the membership and
health-state contracts that the harness does not cover: readmitting a
removed tenant yields a cleanly reset session, and recovery preserves
a quarantined tenant's quarantine (including its probation progress).
"""

import pytest

from repro.durability import MemoryJournal, RecordKind
from repro.errors import (
    JournalCorruptionError,
    ProcessCrashError,
    SocConfigError,
)
from repro.eval.metrics import build_demo_deployments, demo_events
from repro.eval.recovery import record_signature
from repro.faults.crashpoints import CrashPointInjector
from repro.obs import MetricsRegistry
from repro.soc.manager import SocManager, TenantHealth

KIND = "lstm"
TENANTS = 2
EVENTS = 400
CHUNK_EVENTS = 128  # several TRACE_CHUNK records per tenant per round


def _traces(round_index):
    return {
        f"tenant{i}": demo_events(
            KIND, 0, EVENTS, run_label=f"durab-t{i}-r{round_index}"
        )
        for i in range(TENANTS)
    }


def _manager(**kwargs):
    return SocManager(
        build_demo_deployments(num_tenants=TENANTS, kind=KIND),
        metrics=MetricsRegistry(),
        journal_chunk_events=CHUNK_EVENTS,
        **kwargs,
    )


def _recover(journal, **kwargs):
    return SocManager.recover(
        journal,
        build_demo_deployments(num_tenants=TENANTS, kind=KIND),
        metrics=MetricsRegistry(),
        journal_chunk_events=CHUNK_EVENTS,
        **kwargs,
    )


def _log(manager):
    return {
        runtime.name: [record_signature(r) for r in runtime.mcm.records]
        for runtime in manager.tenants
    }


def _baseline_log(rounds):
    manager = _manager()
    for r in range(rounds):
        manager.run_events(_traces(r))
    return _log(manager)


def test_journaling_is_invisible():
    journal = MemoryJournal()
    journaled = _manager(journal=journal)
    for r in range(2):
        records = journaled.run_events(_traces(r))
        assert any(records.values())  # the round actually inferred
    assert _log(journaled) == _baseline_log(2)
    # Wire protocol: BEGIN, then chunks, then COMMIT, for every round.
    kinds = [record.kind for record in journal.records()]
    assert kinds[0] is RecordKind.ROUND_BEGIN
    assert kinds.count(RecordKind.ROUND_BEGIN) == 2
    assert kinds.count(RecordKind.ROUND_COMMIT) == 2
    chunks_per_trace = (EVENTS + CHUNK_EVENTS - 1) // CHUNK_EVENTS
    assert kinds.count(RecordKind.TRACE_CHUNK) == (
        2 * TENANTS * chunks_per_trace
    )


def test_kill_mid_round_recovers_byte_identical():
    # Learn the per-round crash-site count from a counting-only run.
    counting = CrashPointInjector(kill_at=None)
    probe = _manager(journal=MemoryJournal(), crash_points=counting)
    probe.run_events(_traces(0))
    round_sites = counting.sites_reached

    # Kill inside round 1's journaling: round 0 is committed, round 1
    # is an uncommitted tail that recovery must discard.
    journal = MemoryJournal()
    victim = _manager(
        journal=journal,
        crash_points=CrashPointInjector(kill_at=round_sites + 1),
    )
    victim.run_events(_traces(0))
    with pytest.raises(ProcessCrashError):
        victim.run_events(_traces(1))

    recovered = _recover(journal)
    assert recovered.next_round == 1
    assert recovered.metrics.counter("socmgr.recoveries").value == 1
    assert (
        recovered.metrics.counter("socmgr.rounds_replayed").value == 1
    )
    recovered.run_events(_traces(1))
    assert _log(recovered) == _baseline_log(2)


@pytest.mark.parametrize("dataplane", ["batched", "loop"])
def test_kill_mid_batched_round_recovers_byte_identical(dataplane):
    """Crash inside a round served with cross-tenant batched dispatch.

    Exact-mode drivers + ``batch_limit > 1`` mean the shared engine
    coalesces compatible lane heads into fused dispatches.  Replay is
    deterministic either way: the recovered log must be byte-identical
    to the uninterrupted batched run on both trace dataplanes.
    """
    batched_kwargs = dict(
        num_tenants=TENANTS,
        kind=KIND,
        dataplane=dataplane,
        execute_on_gpu=True,
    )

    def batched_manager(**kwargs):
        return SocManager(
            build_demo_deployments(**batched_kwargs),
            metrics=MetricsRegistry(),
            journal_chunk_events=CHUNK_EVENTS,
            batch_limit=TENANTS,
            **kwargs,
        )

    baseline = batched_manager()
    for r in range(2):
        baseline.run_events(_traces(r))
    counters = baseline.metrics.snapshot()["counters"]
    assert counters["mcm.arbiter.batch.grants"] > 0  # fusion happened

    counting = CrashPointInjector(kill_at=None)
    probe = batched_manager(journal=MemoryJournal(), crash_points=counting)
    probe.run_events(_traces(0))
    round_sites = counting.sites_reached

    journal = MemoryJournal()
    victim = batched_manager(
        journal=journal,
        crash_points=CrashPointInjector(kill_at=round_sites + 1),
    )
    victim.run_events(_traces(0))
    with pytest.raises(ProcessCrashError):
        victim.run_events(_traces(1))

    recovered = SocManager.recover(
        journal,
        build_demo_deployments(**batched_kwargs),
        metrics=MetricsRegistry(),
        journal_chunk_events=CHUNK_EVENTS,
        batch_limit=TENANTS,
    )
    assert recovered.next_round == 1
    recovered.run_events(_traces(1))
    assert _log(recovered) == _log(baseline)


def test_recovery_from_checkpoint_skips_replayed_segments():
    journal = MemoryJournal()
    # Checkpoint after every committed round (interval below one
    # round's event count), so recovery restores state instead of
    # replaying from round zero.
    manager = _manager(journal=journal, checkpoint_interval_events=1)
    manager.run_events(_traces(0))
    manager.run_events(_traces(1))
    kinds = [record.kind for record in journal.records()]
    assert kinds.count(RecordKind.CHECKPOINT) == 2

    recovered = _recover(journal, checkpoint_interval_events=1)
    assert recovered.next_round == 2
    # Nothing after the newest checkpoint: pure restore, no replay.
    assert (
        recovered.metrics.counter("socmgr.rounds_replayed").value == 0
    )
    recovered.run_events(_traces(2))
    assert _log(recovered) == _baseline_log(3)


def test_remove_then_admit_same_deployment_resets_session():
    manager = _manager()
    # A twin manager whose tenant1 idles through round 0 — the state a
    # *cleanly reset* readmitted tenant must be indistinguishable from.
    twin = _manager()
    round0 = _traces(0)
    manager.run_events(round0)
    twin.run_events({"tenant0": round0["tenant0"]})
    assert manager.tenant("tenant1").mcm.records

    deployment = manager.remove_tenant("tenant1")
    assert [r.name for r in manager.tenants] == ["tenant0"]
    runtime = manager.admit_tenant(deployment)
    assert runtime.health is TenantHealth.HEALTHY
    assert runtime.crashes == 0
    assert runtime.mcm.records == []

    round1 = _traces(1)
    manager.run_events(round1)
    twin.run_events(round1)
    assert _log(manager)["tenant1"] == _log(twin)["tenant1"]
    # The readmitted lane restarts its record numbering from zero.
    assert manager.tenant("tenant1").mcm.records[0].sequence_number == 0


def test_remove_last_tenant_refused():
    manager = _manager()
    manager.remove_tenant("tenant1")
    with pytest.raises(SocConfigError):
        manager.remove_tenant("tenant0")


def test_recovery_preserves_quarantine():
    journal = MemoryJournal()
    manager = _manager(journal=journal, checkpoint_interval_events=1)
    manager.run_events(_traces(0))
    manager._quarantine(manager.tenant("tenant1"))
    # A quarantined round: tenant1 is skipped and its probation clock
    # advances; the round's checkpoint must capture both facts.
    records = manager.run_events(_traces(1))
    assert records["tenant1"] == []

    recovered = _recover(journal, checkpoint_interval_events=1)
    runtime = recovered.tenant("tenant1")
    assert runtime.health is TenantHealth.QUARANTINED
    assert (
        runtime._quarantined_rounds
        == manager.tenant("tenant1")._quarantined_rounds
    )
    # From here on, original and recovered evolve identically — the
    # readmission round included.
    for r in (2, 3, 4):
        traces = _traces(r)
        manager.run_events(traces)
        recovered.run_events(traces)
        assert recovered.health() == manager.health()
    assert _log(recovered) == _log(manager)
    assert (
        recovered.tenant("tenant1").health is not TenantHealth.QUARANTINED
    )


def test_recover_with_mismatched_deployments_is_corruption():
    journal = MemoryJournal()
    manager = _manager(journal=journal, checkpoint_interval_events=1)
    manager.run_events(_traces(0))
    with pytest.raises(JournalCorruptionError):
        SocManager.recover(
            journal,
            build_demo_deployments(num_tenants=TENANTS + 1, kind=KIND),
            metrics=MetricsRegistry(),
            checkpoint_interval_events=1,
            journal_chunk_events=CHUNK_EVENTS,
        )
