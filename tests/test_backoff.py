"""The shared retry policy: bounded exponential + deterministic jitter.

:class:`repro.errors.Backoff` is the one "try again later" schedule in
the codebase — the serve front door's SHED retry-after hints and the
fleet supervisor's worker-restart pacing both walk it.  The contract
under test: the schedule is a pure function of ``(seed, label,
attempt)`` (reproducible runs), it respects the equal-jitter envelope
``[(1 - jitter) * full, full]`` with ``full = min(cap, base * mult **
n)``, and distinct labels/seeds de-correlate (that is what jitter is
*for* — no thundering-herd alignment across shards or clients).
"""

import pytest

from repro.errors import Backoff, RtadError
from repro.serve.admission import AdmissionController


def _envelope(policy, attempt):
    full = min(
        policy.cap_s, policy.base_s * policy.multiplier ** attempt
    )
    return full * (1.0 - policy.jitter), full


class TestSchedule:
    def test_deterministic_across_instances(self):
        a = Backoff(base_s=0.05, cap_s=5.0, label="fleet.restart")
        b = Backoff(base_s=0.05, cap_s=5.0, label="fleet.restart")
        assert a.schedule(12) == b.schedule(12)

    def test_equal_jitter_envelope(self):
        policy = Backoff(
            base_s=0.01, cap_s=1.0, multiplier=2.0, jitter=0.5
        )
        for attempt in range(16):
            low, high = _envelope(policy, attempt)
            assert low <= policy.delay(attempt) <= high

    def test_cap_bounds_the_tail(self):
        policy = Backoff(base_s=0.1, cap_s=0.4, multiplier=3.0)
        # Far past the knee the full delay is pinned at the cap.
        for attempt in (5, 10, 50):
            assert policy.delay(attempt) <= 0.4
            assert policy.delay(attempt) >= 0.4 * (1 - policy.jitter)

    def test_zero_jitter_is_the_pure_curve(self):
        policy = Backoff(
            base_s=0.01, cap_s=10.0, multiplier=2.0, jitter=0.0
        )
        assert policy.schedule(5) == [
            pytest.approx(0.01 * 2 ** n) for n in range(5)
        ]

    def test_escalating_floor(self):
        # The jitter floor itself escalates until the cap: a retry
        # storm spreads out without collapsing the backoff guarantee.
        policy = Backoff(base_s=0.01, cap_s=100.0, jitter=0.5)
        floors = [_envelope(policy, n)[0] for n in range(10)]
        assert floors == sorted(floors)
        assert policy.delay(9) >= floors[9] > policy.delay(0)

    def test_labels_decorrelate(self):
        shard0 = Backoff(base_s=0.05, cap_s=5.0, label="shard-0")
        shard1 = Backoff(base_s=0.05, cap_s=5.0, label="shard-1")
        assert shard0.schedule(8) != shard1.schedule(8)

    def test_seeds_decorrelate(self):
        a = Backoff(base_s=0.05, cap_s=5.0, seed=0)
        b = Backoff(base_s=0.05, cap_s=5.0, seed=1)
        assert a.schedule(8) != b.schedule(8)


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(base_s=0.0, cap_s=1.0),
            dict(base_s=-0.1, cap_s=1.0),
            dict(base_s=1.0, cap_s=0.5),
            dict(base_s=0.1, cap_s=1.0, multiplier=0.9),
            dict(base_s=0.1, cap_s=1.0, jitter=1.5),
            dict(base_s=0.1, cap_s=1.0, jitter=-0.1),
        ],
    )
    def test_bad_policy_refused(self, kwargs):
        with pytest.raises(RtadError):
            Backoff(**kwargs)

    def test_negative_attempt_refused(self):
        with pytest.raises(RtadError):
            Backoff(base_s=0.1, cap_s=1.0).delay(-1)


class TestServeHints:
    """The admission controller walks the schedule; admits reset it."""

    def test_consecutive_refusals_escalate(self):
        control = AdmissionController(
            deadline_us=None, max_queued_events=10
        )
        control.admitted(10)  # queue now full: every check refuses
        hints = [control.check(1)[1] for _ in range(6)]
        assert hints == control.backoff.schedule(6)

    def test_admission_resets_the_schedule(self):
        control = AdmissionController(
            deadline_us=None, max_queued_events=10
        )
        control.admitted(10)
        first = control.check(1)[1]
        control.check(1)  # walk one step further
        control.drained(10, elapsed_s=0.001)
        control.admitted(10)  # an admit resets the refusal streak...
        assert control.check(1)[1] == first  # ...back to attempt 0
