"""Unit tests for the write-ahead trace journal (repro.durability).

Covers the record wire format, both backends (memory and
directory-of-segments), crash-reopen semantics (torn tails truncated,
sequence continued), corruption classification (torn tail tolerated
only in the newest segment; a sequence gap is always corruption), and
the TRACE_CHUNK payload codec.
"""

import os

import pytest

from repro.durability import (
    MIN_RECORD_BYTES,
    FileJournal,
    MemoryJournal,
    RecordKind,
    decode_trace_chunk,
    encode_record,
    encode_trace_chunk,
)
from repro.errors import JournalCorruptionError
from repro.obs import MetricsRegistry
from repro.workloads.cfg import BranchEvent, BranchKind


def _events(count, base_cycle=100):
    kinds = (
        BranchKind.CONDITIONAL,
        BranchKind.CALL,
        BranchKind.RETURN,
        BranchKind.SYSCALL,
    )
    return [
        BranchEvent(
            cycle=base_cycle + 7 * i,
            source=0x1000 + 4 * i,
            target=0x2000 + 8 * i,
            kind=kinds[i % len(kinds)],
            taken=(i % 3) != 0,
        )
        for i in range(count)
    ]


def _segment_path(journal):
    return journal._paths[-1]


# ---------------------------------------------------------------------------
# Core append / scan behaviour (backend-agnostic via MemoryJournal)
# ---------------------------------------------------------------------------

def test_append_roundtrip_preserves_kind_payload_sequence():
    journal = MemoryJournal()
    payloads = [b"", b"x", b"hello world", bytes(range(256))]
    for index, payload in enumerate(payloads):
        kind = list(RecordKind)[index % len(RecordKind)]
        assert journal.append(kind, payload) == index
    records = journal.records()
    assert [r.sequence for r in records] == list(range(len(payloads)))
    assert [r.payload for r in records] == payloads
    assert all(isinstance(r.kind, RecordKind) for r in records)
    assert journal.next_sequence == len(payloads)


def test_sequence_continues_across_roll():
    journal = MemoryJournal()
    journal.append(RecordKind.ROUND_BEGIN, b"a")
    journal.roll()
    journal.append(RecordKind.ROUND_COMMIT, b"b")
    journal.roll()
    journal.append(RecordKind.CHECKPOINT, b"c")
    records = journal.records()
    assert [r.sequence for r in records] == [0, 1, 2]
    assert [r.segment for r in records] == [0, 1, 2]


def test_append_torn_does_not_advance_sequence():
    journal = MemoryJournal()
    journal.append(RecordKind.ROUND_BEGIN, b"head")
    before = journal.next_sequence
    journal.append_torn(RecordKind.TRACE_CHUNK, b"payload", keep_bytes=5)
    assert journal.next_sequence == before
    # The torn bytes sit in the last segment but never become a record.
    records = journal.records()
    assert len(records) == 1
    assert records[0].payload == b"head"


def test_append_torn_rejects_full_length_keep():
    journal = MemoryJournal()
    data = encode_record(0, RecordKind.ROUND_BEGIN, b"p")
    with pytest.raises(ValueError):
        journal.append_torn(RecordKind.ROUND_BEGIN, b"p", len(data))
    with pytest.raises(ValueError):
        journal.append_torn(RecordKind.ROUND_BEGIN, b"p", -1)


def test_counters_track_appends_bytes_and_rolls():
    registry = MetricsRegistry()
    journal = MemoryJournal(metrics=registry)
    journal.append(RecordKind.ROUND_BEGIN, b"abc")
    journal.append(RecordKind.ROUND_COMMIT, b"")
    journal.roll()
    assert registry.counter("durability.journal.appends").value == 2
    expected_bytes = len(encode_record(0, RecordKind.ROUND_BEGIN, b"abc"))
    expected_bytes += len(encode_record(1, RecordKind.ROUND_COMMIT, b""))
    assert registry.counter("durability.journal.bytes").value == (
        expected_bytes
    )
    assert registry.counter("durability.journal.rolls").value == 1


# ---------------------------------------------------------------------------
# FileJournal reopen semantics
# ---------------------------------------------------------------------------

def test_file_journal_reopen_resumes_sequence(tmp_path):
    directory = str(tmp_path / "wal")
    journal = FileJournal(directory)
    journal.append(RecordKind.ROUND_BEGIN, b"r0")
    journal.roll()
    journal.append(RecordKind.ROUND_COMMIT, b"r0-done")

    reopened = FileJournal(directory)
    assert reopened.next_sequence == 2
    records = reopened.records()
    assert [(r.sequence, r.payload) for r in records] == [
        (0, b"r0"),
        (1, b"r0-done"),
    ]
    # Appending after reopen continues where the crashed writer stopped.
    assert reopened.append(RecordKind.ROUND_BEGIN, b"r1") == 2


def test_file_journal_reopen_truncates_torn_tail(tmp_path):
    directory = str(tmp_path / "wal")
    registry = MetricsRegistry()
    journal = FileJournal(directory)
    journal.append(RecordKind.ROUND_BEGIN, b"kept")
    journal.append_torn(RecordKind.TRACE_CHUNK, b"never-finished", 9)
    torn_path = _segment_path(journal)
    dirty_size = os.path.getsize(torn_path)

    reopened = FileJournal(directory, metrics=registry)
    assert reopened.next_sequence == 1
    assert [r.payload for r in reopened.records()] == [b"kept"]
    # The torn bytes are physically gone, not just skipped.
    assert os.path.getsize(torn_path) == dirty_size - 9
    assert registry.counter("durability.journal.torn_drops").value == 9


def test_torn_tail_in_old_segment_is_corruption(tmp_path):
    directory = str(tmp_path / "wal")
    journal = FileJournal(directory)
    journal.append(RecordKind.ROUND_BEGIN, b"a")
    first_segment = _segment_path(journal)
    journal.roll()
    journal.append(RecordKind.ROUND_COMMIT, b"b")
    # Garbage after a valid record in a *non-last* segment can never be
    # a torn write (later segments exist, so writes continued).
    with open(first_segment, "ab") as handle:
        handle.write(b"\xff" * 8)
    with pytest.raises(JournalCorruptionError):
        FileJournal(directory)


def test_valid_crc_wrong_sequence_is_corruption(tmp_path):
    directory = str(tmp_path / "wal")
    journal = FileJournal(directory)
    journal.append(RecordKind.ROUND_BEGIN, b"a")
    # A well-formed record with sequence 5 after sequence 0: records
    # 1-4 are missing, which truncation can never explain.
    with open(_segment_path(journal), "ab") as handle:
        handle.write(encode_record(5, RecordKind.ROUND_COMMIT, b"skip"))
    with pytest.raises(JournalCorruptionError):
        FileJournal(directory)


def test_file_and_memory_backends_agree(tmp_path):
    directory = str(tmp_path / "wal")
    memory = MemoryJournal()
    disk = FileJournal(directory)
    for index in range(7):
        kind = list(RecordKind)[index % len(RecordKind)]
        payload = bytes([index]) * index
        memory.append(kind, payload)
        disk.append(kind, payload)
        if index % 3 == 2:
            memory.roll()
            disk.roll()
    key = lambda r: (r.sequence, r.kind, r.payload, r.segment)
    assert list(map(key, memory.records())) == list(
        map(key, disk.records())
    )


def test_empty_journal(tmp_path):
    journal = FileJournal(str(tmp_path / "wal"))
    assert journal.records() == []
    assert journal.next_sequence == 0


# ---------------------------------------------------------------------------
# TRACE_CHUNK codec
# ---------------------------------------------------------------------------

def test_trace_chunk_roundtrip():
    events = _events(23)
    payload = encode_trace_chunk("tenant3", 4, 7, events)
    chunk = decode_trace_chunk(payload)
    assert chunk.tenant == "tenant3"
    assert chunk.round_index == 4
    assert chunk.chunk_index == 7
    assert list(chunk.events) == events


def test_trace_chunk_empty_events():
    chunk = decode_trace_chunk(encode_trace_chunk("t", 0, 0, []))
    assert chunk.events == ()


def test_trace_chunk_palette_is_by_name():
    # The kind palette stores enum *names*; decoding does not depend
    # on BranchKind declaration order.
    events = [
        BranchEvent(1, 0, 4, BranchKind.SYSCALL, True),
        BranchEvent(2, 4, 8, BranchKind.CONDITIONAL, False),
        BranchEvent(3, 8, 12, BranchKind.SYSCALL, True),
    ]
    payload = encode_trace_chunk("t", 0, 0, events)
    header = payload[: payload.find(b"\n")]
    assert b"SYSCALL" in header and b"CONDITIONAL" in header
    assert list(decode_trace_chunk(payload).events) == events


def test_trace_chunk_truncated_body_is_corruption():
    payload = encode_trace_chunk("t", 0, 0, _events(5))
    with pytest.raises(JournalCorruptionError):
        decode_trace_chunk(payload[:-1])
    with pytest.raises(JournalCorruptionError):
        decode_trace_chunk(payload + b"\x00")


def test_trace_chunk_missing_header_is_corruption():
    with pytest.raises(JournalCorruptionError):
        decode_trace_chunk(b"no newline anywhere")


def test_min_record_bytes_matches_empty_record():
    assert len(encode_record(0, RecordKind.ROUND_BEGIN, b"")) == (
        MIN_RECORD_BYTES
    )
