"""ALU semantics: every operation against a numpy reference."""

import struct

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import GpuError, IllegalInstructionError
from repro.miaow.alu import execute, read_scalar, read_vector
from repro.miaow.assembler import float_bits
from repro.miaow.isa import Instruction, Lit, Special, SReg, VReg, WAVE_SIZE
from repro.miaow.memory import GlobalMemory, LocalMemory
from repro.miaow.wavefront import Wavefront


class FakeCu:
    """Just enough compute-unit surface for the handlers."""

    def __init__(self):
        self.global_memory = GlobalMemory(64 * 1024)
        self.local_memory = LocalMemory(16 * 1024)
        self.labels = {}

    def resolve_label(self, label):
        return self.labels[label]


@pytest.fixture
def cu():
    return FakeCu()


@pytest.fixture
def wf():
    return Wavefront(vgprs=16)


def run(wf, cu, op, *operands, target=None):
    execute(wf, Instruction(op=op, operands=tuple(operands), target=target), cu)


def f32(wf, index):
    return wf.v_f32(index).copy()


class TestScalarOps:
    def test_mov(self, wf, cu):
        run(wf, cu, "s_mov_b32", SReg(3), Lit(0xDEADBEEF))
        assert wf.s_u32(3) == 0xDEADBEEF

    def test_add_wraps(self, wf, cu):
        run(wf, cu, "s_mov_b32", SReg(1), Lit(0xFFFFFFFF))
        run(wf, cu, "s_add_i32", SReg(2), SReg(1), Lit(2))
        assert wf.s_u32(2) == 1

    def test_sub_negative(self, wf, cu):
        run(wf, cu, "s_sub_i32", SReg(2), Lit(3), Lit(5))
        assert wf.s_i32(2) == -2

    def test_mul(self, wf, cu):
        run(wf, cu, "s_mul_i32", SReg(2), Lit(7), Lit(6))
        assert wf.s_u32(2) == 42

    def test_logic_ops(self, wf, cu):
        run(wf, cu, "s_and_b32", SReg(2), Lit(0xF0), Lit(0x3C))
        assert wf.s_u32(2) == 0x30
        run(wf, cu, "s_or_b32", SReg(2), Lit(0xF0), Lit(0x0C))
        assert wf.s_u32(2) == 0xFC
        run(wf, cu, "s_xor_b32", SReg(2), Lit(0xFF), Lit(0x0F))
        assert wf.s_u32(2) == 0xF0

    def test_shifts(self, wf, cu):
        run(wf, cu, "s_lshl_b32", SReg(2), Lit(1), Lit(4))
        assert wf.s_u32(2) == 16
        run(wf, cu, "s_lshr_b32", SReg(2), Lit(0x80000000), Lit(31))
        assert wf.s_u32(2) == 1
        run(wf, cu, "s_ashr_i32", SReg(2), Lit(0x80000000), Lit(31))
        assert wf.s_u32(2) == 0xFFFFFFFF

    def test_min_max(self, wf, cu):
        run(wf, cu, "s_min_i32", SReg(2), Lit(0xFFFFFFFE), Lit(5))
        assert wf.s_i32(2) == -2
        run(wf, cu, "s_max_i32", SReg(2), Lit(0xFFFFFFFE), Lit(5))
        assert wf.s_i32(2) == 5

    @pytest.mark.parametrize(
        "op,a,b,expected",
        [
            ("s_cmp_eq_i32", 5, 5, True),
            ("s_cmp_lg_i32", 5, 5, False),
            ("s_cmp_lt_i32", -1 & 0xFFFFFFFF, 0, True),
            ("s_cmp_le_i32", 3, 3, True),
            ("s_cmp_gt_i32", 4, 3, True),
            ("s_cmp_ge_i32", 2, 3, False),
        ],
    )
    def test_compares_signed(self, wf, cu, op, a, b, expected):
        run(wf, cu, op, Lit(a), Lit(b))
        assert wf.scc is expected

    def test_s_load(self, wf, cu):
        cu.global_memory.store_u32(0x100, 0xCAFE)
        run(wf, cu, "s_load_dword", SReg(2), Lit(0x100), Lit(0))
        assert wf.s_u32(2) == 0xCAFE


class TestBranches:
    def test_unconditional(self, wf, cu):
        cu.labels["x"] = 17
        run(wf, cu, "s_branch", target="x")
        assert wf.pc == 17

    def test_scc_variants(self, wf, cu):
        cu.labels["x"] = 9
        wf.scc = True
        run(wf, cu, "s_cbranch_scc0", target="x")
        assert wf.pc == 0
        run(wf, cu, "s_cbranch_scc1", target="x")
        assert wf.pc == 9

    def test_vcc_variants(self, wf, cu):
        cu.labels["x"] = 4
        wf.vcc[:] = False
        run(wf, cu, "s_cbranch_vccz", target="x")
        assert wf.pc == 4
        wf.pc = 0
        wf.vcc[3] = True
        run(wf, cu, "s_cbranch_vccnz", target="x")
        assert wf.pc == 4

    def test_execz(self, wf, cu):
        cu.labels["x"] = 2
        wf.exec_mask[:] = False
        run(wf, cu, "s_cbranch_execz", target="x")
        assert wf.pc == 2

    def test_endpgm_sets_done(self, wf, cu):
        run(wf, cu, "s_endpgm")
        assert wf.done


class TestVectorFloat:
    def setup_lanes(self, wf, index, values):
        wf.vgpr[index] = np.asarray(values, dtype=np.float32).view(np.uint32)

    def test_add(self, wf, cu):
        a = np.linspace(-4, 4, WAVE_SIZE).astype(np.float32)
        self.setup_lanes(wf, 1, a)
        run(wf, cu, "v_add_f32", VReg(2), VReg(1), VReg(1))
        assert np.allclose(f32(wf, 2), a + a)

    def test_mac_accumulates(self, wf, cu):
        a = np.full(WAVE_SIZE, 2.0, np.float32)
        b = np.full(WAVE_SIZE, 3.0, np.float32)
        self.setup_lanes(wf, 1, a)
        self.setup_lanes(wf, 2, b)
        self.setup_lanes(wf, 3, np.ones(WAVE_SIZE, np.float32))
        run(wf, cu, "v_mac_f32", VReg(3), VReg(1), VReg(2))
        assert np.allclose(f32(wf, 3), 7.0)

    def test_exec_mask_gates_writes(self, wf, cu):
        self.setup_lanes(wf, 1, np.zeros(WAVE_SIZE, np.float32))
        wf.exec_mask[:] = False
        wf.exec_mask[5] = True
        run(wf, cu, "v_add_f32", VReg(1), Lit(float_bits(1.0)),
            Lit(float_bits(2.0)))
        out = f32(wf, 1)
        assert out[5] == 3.0
        assert (out[np.arange(WAVE_SIZE) != 5] == 0).all()

    def test_scalar_broadcast_source(self, wf, cu):
        wf.set_sgpr(4, float_bits(2.5))
        self.setup_lanes(wf, 1, np.arange(WAVE_SIZE, dtype=np.float32))
        run(wf, cu, "v_mul_f32", VReg(2), VReg(1), SReg(4))
        assert np.allclose(f32(wf, 2), np.arange(WAVE_SIZE) * 2.5)

    def test_min_max(self, wf, cu):
        a = np.linspace(-2, 2, WAVE_SIZE).astype(np.float32)
        self.setup_lanes(wf, 1, a)
        run(wf, cu, "v_max_f32", VReg(2), VReg(1), Lit(float_bits(0.0)))
        assert np.allclose(f32(wf, 2), np.maximum(a, 0))
        run(wf, cu, "v_min_f32", VReg(2), VReg(1), Lit(float_bits(0.0)))
        assert np.allclose(f32(wf, 2), np.minimum(a, 0))

    @pytest.mark.parametrize(
        "op,ref",
        [
            ("v_exp_f32", np.exp2),
            ("v_log_f32", np.log2),
            ("v_rcp_f32", lambda x: 1.0 / x),
            ("v_rsq_f32", lambda x: 1.0 / np.sqrt(x)),
            ("v_sqrt_f32", np.sqrt),
        ],
    )
    def test_transcendentals_base2(self, wf, cu, op, ref):
        x = np.linspace(0.25, 4.0, WAVE_SIZE).astype(np.float32)
        self.setup_lanes(wf, 1, x)
        run(wf, cu, op, VReg(2), VReg(1))
        assert np.allclose(f32(wf, 2), ref(x.astype(np.float64)), rtol=1e-6)

    def test_cndmask_selects_by_vcc(self, wf, cu):
        wf.vcc[:] = False
        wf.vcc[::2] = True
        run(wf, cu, "v_cndmask_b32", VReg(1), Lit(float_bits(1.0)),
            Lit(float_bits(9.0)))
        out = f32(wf, 1)
        assert (out[::2] == 9.0).all()
        assert (out[1::2] == 1.0).all()

    def test_cmp_writes_vcc_under_exec(self, wf, cu):
        self.setup_lanes(wf, 1, np.linspace(-1, 1, WAVE_SIZE))
        wf.exec_mask[:] = True
        wf.exec_mask[0] = False
        run(wf, cu, "v_cmp_gt_f32", VReg(1), Lit(float_bits(0.0)))
        assert not wf.vcc[0]
        assert wf.vcc[-1]


class TestVectorInteger:
    def test_add_sub_mul(self, wf, cu):
        wf.vgpr[1] = np.arange(WAVE_SIZE, dtype=np.uint32)
        run(wf, cu, "v_add_i32", VReg(2), VReg(1), Lit(10))
        assert (wf.v_u32(2) == np.arange(WAVE_SIZE) + 10).all()
        run(wf, cu, "v_sub_i32", VReg(2), VReg(1), Lit(1))
        assert wf.v_i32(2)[0] == -1
        run(wf, cu, "v_mul_lo_i32", VReg(2), VReg(1), Lit(3))
        assert (wf.v_u32(2) == np.arange(WAVE_SIZE) * 3).all()

    def test_rev_shifts_take_amount_first(self, wf, cu):
        wf.vgpr[1] = np.full(WAVE_SIZE, 1, np.uint32)
        run(wf, cu, "v_lshlrev_b32", VReg(2), Lit(4), VReg(1))
        assert (wf.v_u32(2) == 16).all()
        wf.vgpr[1] = np.full(WAVE_SIZE, 0x80000000, np.uint32)
        run(wf, cu, "v_lshrrev_b32", VReg(2), Lit(31), VReg(1))
        assert (wf.v_u32(2) == 1).all()
        run(wf, cu, "v_ashrrev_i32", VReg(2), Lit(31), VReg(1))
        assert (wf.v_u32(2) == 0xFFFFFFFF).all()

    def test_min_max_signed(self, wf, cu):
        wf.vgpr[1] = np.array(
            [0xFFFFFFFE] * WAVE_SIZE, dtype=np.uint32
        )  # -2
        run(wf, cu, "v_min_i32", VReg(2), VReg(1), Lit(1))
        assert (wf.v_i32(2) == -2).all()
        run(wf, cu, "v_max_i32", VReg(2), VReg(1), Lit(1))
        assert (wf.v_i32(2) == 1).all()

    def test_conversions(self, wf, cu):
        wf.vgpr[1] = np.array([0xFFFFFFFF] * WAVE_SIZE, np.uint32)  # -1
        run(wf, cu, "v_cvt_f32_i32", VReg(2), VReg(1))
        assert (f32(wf, 2) == -1.0).all()
        run(wf, cu, "v_cvt_i32_f32", VReg(3), VReg(2))
        assert (wf.v_i32(3) == -1).all()

    def test_readfirstlane(self, wf, cu):
        wf.vgpr[1] = np.arange(WAVE_SIZE, dtype=np.uint32)
        wf.exec_mask[:] = False
        wf.exec_mask[7] = True
        run(wf, cu, "v_readfirstlane_b32", SReg(2), VReg(1))
        assert wf.s_u32(2) == 7


class TestMemoryOps:
    def test_flat_load_store_roundtrip(self, wf, cu):
        addresses = (np.arange(WAVE_SIZE, dtype=np.uint32) * 4) + 0x200
        wf.vgpr[1] = addresses
        wf.vgpr[2] = np.arange(WAVE_SIZE, dtype=np.uint32) + 100
        run(wf, cu, "flat_store_dword", VReg(1), VReg(2))
        run(wf, cu, "flat_load_dword", VReg(3), VReg(1))
        assert (wf.v_u32(3) == wf.v_u32(2)).all()

    def test_flat_respects_exec(self, wf, cu):
        addresses = (np.arange(WAVE_SIZE, dtype=np.uint32) * 4) + 0x400
        wf.vgpr[1] = addresses
        wf.vgpr[2] = np.full(WAVE_SIZE, 7, np.uint32)
        wf.exec_mask[:] = False
        wf.exec_mask[0] = True
        run(wf, cu, "flat_store_dword", VReg(1), VReg(2))
        assert cu.global_memory.load_u32(0x400) == 7
        assert cu.global_memory.load_u32(0x404) == 0

    def test_ds_read_write(self, wf, cu):
        addresses = (np.arange(WAVE_SIZE, dtype=np.uint32) * 4)
        wf.vgpr[1] = addresses
        wf.vgpr[2] = np.arange(WAVE_SIZE, dtype=np.uint32) * 11
        run(wf, cu, "ds_write_b32", VReg(1), VReg(2))
        run(wf, cu, "ds_read_b32", VReg(3), VReg(1))
        assert (wf.v_u32(3) == wf.v_u32(2)).all()

    def test_ds_swizzle_butterfly(self, wf, cu):
        wf.vgpr[1] = np.arange(WAVE_SIZE, dtype=np.uint32)
        run(wf, cu, "ds_swizzle_b32", VReg(2), VReg(1), Lit(1))
        expected = np.arange(WAVE_SIZE) ^ 1
        assert (wf.v_u32(2) == expected).all()

    def test_unknown_opcode_raises(self, wf, cu):
        with pytest.raises(IllegalInstructionError):
            execute(wf, Instruction(op="v_made_up"), cu)


class TestOperandAccess:
    def test_read_scalar_special(self, wf):
        wf.scc = True
        assert read_scalar(wf, Special("scc")) == 1

    def test_read_scalar_rejects_vreg(self, wf):
        with pytest.raises(GpuError):
            read_scalar(wf, VReg(0))

    def test_read_vector_broadcast(self, wf):
        out = read_vector(wf, Lit(0x42))
        assert out.shape == (WAVE_SIZE,)
        assert (out == 0x42).all()
