"""Batched arbitration: coalescing is invisible except in throughput.

Property tests over :class:`ArbitratedMcm` with ``batch_limit > 1``:
records (and therefore the whole simulated timeline) must be identical
to unbatched arbitration, per-tenant FIFO order must hold, coalescing
must never cross kernel shapes / ineligible lanes / dual-run voters,
and the watchdog cancellation path must behave exactly as it does with
batching off.
"""

import numpy as np
import pytest

from repro.errors import McmError
from repro.faults import FaultKind, FaultPlan, FaultSpec, ServiceFaultInjector
from repro.igm.vector_encoder import InputVector
from repro.mcm.arbiter import ArbitratedMcm
from repro.mcm.driver import MlMiaowDriver
from repro.mcm.engines import ProtocolConverter
from repro.mcm.mcm import Mcm, McmConfig
from repro.miaow.gpu import Gpu
from repro.ml.kernels import DeployedElm, DeployedLstm
from repro.obs import MetricsRegistry


def vector(values, seq=0, cycle=0):
    return InputVector(
        values=np.asarray(values, dtype=np.int64),
        sequence_number=seq,
        trigger_address=0x1000,
        trigger_cycle=cycle,
    )


def lstm_lane(model, gpu, metrics=None, dual_run=False):
    return Mcm(
        driver=MlMiaowDriver(DeployedLstm(model), gpu),
        converter=ProtocolConverter("lstm"),
        config=McmConfig(fifo_depth=32, dual_run=dual_run),
        metrics=metrics or MetricsRegistry(),
    )


def elm_lane(model, dictionary, window, gpu, metrics=None):
    return Mcm(
        driver=MlMiaowDriver(DeployedElm(model, dictionary, window), gpu),
        converter=ProtocolConverter("elm", dictionary),
        config=McmConfig(fifo_depth=32),
        metrics=metrics or MetricsRegistry(),
    )


def random_lstm_traffic(arb, vocabulary, num_lanes, steps, seed=11):
    """Poisson-ish pushes over all lanes; returns per-lane sequences."""
    rng = np.random.default_rng(seed)
    pushed = [[] for _ in range(num_lanes)]
    now = 0.0
    sequence = [0] * num_lanes
    for _ in range(steps):
        lane = int(rng.integers(0, num_lanes))
        branch = int(rng.integers(0, vocabulary))
        arb.push(lane, vector([branch], seq=sequence[lane]), now)
        pushed[lane].append(sequence[lane])
        sequence[lane] += 1
        now += float(rng.integers(0, 40_000))
    return pushed


class TestTimelineParity:
    def _run(self, tiny_lstm, batch_limit, steps=48):
        registry = MetricsRegistry()
        gpu = Gpu(num_cus=4, fast_path=True, name="shared")
        lanes = [lstm_lane(tiny_lstm, gpu, registry) for _ in range(5)]
        arb = ArbitratedMcm(
            lanes, metrics=registry, batch_limit=batch_limit
        )
        pushed = random_lstm_traffic(
            arb, tiny_lstm.vocabulary_size, len(lanes), steps
        )
        arb.finalize()
        return arb, registry, pushed, [lane.records for lane in lanes]

    def test_records_identical_to_unbatched(self, tiny_lstm):
        _, _, _, unbatched = self._run(tiny_lstm, batch_limit=1)
        arb, registry, _, batched = self._run(tiny_lstm, batch_limit=4)
        assert unbatched == batched
        counters = registry.snapshot()["counters"]
        assert counters["mcm.arbiter.batch.grants"] > 0
        assert (
            counters["mcm.arbiter.batch.members"]
            >= 2 * counters["mcm.arbiter.batch.grants"]
        )

    def test_per_tenant_fifo_order_preserved(self, tiny_lstm):
        _, _, pushed, records = self._run(tiny_lstm, batch_limit=8)
        for lane_pushed, lane_records in zip(pushed, records):
            assert [r.sequence_number for r in lane_records] == lane_pushed
            starts = [r.start_ns for r in lane_records]
            assert starts == sorted(starts)

    def test_drain_histogram_sums_to_total_serves(self, tiny_lstm):
        _, registry, _, records = self._run(tiny_lstm, batch_limit=4)
        histogram = registry.snapshot()["histograms"][
            "mcm.drain.batch_vectors"
        ]
        assert histogram["sum"] == sum(len(r) for r in records)


class TestCoalescingBoundaries:
    def test_never_batches_across_kernel_shapes(
        self, tiny_lstm, tiny_elm, tiny_dictionary, syscall_dataset
    ):
        registry = MetricsRegistry()
        gpu = Gpu(num_cus=4, fast_path=True, name="shared")
        window = syscall_dataset.train_windows.shape[1]
        lanes = [
            lstm_lane(tiny_lstm, gpu, registry),
            elm_lane(tiny_elm, tiny_dictionary, window, gpu, registry),
        ]
        arb = ArbitratedMcm(lanes, metrics=registry, batch_limit=4)
        window_values = syscall_dataset.train_windows[0]
        for seq in range(4):
            arb.push(0, vector([seq % 8], seq=seq), 0.0)
            arb.push(1, vector(window_values, seq=seq), 0.0)
        arb.finalize()
        counters = registry.snapshot()["counters"]
        # one LSTM lane + one ELM lane: no compatible partner exists
        assert counters["mcm.arbiter.batch.grants"] == 0
        assert len(lanes[0].records) == 4
        assert len(lanes[1].records) == 4

    def test_ineligible_lane_never_joins_a_batch(self, tiny_lstm):
        def run(ineligible):
            registry = MetricsRegistry()
            gpu = Gpu(num_cus=4, fast_path=True, name="shared")
            lanes = [lstm_lane(tiny_lstm, gpu, registry) for _ in range(3)]
            arb = ArbitratedMcm(lanes, metrics=registry, batch_limit=4)
            for index in ineligible:
                arb.set_batch_eligible(index, False)
            for seq in range(4):
                for lane in range(3):
                    arb.push(lane, vector([lane + seq], seq=seq), 0.0)
            arb.finalize()
            counters = registry.snapshot()["counters"]
            return [lane.records for lane in lanes], counters

        all_records, counters = run(ineligible=())
        assert counters["mcm.arbiter.batch.grants"] > 0
        # quarantined-from-batching lanes serve singly but identically
        solo_records, solo_counters = run(ineligible=(0, 1, 2))
        assert solo_counters["mcm.arbiter.batch.grants"] == 0
        assert solo_records == all_records
        # with one eligible lane left there is still no one to pair with
        _, pair_counters = run(ineligible=(0, 1))
        assert pair_counters["mcm.arbiter.batch.grants"] == 0

    def test_dual_run_lane_is_excluded(self, tiny_lstm):
        registry = MetricsRegistry()
        gpu = Gpu(num_cus=4, fast_path=True, name="shared")
        lanes = [
            lstm_lane(tiny_lstm, gpu, registry, dual_run=True),
            lstm_lane(tiny_lstm, gpu, registry, dual_run=True),
        ]
        arb = ArbitratedMcm(lanes, metrics=registry, batch_limit=4)
        for seq in range(3):
            arb.push(0, vector([seq], seq=seq), 0.0)
            arb.push(1, vector([seq], seq=seq), 0.0)
        arb.finalize()
        counters = registry.snapshot()["counters"]
        assert counters["mcm.arbiter.batch.grants"] == 0
        # dual-run voting still happened on every serve
        assert counters["mcm.dual_run.runs"] == 6
        for lane in lanes:
            assert all(r.divergent is False for r in lane.records)

    def test_calibrated_lanes_never_batch(self, tiny_lstm):
        registry = MetricsRegistry()
        gpu = Gpu(name="shared")
        lanes = [
            Mcm(
                driver=MlMiaowDriver(
                    DeployedLstm(tiny_lstm), gpu, execute_on_gpu=False
                ),
                converter=ProtocolConverter("lstm"),
                metrics=registry,
            )
            for _ in range(2)
        ]
        arb = ArbitratedMcm(lanes, metrics=registry, batch_limit=4)
        assert lanes[0].driver.batch_key(0) is None
        for seq in range(3):
            arb.push(0, vector([seq], seq=seq), 0.0)
            arb.push(1, vector([seq], seq=seq), 0.0)
        arb.finalize()
        counters = registry.snapshot()["counters"]
        assert counters["mcm.arbiter.batch.grants"] == 0
        assert len(lanes[0].records) == 3

    def test_batch_limit_validation_and_membership(self, tiny_lstm):
        gpu = Gpu(num_cus=2, fast_path=True, name="shared")
        lanes = [lstm_lane(tiny_lstm, gpu) for _ in range(2)]
        with pytest.raises(McmError):
            ArbitratedMcm(lanes, batch_limit=0)
        arb = ArbitratedMcm(lanes, batch_limit=4)
        with pytest.raises(McmError):
            arb.set_batch_eligible(9, True)
        third = lstm_lane(tiny_lstm, gpu)
        arb.add_lane(third)
        assert arb.batch_eligible == [True, True, True]
        arb.set_batch_eligible(2, False)
        arb.remove_lane(0)
        assert arb.batch_eligible == [True, False]


class TestWatchdogWithBatching:
    def _hang_plan(self, rate=1.0, seed=3):
        return FaultPlan(
            seed=seed, specs=(FaultSpec(FaultKind.MCM_HANG, rate=rate),)
        )

    def _run(self, tiny_lstm, batch_limit):
        registry = MetricsRegistry()
        gpu = Gpu(num_cus=4, fast_path=True, name="shared")
        lanes = [lstm_lane(tiny_lstm, gpu, registry) for _ in range(4)]
        faults = [ServiceFaultInjector(self._hang_plan()), None, None, None]
        arb = ArbitratedMcm(
            lanes,
            metrics=registry,
            deadline_us=100.0,
            service_faults=faults,
            batch_limit=batch_limit,
        )
        rng = np.random.default_rng(9)
        now = 0.0
        sequence = [0] * 4
        for _ in range(24):
            lane = int(rng.integers(0, 4))
            arb.push(
                lane,
                vector([int(rng.integers(0, 16))], seq=sequence[lane]),
                now,
            )
            sequence[lane] += 1
            now += float(rng.integers(0, 30_000))
        arb.finalize()
        return arb, [lane.records for lane in lanes], lanes

    def test_cancellation_matches_unbatched_and_resets_cleanly(
        self, tiny_lstm
    ):
        arb1, records1, lanes1 = self._run(tiny_lstm, batch_limit=1)
        arb4, records4, lanes4 = self._run(tiny_lstm, batch_limit=4)
        assert records1 == records4
        assert arb1.watchdog_trips == arb4.watchdog_trips
        assert arb4.watchdog_trips[0] > 0
        # every cancelled head on the hanging lane produced no record,
        # and the healthy lanes' sessions were untouched by the aborts
        assert lanes4[0].cancelled == arb4.watchdog_trips[0]
        assert records4[0] == []
        assert not arb4.hung
        # the batch machinery still fused the healthy lanes
        counters = arb4.metrics.snapshot()["counters"]
        assert counters["mcm.arbiter.batch.grants"] > 0

    def test_session_reset_discards_pending_batch_results(self, tiny_lstm):
        registry = MetricsRegistry()
        gpu = Gpu(num_cus=4, fast_path=True, name="shared")
        lanes = [lstm_lane(tiny_lstm, gpu, registry) for _ in range(3)]
        arb = ArbitratedMcm(lanes, metrics=registry, batch_limit=4)
        for lane in range(3):
            arb.push(lane, vector([lane], seq=0), 0.0)
        arb.finalize()
        baseline = [len(lane.records) for lane in lanes]
        arb.reset_session()
        assert arb._prepared == [None, None, None]
        # a fresh round after the reset serves (and can fuse) normally
        for lane in range(3):
            arb.push(lane, vector([lane + 1], seq=1), 0.0)
        arb.finalize()
        assert [len(lane.records) for lane in lanes] == [
            n + 1 for n in baseline
        ]
