"""Power/energy model."""

import numpy as np
import pytest

from repro.errors import RtadError
from repro.miaow.coverage import CoverageCollector
from repro.miaow.gpu import Gpu
from repro.miaow.runtime import GpuRuntime
from repro.synthesis.library import AreaVector
from repro.synthesis.power import (
    DYNAMIC_ENERGY_PJ,
    EnergyReport,
    PowerModel,
)

AREA = AreaVector(luts=10_000, ffs=5_000)


class TestEnergyReport:
    def report(self, cycles=500, dynamic=1_000.0):
        return EnergyReport(
            engine="x", elapsed_cycles=cycles, clock_hz=50e6,
            dynamic_pj=dynamic, static_area_lutff=15_000,
        )

    def test_elapsed_seconds(self):
        assert self.report(cycles=50).elapsed_s == pytest.approx(1e-6)

    def test_static_scales_with_time(self):
        short = self.report(cycles=100)
        long = self.report(cycles=1_000)
        assert long.static_pj == pytest.approx(10 * short.static_pj)

    def test_total_is_sum(self):
        r = self.report()
        assert r.total_pj == pytest.approx(r.dynamic_pj + r.static_pj)

    def test_str_mentions_engine(self):
        assert "x:" in str(self.report())


class TestPowerModel:
    def test_explicit_counts(self):
        model = PowerModel(engine_area=AREA)
        report = model.energy_of_run(
            Gpu(), elapsed_cycles=100,
            opcode_counts={"v_add_f32": 10, "s_mov_b32": 5},
        )
        expected = (
            10 * DYNAMIC_ENERGY_PJ["valu"] + 5 * DYNAMIC_ENERGY_PJ["salu"]
        )
        assert report.dynamic_pj == pytest.approx(expected)

    def test_counts_from_coverage(self):
        collector = CoverageCollector("run")
        gpu = Gpu(coverage=collector)
        runtime = GpuRuntime(gpu)
        kernel = runtime.build_program(
            "v_add_f32 v1, v1, v1\nv_add_f32 v1, v1, v1\ns_endpgm\n"
        )
        result = runtime.launch(kernel, 1)
        model = PowerModel(engine_area=AREA)
        report = model.energy_of_run(gpu, result.cycles)
        expected = (
            2 * DYNAMIC_ENERGY_PJ["valu"]
            + DYNAMIC_ENERGY_PJ["special"]
        )
        assert report.dynamic_pj == pytest.approx(expected)

    def test_requires_counts_or_coverage(self):
        model = PowerModel(engine_area=AREA)
        with pytest.raises(RtadError):
            model.energy_of_run(Gpu(), elapsed_cycles=10)

    def test_unknown_opcode_rejected(self):
        model = PowerModel(engine_area=AREA)
        with pytest.raises(RtadError):
            model.energy_of_run(
                Gpu(), 10, opcode_counts={"v_quux": 1}
            )

    def test_bad_clock(self):
        with pytest.raises(RtadError):
            PowerModel(engine_area=AREA, clock_hz=0)

    def test_smaller_area_leaks_less(self):
        big = PowerModel(engine_area=AreaVector(luts=100_000, ffs=0))
        small = PowerModel(engine_area=AreaVector(luts=10_000, ffs=0))
        counts = {"s_mov_b32": 1}
        r_big = big.energy_of_run(Gpu(), 1_000, counts)
        r_small = small.energy_of_run(Gpu(), 1_000, counts)
        assert r_small.static_pj < r_big.static_pj
        assert r_small.dynamic_pj == r_big.dynamic_pj
