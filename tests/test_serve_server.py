"""End-to-end front-door behaviour over the in-memory transport.

Each test drives an :class:`IngestServer` with a controllable clock
(``clock_ns`` reads a mutable cell), so staleness and rate limiting
are exercised deterministically without sleeping.
"""

import asyncio

import pytest

from repro.errors import ServeError
from repro.eval.metrics import build_demo_manager, demo_events
from repro.frontends import get_frontend
from repro.serve import IngestServer, ServeClient, ServeConfig
from repro.serve import protocol


def _server(num_tenants=2, config=None, clock=None, **kwargs):
    manager = build_demo_manager(num_tenants, kind="lstm", seed=0, **kwargs)
    clock = clock if clock is not None else {"ns": 0}
    server = IngestServer(
        manager,
        config or ServeConfig(),
        clock_ns=lambda: clock["ns"],
    )
    return server, clock


def _events(count=48, seed=0, label=None):
    return demo_events("lstm", seed, count, run_label=label)


class TestSessions:
    def test_events_session_to_verdicts(self):
        async def scenario():
            server, _ = _server()
            client = ServeClient.local(server)
            await client.hello("tenant0")
            response = await client.send_events(_events(60))
            assert response["frame_type"] == protocol.FrameType.ACK
            assert response["accepted_events"] == 60
            served = server.drain_once()
            summary = await client.bye()
            await server.stop()
            return server, served, summary

        server, served, summary = asyncio.run(scenario())
        assert served == 60
        assert summary["admitted"] == 1 and summary["shed"] == 0
        assert server.counts["serve.rounds"] == 1
        assert server.counts["serve.verdicts"] > 0
        assert server.counts["serve.connections.opened"] == 1
        assert server.counts["serve.connections.closed"] == 1

    def test_unknown_tenant_refused(self):
        async def scenario():
            server, _ = _server()
            client = ServeClient.local(server)
            with pytest.raises(ServeError, match="HELLO refused"):
                await client.hello("nobody")
            await server.stop()

        asyncio.run(scenario())

    @pytest.mark.parametrize("frontend", ["coresight", "etrace"])
    def test_raw_session_decodes_server_side(self, frontend):
        async def scenario():
            server, _ = _server(
                frontends={"tenant0": frontend, "tenant1": frontend}
            )
            driver = get_frontend(frontend).create_driver()
            driver.enable()
            stream = driver.trace_all(_events(80)) + driver.flush()
            client = ServeClient.local(server)
            await client.hello("tenant0", mode="raw", frontend=frontend)
            response = await client.send_raw(stream)
            await client.bye()
            await server.stop()
            return server, response

        server, response = asyncio.run(scenario())
        assert response["frame_type"] == protocol.FrameType.ACK
        assert response["accepted_events"] > 0
        assert server.counts["serve.frames.raw"] == 1
        assert server.counts["serve.admitted.events"] > 0

    def test_corrupt_frame_refused_but_session_survives(self):
        async def scenario():
            server, _ = _server()
            client = ServeClient.local(server)
            await client.hello("tenant0")
            good = protocol.events_frame(_events(20), sequence=1)
            corrupted = bytearray(good)
            corrupted[-1] ^= 0xFF  # body byte: CRC catches it
            client.writer.write(bytes(corrupted))
            await client.writer.drain()
            response = await client._recv()
            assert response.type == protocol.FrameType.ERR
            # Framing survived: the next frame on the same session is
            # admitted normally.
            follow_up = await client.send_events(_events(20))
            await client.bye()
            await server.stop()
            return server, follow_up

        server, follow_up = asyncio.run(scenario())
        assert follow_up["frame_type"] == protocol.FrameType.ACK
        assert server.counts["serve.decode.errors"] == 1
        assert server.counts["serve.connections.closed"] == 1

    def test_bad_header_closes_the_session(self):
        async def scenario():
            server, _ = _server()
            client = ServeClient.local(server)
            await client.hello("tenant0")
            client.writer.write(b"\xff" * protocol.HEADER_BYTES)
            await client.writer.drain()
            response = await client._recv()
            await asyncio.sleep(0)
            await server.stop()
            return server, response

        server, response = asyncio.run(scenario())
        assert response.type == protocol.FrameType.ERR
        assert server.counts["serve.protocol.errors"] == 1

    def test_midframe_disconnect_counted(self):
        async def scenario():
            server, _ = _server()
            client = ServeClient.local(server)
            await client.hello("tenant0")
            frame = protocol.events_frame(_events(20))
            client.writer.write(frame[: len(frame) // 2])
            await client.writer.drain()
            client.close()
            await asyncio.sleep(0)
            await server.stop()
            return server

        server = asyncio.run(scenario())
        assert server.counts["serve.clients.disconnected_midframe"] == 1

    def test_data_before_hello_rejected(self):
        async def scenario():
            server, _ = _server()
            client = ServeClient.local(server)
            response = await client.send_events(_events(10))
            await server.stop()
            return response

        response = asyncio.run(scenario())
        assert response["frame_type"] == protocol.FrameType.ERR


class TestOverloadControls:
    def test_buffer_full_sheds_with_backoff(self):
        config = ServeConfig(window_batches=2)
        async def scenario():
            server, _ = _server(config=config)
            client = ServeClient.local(server)
            await client.hello("tenant0")
            responses = [
                await client.send_events(_events(10)) for _ in range(4)
            ]
            await server.stop()
            return server, responses

        server, responses = asyncio.run(scenario())
        kinds = [r["frame_type"] for r in responses]
        assert kinds[:2] == [protocol.FrameType.ACK] * 2
        assert kinds[2:] == [protocol.FrameType.SHED] * 2
        assert responses[2]["reason"] == "buffer_full"
        assert server.counts["serve.shed.buffer_full"] == 2
        assert server.shed_total() == 2

    def test_queue_depth_cap_is_global(self):
        config = ServeConfig(max_queued_events=25, window_batches=64)
        async def scenario():
            server, _ = _server(config=config)
            clients = []
            for name in ("tenant0", "tenant1"):
                client = ServeClient.local(server)
                await client.hello(name)
                clients.append(client)
            first = await clients[0].send_events(_events(20))
            second = await clients[1].send_events(_events(20))
            await server.stop()
            return server, first, second

        server, first, second = asyncio.run(scenario())
        assert first["frame_type"] == protocol.FrameType.ACK
        assert second["frame_type"] == protocol.FrameType.SHED
        assert second["reason"] == "queue_depth"
        assert second["retry_after_ms"] > 0

    def test_stale_batches_shed_at_drain(self):
        config = ServeConfig(deadline_us=1_000.0)  # 1 ms budget
        async def scenario():
            server, clock = _server(config=config)
            client = ServeClient.local(server)
            await client.hello("tenant0")
            await client.send_events(_events(30))
            clock["ns"] += 10_000_000  # 10 ms: way past the deadline
            served = server.drain_once()
            await server.stop()
            return server, served

        server, served = asyncio.run(scenario())
        assert served == 0
        assert server.counts["serve.shed.stale"] == 1
        assert server.stale_events == 30
        # Conservation: everything admitted is served or accounted shed.
        assert server.counts["serve.admitted.events"] == (
            server.counts["serve.round.events"] + server.stale_events
        )

    def test_rate_limit_sheds_with_retry_hint(self):
        config = ServeConfig(rate_limit_eps=100.0, rate_burst_events=40)
        async def scenario():
            server, _ = _server(config=config)
            client = ServeClient.local(server)
            await client.hello("tenant0")
            first = await client.send_events(_events(40))
            second = await client.send_events(_events(40))
            await server.stop()
            return first, second

        first, second = asyncio.run(scenario())
        assert first["frame_type"] == protocol.FrameType.ACK
        assert second["frame_type"] == protocol.FrameType.SHED
        assert second["reason"] == "rate_limited"
        assert second["retry_after_ms"] > 0

    def test_opportunistic_drain_bounds_backlog_age(self):
        """The admission path drains inline once the oldest queued
        batch exceeds the drain budget — the defence against drain-loop
        starvation under event-loop saturation."""
        config = ServeConfig(drain_interval_s=0.005)
        async def scenario():
            server, clock = _server(config=config)
            client = ServeClient.local(server)
            await client.hello("tenant0")
            await client.send_events(_events(30, label="a"))
            assert server.counts["serve.rounds"] == 0
            clock["ns"] += 50_000_000  # 50 ms: far past the budget
            await client.send_events(_events(30, label="b"))
            await server.stop()
            return server

        server = asyncio.run(scenario())
        # The second admission found a 50 ms-old backlog and drained it
        # inline (the second batch rode along or drained at stop()).
        assert server.counts["serve.rounds"] >= 1
        assert server.counts["serve.round.events"] >= 30


class TestTcpTransport:
    def test_tcp_session(self):
        async def scenario():
            server, _ = _server()
            host, port = await server.start_tcp()
            client = await ServeClient.connect(host, port)
            await client.hello("tenant0")
            response = await client.send_events(_events(24))
            served = server.drain_once()
            await client.bye()
            await server.stop()
            return response, served

        response, served = asyncio.run(scenario())
        assert response["frame_type"] == protocol.FrameType.ACK
        assert served == 24


class TestConfigValidation:
    def test_rejects_bad_values(self):
        with pytest.raises(ServeError):
            ServeConfig(deadline_us=0)
        with pytest.raises(ServeError):
            ServeConfig(window_batches=0)
        with pytest.raises(ServeError):
            ServeConfig(rate_limit_eps=-1)
        with pytest.raises(ServeError):
            ServeConfig(drain_interval_s=0)
        with pytest.raises(ServeError):
            ServeConfig(breaker_retry_ms=-1)
