"""Area accounting: library conversions, CU model calibration,
peripheral module estimates (Table I / Table II invariants)."""

import pytest

from repro.miaow.coverage import CoverageCollector, CoverageReport
from repro.synthesis.area_model import (
    CU_BRAMS,
    CuAreaModel,
    FULL_CU_FFS,
    FULL_CU_LUTS,
    ML_MIAOW_FFS,
    ML_MIAOW_LUTS,
    MIAOW20_FFS,
    MIAOW20_LUTS,
    rtad_module_areas,
)
from repro.synthesis.library import AreaVector, DEFAULT_LIBRARY, GateLibrary


def realistic_coverage():
    """Coverage resembling what the deployed ML kernels actually hit."""
    collector = CoverageCollector("models")
    for op in (
        "s_mov_b32", "s_add_i32", "s_sub_i32", "s_mul_i32", "s_lshl_b32",
        "s_cmp_lt_i32", "s_cmp_eq_i32", "s_load_dword",
        "s_cbranch_scc1", "s_branch", "s_endpgm",
        "v_mov_b32", "v_add_i32", "v_sub_i32", "v_min_i32", "v_mul_lo_i32",
        "v_lshlrev_b32", "v_add_f32", "v_sub_f32", "v_mul_f32", "v_mac_f32",
        "v_max_f32", "v_min_f32", "v_exp_f32", "v_rcp_f32",
        "v_cmp_eq_i32", "v_cndmask_b32", "v_cvt_f32_i32",
        "ds_read_b32", "ds_swizzle_b32",
        "flat_load_dword", "flat_store_dword", "v_readfirstlane_b32",
    ):
        collector.hit_opcode(op)
    return CoverageReport.merge([collector]).covered


class TestGateLibrary:
    def test_ml_miaow_gate_count_matches_paper(self):
        gates = DEFAULT_LIBRARY.gates_for(183_715, 76_375, 140)
        assert gates == pytest.approx(1_865_989, rel=0.001)

    def test_convert_preserves_fpga_fields(self):
        area = DEFAULT_LIBRARY.convert(AreaVector(luts=10, ffs=20, brams=1))
        assert area.luts == 10 and area.ffs == 20 and area.brams == 1
        assert area.gates > 0


class TestAreaVector:
    def test_add(self):
        total = AreaVector(1, 2, 3, 4) + AreaVector(10, 20, 30, 40)
        assert (total.luts, total.ffs, total.brams, total.gates) == (
            11, 22, 33, 44
        )

    def test_times(self):
        five = AreaVector(luts=2, ffs=3).times(5)
        assert five.luts == 10 and five.ffs == 15

    def test_lut_ff_sum(self):
        assert AreaVector(luts=7, ffs=3).lut_ff_sum == 10


class TestCuAreaModel:
    def test_full_area_matches_paper_exactly(self):
        model = CuAreaModel(covered_ours=realistic_coverage())
        full = model.full_area()
        assert full.luts == FULL_CU_LUTS
        assert full.ffs == FULL_CU_FFS
        assert full.brams == CU_BRAMS

    def test_trimmed_area_matches_paper_exactly(self):
        model = CuAreaModel(covered_ours=realistic_coverage())
        trimmed = model.coverage_trimmed_area()
        assert trimmed.luts == ML_MIAOW_LUTS
        assert trimmed.ffs == ML_MIAOW_FFS

    def test_instruction_trimmed_matches_paper(self):
        model = CuAreaModel(covered_ours=realistic_coverage())
        m20 = model.instruction_trimmed_area()
        assert m20.luts == pytest.approx(MIAOW20_LUTS, abs=2)
        assert m20.ffs == pytest.approx(MIAOW20_FFS, abs=2)

    def test_phantom_blocks_only_removed_by_coverage_flow(self):
        model = CuAreaModel(covered_ours=realistic_coverage())
        trimmed_names = set(model.trimmed_point_names())
        phantom = {n for n in trimmed_names if n.startswith("phantom.")}
        assert phantom  # coverage flow removes them
        # instruction flow keeps everything non-ALU
        assert model.instruction_trimmed_area().luts > (
            model.coverage_trimmed_area().luts
        )

    def test_richer_coverage_means_larger_engine(self):
        base = realistic_coverage()
        model = CuAreaModel(covered_ours=base)
        richer = base | {
            "decode.v_sqrt_f32", "block.valu_trans_sqrt",
            "decode.v_log_f32", "block.valu_trans_log",
        }
        assert (
            model.coverage_trimmed_area(richer).lut_ff_sum
            > model.coverage_trimmed_area(base).lut_ff_sum
        )

    def test_core_never_trimmed(self):
        model = CuAreaModel(covered_ours=realistic_coverage())
        names = model.trimmed_point_names(set())
        assert not any(n.startswith("core.") for n in names)


class TestPeripheralModules:
    def test_default_config_matches_table1(self):
        m = rtad_module_areas()
        assert (m.trace_analyzer.luts, m.trace_analyzer.ffs) == (11_962, 350)
        assert (m.p2s.luts, m.p2s.ffs) == (686, 1_074)
        assert (m.input_vector_generator.luts,
                m.input_vector_generator.ffs) == (890, 1_067)
        assert m.internal_fifo.brams == 10
        assert m.control_fsm.gates == 16_977

    def test_gate_counts_match_table1(self):
        m = rtad_module_areas()
        assert m.trace_analyzer.gates == 12_375
        assert m.p2s.gates == 14_363
        assert m.input_vector_generator.gates == 10_430
        assert m.internal_fifo.gates == 262

    def test_scaling_with_structure(self):
        small = rtad_module_areas(ta_units=2, mapper_entries=256)
        default = rtad_module_areas()
        assert small.trace_analyzer.luts < default.trace_analyzer.luts
        assert (
            small.input_vector_generator.luts
            < default.input_vector_generator.luts
        )

    def test_fifo_brams_scale_with_capacity(self):
        small = rtad_module_areas(fifo_depth_vectors=16)
        big = rtad_module_areas(fifo_depth_vectors=256)
        assert small.internal_fifo.brams < big.internal_fifo.brams

    def test_mlpu_sum(self):
        m = rtad_module_areas()
        total = m.mlpu_without_engine()
        assert total.luts == sum(
            part.luts
            for part in (
                m.trace_analyzer, m.p2s, m.input_vector_generator,
                m.internal_fifo, m.ml_miaow_driver, m.control_fsm,
                m.interrupt_manager,
            )
        )
