"""Coverage collection and the four-step trimming flow."""

import numpy as np
import pytest

from repro.errors import TrimmingError
from repro.miaow.assembler import assemble, float_bits
from repro.miaow.coverage import (
    CoverageCollector,
    CoverageReport,
    all_coverage_points,
)
from repro.miaow.gpu import Gpu
from repro.miaow.runtime import GpuRuntime
from repro.miaow.trimming import TrimmingFlow
from repro.synthesis.area_model import CalibrationError

FLOAT_KERNEL = """
.kernel floats
.vgprs 6
    v_cvt_f32_i32 v1, v0
    v_mul_f32 v1, v1, 2.0
    v_exp_f32 v2, v1
    v_rcp_f32 v3, v2
    v_lshlrev_b32 v4, 2, v0
    v_add_i32 v4, v4, s2
    flat_store_dword v4, v3
    s_endpgm
"""

INT_KERNEL = """
.kernel ints
.vgprs 6
    v_mul_lo_i32 v1, v0, 3
    v_and_b32 v1, v1, 0xFF
    v_lshlrev_b32 v2, 2, v0
    v_add_i32 v2, v2, s2
    flat_store_dword v2, v1
    s_endpgm
"""


def run_kernel(source):
    def run(gpu):
        rt = GpuRuntime(gpu)
        kernel = rt.build_program(source)
        out = rt.alloc_f32(64)
        rt.launch(kernel, 1, [out])
        return rt.read_f32(out, 64)

    return run


class TestCoverage:
    def test_collector_counts_hits(self):
        collector = CoverageCollector("t")
        collector.hit_opcode("v_add_f32")
        collector.hit_opcode("v_add_f32")
        assert collector.hits["decode.v_add_f32"] == 2
        assert "block.valu_fadd" in collector.covered

    def test_gpu_records_coverage(self):
        collector = CoverageCollector("run")
        gpu = Gpu(coverage=collector)
        run_kernel(FLOAT_KERNEL)(gpu)
        assert "decode.v_exp_f32" in collector.covered
        assert "decode.v_mul_lo_i32" not in collector.covered

    def test_merge_unions(self):
        a, b = CoverageCollector("a"), CoverageCollector("b")
        a.hit_opcode("v_add_f32")
        b.hit_opcode("s_mov_b32")
        report = CoverageReport.merge([a, b])
        assert {"decode.v_add_f32", "decode.s_mov_b32"} <= report.covered
        assert report.runs == ["a", "b"]

    def test_uncovered_complement(self):
        report = CoverageReport.merge([CoverageCollector("empty")])
        assert report.uncovered == all_coverage_points()
        assert report.coverage_ratio() == 0.0

    def test_covered_opcodes_extraction(self):
        collector = CoverageCollector("x")
        collector.hit_opcode("ds_read_b32")
        report = CoverageReport.merge([collector])
        assert report.covered_opcodes == {"ds_read_b32"}
        assert report.covered_blocks == {"lds_unit"}


class TestTrimmingFlow:
    def test_simulate_produces_per_run_coverage(self):
        flow = TrimmingFlow()
        collectors = flow.simulate(
            [("floats", run_kernel(FLOAT_KERNEL)),
             ("ints", run_kernel(INT_KERNEL))]
        )
        assert len(collectors) == 2
        assert "decode.v_exp_f32" in collectors[0].covered
        assert "decode.v_exp_f32" not in collectors[1].covered

    def test_full_flow_verifies(self):
        flow = TrimmingFlow()
        result = flow.run(
            [("floats", run_kernel(FLOAT_KERNEL)),
             ("ints", run_kernel(INT_KERNEL))]
        )
        assert result.verified
        assert "v_exp_f32" in result.allowed_ops
        assert "v_sqrt_f32" not in result.allowed_ops

    def test_trimmed_engine_runs_covered_kernels(self):
        flow = TrimmingFlow()
        runs = [("floats", run_kernel(FLOAT_KERNEL))]
        result = flow.run(runs)
        trimmed = flow.build_trimmed_gpu(result, num_cus=2)
        out = run_kernel(FLOAT_KERNEL)(trimmed)
        reference = run_kernel(FLOAT_KERNEL)(Gpu())
        assert np.allclose(out, reference, equal_nan=True)

    def test_trimmed_engine_rejects_uncovered_kernel(self):
        flow = TrimmingFlow()
        result = flow.run([("floats", run_kernel(FLOAT_KERNEL))])
        trimmed = flow.build_trimmed_gpu(result, num_cus=1)
        with pytest.raises(Exception) as excinfo:
            run_kernel(INT_KERNEL)(trimmed)
        assert "trimmed" in str(excinfo.value)

    def test_verify_failure_reported_as_trimming_error(self):
        flow = TrimmingFlow()
        result = flow.run([("floats", run_kernel(FLOAT_KERNEL))])
        with pytest.raises(TrimmingError):
            flow.verify(result, [("ints", run_kernel(INT_KERNEL))])

    def test_area_reductions_ordered(self):
        """Coverage trimming must beat instruction-analysis trimming."""
        flow = TrimmingFlow()
        result = flow.run(
            [("floats", run_kernel(FLOAT_KERNEL)),
             ("ints", run_kernel(INT_KERNEL))],
            single_model_runs=[("floats", run_kernel(FLOAT_KERNEL))],
        )
        assert result.reduction_pct > result.instruction_reduction_pct
        assert result.perf_per_area_vs_full > result.perf_per_area_vs_instruction > 1
