"""End-to-end integrity tags in the staged dataplane.

``Pipeline.run`` stamps each chunk with a CRC32 over its event columns
plus a monotonic sequence number; every stage boundary re-verifies the
tag.  These tests pin the contract: silent in-flight mutation and
chunk gaps are counted, legitimate mutators (fault-injection stages)
re-stamp and stay invisible, and the optional dual-run voting mode on
the MCM flags divergence without perturbing the inference stream.
"""

from repro.eval.metrics import build_demo_deployments, demo_events
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec
from repro.faults.stages import ChunkCorruptStage, EventFaultStage
from repro.obs import MetricsRegistry
from repro.pipeline.pipeline import Pipeline
from repro.pipeline.stage import StageBase
from repro.soc.manager import SocManager
from repro.workloads.cfg import BranchEvent, BranchKind

CHUNK_EVENTS = 32


class _PassStage(StageBase):
    name = "passthrough"

    def process(self, batch):
        self._account_batch(batch)
        return batch


class _MutatorStage(StageBase):
    """Flips one branch target per chunk, without re-stamping."""

    name = "mutator"

    def process(self, batch):
        if batch.events is not None and len(batch):
            batch.events.target[0] ^= 0x4
        return batch


class _DeclaredMutatorStage(_MutatorStage):
    """The same mutation, but declared — the pipeline re-stamps it."""

    name = "declared-mutator"
    mutates_events = True


def _events(count):
    return [
        BranchEvent(
            cycle=100 + 9 * i,
            source=0x1000 + 4 * i,
            target=0x4000 + 4 * (i % 17),
            kind=BranchKind.CALL if i % 5 else BranchKind.CONDITIONAL,
            taken=True,
        )
        for i in range(count)
    ]


def _run(stages, count=100):
    registry = MetricsRegistry()
    pipeline = Pipeline(
        stages, metrics=registry, chunk_events=CHUNK_EVENTS
    )
    pipeline.run(_events(count))
    return pipeline, registry


def _chunks(count):
    return (count + CHUNK_EVENTS - 1) // CHUNK_EVENTS


def test_clean_run_checks_every_boundary_without_findings():
    stages = [_PassStage(), _PassStage(), _PassStage()]
    _, registry = _run(stages, count=100)
    # Every chunk is verified at every stage boundary.
    assert registry.counter("pipeline.integrity.checks").value == (
        3 * _chunks(100)
    )
    assert registry.counter("pipeline.integrity.crc_mismatches").value == 0
    assert registry.counter("pipeline.integrity.gaps").value == 0


def test_silent_mutation_is_detected_downstream():
    stages = [_PassStage(), _MutatorStage(), _PassStage()]
    _, registry = _run(stages, count=100)
    # The stage after the mutator sees a stale tag on every chunk.
    assert registry.counter("pipeline.integrity.crc_mismatches").value == (
        _chunks(100)
    )


def test_declared_mutation_is_restamped_and_clean():
    stages = [_PassStage(), _DeclaredMutatorStage(), _PassStage()]
    _, registry = _run(stages, count=100)
    assert registry.counter("pipeline.integrity.crc_mismatches").value == 0


def test_chunk_gap_is_counted():
    stages = [_PassStage(), _PassStage()]
    pipeline, registry = _run(stages, count=64)
    # Simulate lost chunks between two runs of one session.
    pipeline._chunk_sequence += 5
    pipeline.run(_events(64))
    # Each stage notices the jump exactly once.
    assert registry.counter("pipeline.integrity.gaps").value == 2
    assert registry.counter("pipeline.integrity.crc_mismatches").value == 0


def test_reset_forgets_sequence_history():
    stages = [_PassStage(), _PassStage()]
    pipeline, registry = _run(stages, count=64)
    pipeline.reset()
    pipeline.run(_events(64))
    assert registry.counter("pipeline.integrity.gaps").value == 0


def test_verify_integrity_off_checks_nothing():
    registry = MetricsRegistry()
    pipeline = Pipeline(
        [_PassStage(), _MutatorStage(), _PassStage()],
        metrics=registry,
        chunk_events=CHUNK_EVENTS,
        verify_integrity=False,
    )
    pipeline.run(_events(100))
    assert registry.counter("pipeline.integrity.checks").value == 0
    assert registry.counter("pipeline.integrity.crc_mismatches").value == 0


def test_chunk_corrupt_stage_is_caught_by_integrity_tags():
    plan = FaultPlan(
        seed=11, specs=(FaultSpec(FaultKind.CHUNK_CORRUPT, rate=1.0),)
    )
    registry = MetricsRegistry()
    pipeline = Pipeline(
        [
            _PassStage(),
            ChunkCorruptStage(plan, metrics=registry),
            _PassStage(),
        ],
        metrics=registry,
        chunk_events=CHUNK_EVENTS,
    )
    pipeline.run(_events(100))
    corrupted = registry.counter("faults.chunks.corrupted").value
    assert corrupted == _chunks(100)
    # The corruptor is silent by design (mutates_events stays False),
    # so the very next boundary check flags every corrupted chunk.
    assert not ChunkCorruptStage.mutates_events
    assert registry.counter("pipeline.integrity.crc_mismatches").value == (
        corrupted
    )


def test_event_fault_stage_restamps_no_false_positives():
    plan = FaultPlan(
        seed=3,
        specs=(
            FaultSpec(FaultKind.EVENT_CORRUPT, rate=0.2),
            FaultSpec(FaultKind.EVENT_DROP, rate=0.1),
        ),
    )
    registry = MetricsRegistry()
    pipeline = Pipeline(
        [
            EventFaultStage(plan, metrics=registry),
            _PassStage(),
            _PassStage(),
        ],
        metrics=registry,
        chunk_events=CHUNK_EVENTS,
    )
    pipeline.run(_events(200))
    # The injector mutated events (that is its job) ...
    assert EventFaultStage.mutates_events
    # ... and declared it, so downstream checks stay clean.
    assert registry.counter("pipeline.integrity.crc_mismatches").value == 0


def test_dual_run_voting_flags_but_never_perturbs():
    traces = {
        "tenant0": demo_events("lstm", 0, 400, run_label="dualrun-r0")
    }
    plain = SocManager(
        build_demo_deployments(num_tenants=1, kind="lstm"),
        metrics=MetricsRegistry(),
    )
    voting = SocManager(
        build_demo_deployments(num_tenants=1, kind="lstm", dual_run=True),
        metrics=MetricsRegistry(),
    )
    baseline = plain.run_events(traces)["tenant0"]
    voted = voting.run_events(traces)["tenant0"]
    assert baseline
    assert len(voted) == len(baseline)
    for reference, record in zip(baseline, voted):
        assert reference.divergent is None
        # A healthy engine never diverges from itself ...
        assert record.divergent is False
        # ... and the redundant run is timing/score transparent.
        assert record.sequence_number == reference.sequence_number
        assert record.trigger_cycle == reference.trigger_cycle
        assert record.arrival_ns == reference.arrival_ns
        assert record.start_ns == reference.start_ns
        assert record.done_ns == reference.done_ns
        assert record.score == reference.score
        assert record.anomalous == reference.anomalous
        assert record.gpu_cycles == reference.gpu_cycles
    runtime = voting.tenant("tenant0")
    assert runtime.metrics.counter("mcm.dual_run.runs").value == (
        len(voted)
    )
    assert runtime.metrics.counter("mcm.dual_run.divergences").value == 0
