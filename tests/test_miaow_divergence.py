"""Control-flow divergence via EXEC masking (v_cmpx + save/restore)."""

import numpy as np
import pytest

from repro.miaow.alu import execute
from repro.miaow.assembler import assemble, float_bits
from repro.miaow.gpu import Gpu
from repro.miaow.isa import Instruction, Lit, SReg, VReg, WAVE_SIZE
from repro.miaow.memory import GlobalMemory, LocalMemory
from repro.miaow.runtime import GpuRuntime
from repro.miaow.wavefront import Wavefront


class FakeCu:
    def __init__(self):
        self.global_memory = GlobalMemory(16 * 1024)
        self.local_memory = LocalMemory(4 * 1024)


def run(wf, cu, op, *operands):
    execute(wf, Instruction(op=op, operands=tuple(operands)), cu)


class TestCmpx:
    def test_narrows_exec(self):
        wf, cu = Wavefront(vgprs=8), FakeCu()
        run(wf, cu, "v_cmpx_lt_i32", VReg(0), Lit(10))
        assert wf.exec_mask[:10].all()
        assert not wf.exec_mask[10:].any()
        assert (wf.vcc == wf.exec_mask).all()

    def test_respects_prior_mask(self):
        wf, cu = Wavefront(vgprs=8), FakeCu()
        wf.exec_mask[:] = False
        wf.exec_mask[5:20] = True
        run(wf, cu, "v_cmpx_lt_i32", VReg(0), Lit(10))
        assert wf.exec_mask[5:10].all()
        assert not wf.exec_mask[0:5].any()
        assert not wf.exec_mask[10:].any()

    def test_float_variant(self):
        wf, cu = Wavefront(vgprs=8), FakeCu()
        wf.vgpr[1] = np.linspace(-1, 1, WAVE_SIZE).astype(
            np.float32
        ).view(np.uint32)
        run(wf, cu, "v_cmpx_gt_f32", VReg(1), Lit(float_bits(0.0)))
        assert wf.exec_mask.sum() == (
            np.linspace(-1, 1, WAVE_SIZE) > 0
        ).sum()


class TestSaveRestore:
    def test_roundtrip(self):
        wf, cu = Wavefront(vgprs=8), FakeCu()
        wf.exec_mask[:] = False
        wf.exec_mask[::3] = True
        original = wf.exec_mask.copy()
        run(wf, cu, "s_saveexec_b64", SReg(10))
        wf.exec_mask[:] = True
        run(wf, cu, "s_mov_exec_b64", SReg(10))
        assert (wf.exec_mask == original).all()

    def test_spans_sgpr_pair(self):
        wf, cu = Wavefront(vgprs=8), FakeCu()
        wf.exec_mask[:] = False
        wf.exec_mask[0] = True
        wf.exec_mask[63] = True
        run(wf, cu, "s_saveexec_b64", SReg(10))
        assert wf.s_u32(10) == 1
        assert wf.s_u32(11) == 0x80000000


class TestDivergentKernel:
    IF_ELSE = """
    .kernel ifelse
    .vgprs 8
        ; out[lane] = lane < 32 ? lane * 2 : lane + 100
        s_saveexec_b64 s10
        v_cmpx_lt_i32 v0, 32
        v_mul_lo_i32 v1, v0, 2          ; then-branch
        s_mov_exec_b64 s10
        v_cmpx_ge_i32 v0, 32
        v_add_i32 v1, v0, 100           ; else-branch
        s_mov_exec_b64 s10
        v_lshlrev_b32 v2, 2, v0
        v_add_i32 v2, v2, s2
        flat_store_dword v2, v1
        s_endpgm
    """

    def test_both_branches_execute_correctly(self):
        runtime = GpuRuntime(Gpu())
        kernel = runtime.build_program(self.IF_ELSE)
        out = runtime.alloc(64 * 4)
        runtime.launch(kernel, 1, [out])
        values = runtime.read_u32(out, 64).astype(np.int64)
        lanes = np.arange(64)
        expected = np.where(lanes < 32, lanes * 2, lanes + 100)
        assert (values == expected).all()

    def test_execz_branch_skips_empty_side(self):
        source = """
        .kernel skipempty
        .vgprs 6
            s_saveexec_b64 s10
            v_cmpx_lt_i32 v0, 0          ; no lane qualifies
            s_cbranch_execz skip
            v_mov_b32 v1, 0x29A          ; must never run
        skip:
            s_mov_exec_b64 s10
            v_mov_b32 v1, 7
            v_lshlrev_b32 v2, 2, v0
            v_add_i32 v2, v2, s2
            flat_store_dword v2, v1
            s_endpgm
        """
        runtime = GpuRuntime(Gpu())
        kernel = runtime.build_program(source)
        out = runtime.alloc(64 * 4)
        result = runtime.launch(kernel, 1, [out])
        assert (runtime.read_u32(out, 64) == 7).all()
        # and the skipped v_mov was never issued
        assert result.instructions == len(kernel.instructions) - 1
