"""Public API surface: exports exist, __all__ is honest."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.utils",
    "repro.workloads",
    "repro.coresight",
    "repro.frontends",
    "repro.frontends.etrace",
    "repro.igm",
    "repro.miaow",
    "repro.synthesis",
    "repro.ml",
    "repro.mcm",
    "repro.soc",
    "repro.eval",
]


@pytest.mark.parametrize("package_name", PACKAGES)
def test_package_imports(package_name):
    importlib.import_module(package_name)


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_names_resolve(package_name):
    package = importlib.import_module(package_name)
    for name in getattr(package, "__all__", []):
        assert hasattr(package, name), f"{package_name}.{name} missing"


def test_version_string():
    import repro

    assert repro.__version__.count(".") == 2


def test_key_entry_points_callable():
    from repro.eval import (
        run_fig6, run_fig7, run_fig8, run_table1, run_table2,
    )
    from repro.eval.prep import get_bundle, make_miaow, make_ml_miaow

    for fn in (run_fig6, run_fig7, run_fig8, run_table1, run_table2,
               get_bundle, make_miaow, make_ml_miaow):
        assert callable(fn)


def test_submodules_not_shadowed():
    """Module-level names must not accidentally shadow submodules."""
    import repro.ml
    import repro.ml.kernels
    import repro.ml.quantize

    assert repro.ml.kernels.DeployedElm
    assert repro.ml.quantize.QuantizedElm
