"""Tenant health state machine + mid-run membership changes.

Exercises the SocManager robustness contract: loss-driven degradation
with recovery, watchdog- and crash-driven quarantine, probation-based
re-admission, the healthy-tenant isolation invariant, and tenant
removal/admission between monitoring rounds.
"""

import pytest

from repro.errors import SocConfigError
from repro.eval.metrics import build_demo_manager, demo_events
from repro.faults import FaultKind, FaultPlan, FaultSpec
from repro.mcm.driver import MlMiaowDriver
from repro.miaow.gpu import Gpu
from repro.obs import MetricsRegistry
from repro.soc import HealthPolicy, SocManager, TenantHealth

EVENTS = 900


def plan_of(*specs, seed=5):
    return FaultPlan(seed=seed, specs=tuple(specs))


def traces_for(manager, count=EVENTS, round_label="r0"):
    return {
        runtime.name: demo_events(
            "lstm", 0, count, run_label=f"health-{runtime.name}-{round_label}"
        )
        for runtime in manager.tenants
    }


def record_key(record):
    return (
        record.sequence_number,
        record.arrival_ns,
        record.start_ns,
        record.done_ns,
        float(record.score),
        record.anomalous,
    )


def crash_round0_only_plan(rate=0.4, horizon=10):
    """A TENANT_CRASH plan that fires in round 0 and never again."""
    for seed in range(500):
        plan = plan_of(
            FaultSpec(FaultKind.TENANT_CRASH, rate=rate), seed=seed
        )
        if plan.decide(FaultKind.TENANT_CRASH, 0) and not any(
            plan.decide(FaultKind.TENANT_CRASH, r)
            for r in range(1, horizon)
        ):
            return plan
    raise AssertionError("no suitable seed in range")  # pragma: no cover


class TestLossDegradation:
    def test_sustained_loss_degrades_but_keeps_running(self):
        lossy = plan_of(FaultSpec(FaultKind.EVENT_DROP, rate=0.3))
        manager = build_demo_manager(
            2,
            fault_plans={"tenant0": lossy},
            health_policy=HealthPolicy(sustain_rounds=2),
        )
        records = manager.run_events(traces_for(manager))
        assert manager.health()["tenant0"] is TenantHealth.HEALTHY
        records = manager.run_events(traces_for(manager, round_label="r1"))
        assert manager.health()["tenant0"] is TenantHealth.DEGRADED
        assert manager.health()["tenant1"] is TenantHealth.HEALTHY
        # DEGRADED is advisory: the tenant still produces records
        assert len(records["tenant0"]) > 0

    def test_idle_rounds_carry_no_evidence(self):
        lossy = plan_of(FaultSpec(FaultKind.EVENT_DROP, rate=0.3))
        manager = build_demo_manager(
            2,
            fault_plans={"tenant0": lossy},
            health_policy=HealthPolicy(sustain_rounds=2),
        )
        manager.run_events(traces_for(manager))
        # one bad round banked; idling must neither add nor clear it
        manager.run_events({})
        manager.run_events(
            {"tenant0": demo_events("lstm", 0, EVENTS, run_label="h-i")}
        )
        assert manager.health()["tenant0"] is TenantHealth.DEGRADED


class TestQuarantine:
    def test_watchdog_trips_quarantine(self):
        registry = MetricsRegistry()
        stall = plan_of(
            FaultSpec(FaultKind.MCM_STALL, rate=1.0, stall_us=5_000.0)
        )
        manager = build_demo_manager(
            2,
            metrics=registry,
            fault_plans={"tenant0": stall},
            deadline_us=500.0,
        )
        records = manager.run_events(traces_for(manager))
        assert manager.health()["tenant0"] is TenantHealth.QUARANTINED
        assert manager.health()["tenant1"] is TenantHealth.HEALTHY
        assert records["tenant0"] == []  # every service cancelled
        assert len(records["tenant1"]) > 0
        counters = registry.snapshot()["counters"]
        assert counters["socmgr.health.quarantines"] == 1
        assert counters["mcm.arbiter.watchdog.cancelled"] > 0

    def test_crash_quarantine_and_full_recovery_cycle(self):
        registry = MetricsRegistry()
        manager = build_demo_manager(
            2,
            metrics=registry,
            fault_plans={"tenant0": crash_round0_only_plan()},
            health_policy=HealthPolicy(
                probation_rounds=1, recover_rounds=1
            ),
        )
        manager.run_events(traces_for(manager))
        assert manager.health()["tenant0"] is TenantHealth.QUARANTINED
        assert manager.tenant("tenant0").crashes == 1
        # probation: the trace is offered but skipped
        records = manager.run_events(traces_for(manager, round_label="p"))
        assert records["tenant0"] == []
        assert manager.health()["tenant0"] is TenantHealth.QUARANTINED
        # re-admission as DEGRADED; a clean round restores HEALTHY
        records = manager.run_events(traces_for(manager, round_label="b"))
        assert len(records["tenant0"]) > 0
        assert manager.health()["tenant0"] is TenantHealth.HEALTHY
        counters = registry.snapshot()["counters"]
        assert counters["socmgr.crashes"] == 1
        assert counters["socmgr.health.quarantines"] == 1
        assert counters["socmgr.health.readmissions"] == 1
        assert counters["socmgr.health.skipped_rounds"] == 1

    def test_quarantined_neighbour_leaves_healthy_records_unchanged(self):
        crash = plan_of(FaultSpec(FaultKind.TENANT_CRASH, rate=1.0))
        manager = build_demo_manager(
            2, fault_plans={"tenant0": crash}
        )
        traces = traces_for(manager)
        manager.run_events(traces)  # round 0: crash -> quarantine
        traces = traces_for(manager, round_label="q")
        got = manager.run_events(traces)["tenant1"]
        reference = build_demo_manager(2)
        ref = reference.run_events(
            {"tenant1": traces["tenant1"]}
        )["tenant1"]
        assert [record_key(r) for r in got] == [
            record_key(r) for r in ref
        ]


class TestMembership:
    def test_remove_and_readmit_mid_run(self):
        manager = build_demo_manager(3)
        first = manager.run_events(traces_for(manager))
        assert set(first) == {"tenant0", "tenant1", "tenant2"}
        deployment = manager.remove_tenant("tenant1")
        assert [r.name for r in manager.tenants] == ["tenant0", "tenant2"]
        second = manager.run_events(traces_for(manager, round_label="r1"))
        assert set(second) == {"tenant0", "tenant2"}
        runtime = manager.admit_tenant(deployment)
        assert runtime.health is TenantHealth.HEALTHY
        third = manager.run_events(traces_for(manager, round_label="r2"))
        assert set(third) == {"tenant0", "tenant1", "tenant2"}
        assert len(third["tenant1"]) > 0

    def test_round_robin_fairness(self):
        # identical traces -> identical offered load per lane, so the
        # arbiter must complete the same number of services for each
        manager = build_demo_manager(3)
        shared = demo_events("lstm", 0, EVENTS, run_label="health-fair")
        records = manager.run_events(
            {r.name: shared for r in manager.tenants}
        )
        counts = [len(records[r.name]) for r in manager.tenants]
        assert min(counts) > 0
        assert max(counts) == min(counts)

    def test_service_intervals_never_overlap(self):
        manager = build_demo_manager(3)
        for label in ("r0", "r1"):
            records = manager.run_events(
                traces_for(manager, round_label=label)
            )
            if label == "r1":
                manager.remove_tenant("tenant2")
            intervals = sorted(
                (r.start_ns, r.done_ns)
                for per_tenant in records.values()
                for r in per_tenant
            )
            assert intervals
            for (_, prev_done), (start, _) in zip(
                intervals, intervals[1:]
            ):
                assert start >= prev_done - 1e-6

    def test_membership_rejections(self):
        manager = build_demo_manager(2)
        deployment = manager.remove_tenant("tenant1")
        with pytest.raises(SocConfigError):
            manager.remove_tenant("tenant0")
        with pytest.raises(SocConfigError):
            manager.remove_tenant("tenant1")  # already gone
        manager.admit_tenant(deployment)
        with pytest.raises(SocConfigError):
            manager.admit_tenant(deployment)  # duplicate name
        foreign = build_demo_manager(2).remove_tenant("tenant1")
        foreign.name = "tenant9"
        foreign.driver = MlMiaowDriver(
            foreign.driver.deployment, Gpu(name="other"),
            execute_on_gpu=False,
        )
        with pytest.raises(SocConfigError):
            manager.admit_tenant(foreign)

    def test_unknown_trace_name_refused(self):
        manager = build_demo_manager(2)
        with pytest.raises(SocConfigError):
            manager.run_events({"nobody": []})


class TestPolicyValidation:
    def test_bad_policy_values_rejected(self):
        with pytest.raises(SocConfigError):
            HealthPolicy(degrade_loss_rate=1.5)
        with pytest.raises(SocConfigError):
            HealthPolicy(sustain_rounds=0)
        with pytest.raises(SocConfigError):
            HealthPolicy(probation_rounds=0)
