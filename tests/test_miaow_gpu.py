"""Memory, compute unit scheduling, multi-CU dispatch, runtime."""

import numpy as np
import pytest

from repro.errors import (
    GpuError,
    GpuMemoryError,
    IllegalInstructionError,
    KernelLaunchError,
)
from repro.miaow.assembler import assemble, float_bits
from repro.miaow.compute_unit import ComputeUnit, GpuTimings
from repro.miaow.gpu import Gpu
from repro.miaow.memory import GlobalMemory, LocalMemory
from repro.miaow.runtime import GpuRuntime

SAXPY = """
.kernel saxpy
.vgprs 8
    s_mov_b32 s6, 64
    s_mul_i32 s7, s0, s6
    v_mov_b32 v1, s7
    v_add_i32 v1, v1, v0
    v_lshlrev_b32 v2, 2, v1
    v_mov_b32 v3, s3
    v_add_i32 v3, v3, v2
    v_mov_b32 v4, s4
    v_add_i32 v4, v4, v2
    flat_load_dword v5, v3
    flat_load_dword v6, v4
    v_mov_b32 v7, s2
    v_mac_f32 v6, v7, v5
    flat_store_dword v4, v6
    s_endpgm
"""

COUNTDOWN = """
.kernel countdown
.vgprs 4
    s_mov_b32 s3, 0
loop:
    s_add_i32 s3, s3, 1
    s_cmp_lt_i32 s3, s2
    s_cbranch_scc1 loop
    s_endpgm
"""

REDUCE = """
.kernel reduce
.vgprs 6
    v_cvt_f32_i32 v1, v0
    ds_swizzle_b32 v2, v1, 32
    v_add_f32 v1, v1, v2
    ds_swizzle_b32 v2, v1, 16
    v_add_f32 v1, v1, v2
    ds_swizzle_b32 v2, v1, 8
    v_add_f32 v1, v1, v2
    ds_swizzle_b32 v2, v1, 4
    v_add_f32 v1, v1, v2
    ds_swizzle_b32 v2, v1, 2
    v_add_f32 v1, v1, v2
    ds_swizzle_b32 v2, v1, 1
    v_add_f32 v1, v1, v2
    v_mov_b32 v3, s2
    flat_store_dword v3, v1
    s_endpgm
"""


class TestGlobalMemory:
    def test_alloc_alignment(self):
        mem = GlobalMemory(4096)
        a = mem.alloc(10, align=64)
        b = mem.alloc(10, align=64)
        assert a % 64 == 0 and b % 64 == 0 and b > a

    def test_alloc_exhaustion(self):
        mem = GlobalMemory(1024)
        with pytest.raises(GpuMemoryError):
            mem.alloc(2048)

    def test_unaligned_access_rejected(self):
        mem = GlobalMemory(1024)
        with pytest.raises(GpuMemoryError):
            mem.load_u32(2)

    def test_out_of_range_rejected(self):
        mem = GlobalMemory(1024)
        with pytest.raises(GpuMemoryError):
            mem.store_u32(1024, 1)

    def test_block_f32_roundtrip(self):
        mem = GlobalMemory(1024)
        data = np.linspace(-1, 1, 16).astype(np.float32)
        mem.write_f32(0, data)
        assert np.allclose(mem.read_f32(0, 16), data)

    def test_gather_scatter_masked(self):
        mem = GlobalMemory(1024)
        addresses = np.arange(64, dtype=np.uint32) * 4
        values = np.arange(64, dtype=np.uint32)
        mask = np.zeros(64, bool)
        mask[10:20] = True
        mem.scatter_u32(addresses, values, mask)
        out = mem.gather_u32(addresses, np.ones(64, bool))
        assert (out[10:20] == values[10:20]).all()
        assert (out[:10] == 0).all()


class TestLocalMemory:
    def test_persists_across_clears_only(self):
        lds = LocalMemory(1024)
        lds.write_f32(0, np.array([1.5, 2.5], np.float32))
        assert np.allclose(lds.read_f32(0, 2), [1.5, 2.5])
        lds.clear()
        assert (lds.read_f32(0, 2) == 0).all()

    def test_bounds(self):
        lds = LocalMemory(64)
        with pytest.raises(GpuMemoryError):
            lds.write_f32(60, np.array([1, 2, 3], np.float32))


class TestComputeUnit:
    def test_loop_trip_count_affects_cycles(self):
        kernel = assemble(COUNTDOWN)
        mem = GlobalMemory(1024)
        cu = ComputeUnit(0, mem)
        c_short = cu.run_workgroups(kernel, [0], 1, [5])
        cu2 = ComputeUnit(0, mem)
        c_long = cu2.run_workgroups(kernel, [0], 1, [50])
        assert c_long > c_short * 5

    def test_single_wavefront_cycles_are_sum_of_costs(self):
        source = "v_add_f32 v1, v1, v1\nv_add_f32 v1, v1, v1\ns_endpgm\n"
        kernel = assemble(source)
        timings = GpuTimings()
        cu = ComputeUnit(0, GlobalMemory(1024), timings=timings)
        cycles = cu.run_workgroups(kernel, [0], 1, [])
        expected = 2 * timings.valu + timings.special
        assert cycles == pytest.approx(expected, abs=3)

    def test_multi_resident_overlaps_memory_latency(self):
        # A load-heavy loop stalls a single wavefront; a second
        # resident wavefront fills the idle issue slots.
        source = """
        .vgprs 4
        s_mov_b32 s3, 0
        v_mov_b32 v1, 0
        loop:
        flat_load_dword v2, v1
        s_add_i32 s3, s3, 1
        s_cmp_lt_i32 s3, s2
        s_cbranch_scc1 loop
        s_endpgm
        """
        kernel = assemble(source)
        serial = ComputeUnit(0, GlobalMemory(1024), max_resident=1)
        t_serial = serial.run_workgroups(kernel, [0, 1], 2, [40])
        overlapped = ComputeUnit(0, GlobalMemory(1024), max_resident=2)
        t_overlap = overlapped.run_workgroups(kernel, [0, 1], 2, [40])
        assert t_overlap < t_serial

    def test_runaway_loop_guard(self):
        source = "loop:\ns_branch loop\ns_endpgm\n"
        kernel = assemble(source)
        from repro.miaow import compute_unit

        cu = ComputeUnit(0, GlobalMemory(1024))
        original = compute_unit.MAX_INSTRUCTIONS_PER_WAVE
        compute_unit.MAX_INSTRUCTIONS_PER_WAVE = 1000
        try:
            with pytest.raises(GpuError):
                cu.run_workgroups(kernel, [0], 1, [])
        finally:
            compute_unit.MAX_INSTRUCTIONS_PER_WAVE = original

    def test_workgroup_id_in_s0(self):
        source = """
        v_mov_b32 v1, s0
        v_lshlrev_b32 v2, 2, v0
        v_add_i32 v2, v2, s2
        s_mov_b32 s3, 256
        s_mul_i32 s3, s0, s3
        v_add_i32 v2, v2, s3
        flat_store_dword v2, v1
        s_endpgm
        """
        kernel = assemble(source)
        mem = GlobalMemory(4096)
        cu = ComputeUnit(0, mem)
        cu.run_workgroups(kernel, [0, 1], 2, [0])
        assert mem.load_u32(0) == 0
        assert mem.load_u32(256) == 1

    def test_trimmed_opcode_rejected(self):
        kernel = assemble("v_add_f32 v1, v1, v1\ns_endpgm\n")
        cu = ComputeUnit(
            0, GlobalMemory(1024), allowed_ops={"s_endpgm"}
        )
        with pytest.raises(IllegalInstructionError):
            cu.run_workgroups(kernel, [0], 1, [])


class TestGpuDispatch:
    def test_saxpy_multi_cu_correct(self):
        for num_cus in (1, 2, 5):
            gpu = Gpu(num_cus=num_cus)
            rt = GpuRuntime(gpu)
            kernel = rt.build_program(SAXPY)
            n = 320
            x = np.arange(n, dtype=np.float32)
            y = np.ones(n, dtype=np.float32)
            bx, by = rt.alloc_f32(n), rt.alloc_f32(n)
            rt.write(bx, x)
            rt.write(by, y)
            rt.launch(kernel, n // 64, [float_bits(2.0), bx, by, n])
            assert np.allclose(rt.read_f32(by, n), 2 * x + 1)

    def test_more_cus_fewer_cycles(self):
        results = {}
        for num_cus in (1, 5):
            gpu = Gpu(num_cus=num_cus)
            rt = GpuRuntime(gpu)
            kernel = rt.build_program(SAXPY)
            n = 320
            bx, by = rt.alloc_f32(n), rt.alloc_f32(n)
            rt.write(bx, np.zeros(n, np.float32))
            rt.write(by, np.zeros(n, np.float32))
            results[num_cus] = rt.launch(
                kernel, 5, [float_bits(1.0), bx, by, n]
            ).cycles
        assert results[5] * 4 < results[1] * 5
        assert results[5] >= results[1] // 5

    def test_butterfly_reduction(self):
        gpu = Gpu(num_cus=1)
        rt = GpuRuntime(gpu)
        kernel = rt.build_program(REDUCE)
        out = rt.alloc_f32(1)
        rt.launch(kernel, 1, [out])
        # Every lane holds the total after the butterfly; they all
        # store the same value to the same address.
        assert rt.read_f32(out, 1)[0] == np.arange(64).sum()

    def test_lds_preload_visible_to_all_cus(self):
        gpu = Gpu(num_cus=3)
        weights = np.linspace(0, 1, 32).astype(np.float32)
        gpu.write_lds_f32_all(0, weights)
        for cu in gpu.compute_units:
            assert np.allclose(cu.local_memory.read_f32(0, 32), weights)

    def test_bad_workgroup_count(self):
        gpu = Gpu()
        kernel = assemble("s_endpgm\n")
        with pytest.raises(KernelLaunchError):
            gpu.dispatch(kernel, 0)

    def test_per_cu_cycles_reported(self):
        gpu = Gpu(num_cus=2)
        kernel = assemble(COUNTDOWN)
        result = gpu.dispatch(kernel, 3, [10])
        assert set(result.per_cu_cycles) == {0, 1}
        assert result.cycles == max(result.per_cu_cycles.values())

    def test_microseconds_conversion(self):
        gpu = Gpu()
        kernel = assemble(COUNTDOWN)
        result = gpu.dispatch(kernel, 1, [10])
        assert result.microseconds(50e6) == pytest.approx(
            result.cycles / 50
        )


class TestRuntime:
    def test_named_program_registry(self):
        rt = GpuRuntime(Gpu())
        rt.build_program("s_endpgm\n", name="nop")
        assert rt.get_kernel("nop").name == "nop"
        with pytest.raises(KernelLaunchError):
            rt.get_kernel("missing")

    def test_buffer_write_too_large(self):
        rt = GpuRuntime(Gpu())
        buf = rt.alloc_f32(4)
        with pytest.raises(KernelLaunchError):
            rt.write(buf, np.zeros(8, np.float32))

    def test_buffer_args_flattened_to_addresses(self):
        rt = GpuRuntime(Gpu())
        buf = rt.alloc_f32(4)
        flat = rt._flatten_args([buf, 7])
        assert flat == [buf.address, 7]

    def test_read_u32(self):
        rt = GpuRuntime(Gpu())
        buf = rt.alloc(16)
        rt.write(buf, np.array([1, 2, 3, 4], np.uint32))
        assert (rt.read_u32(buf) == [1, 2, 3, 4]).all()
