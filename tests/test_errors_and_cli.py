"""Exception hierarchy contracts and the evaluation CLI."""

import pytest

from repro import errors


class TestHierarchy:
    def test_everything_derives_from_rtad_error(self):
        exception_types = [
            value
            for value in vars(errors).values()
            if isinstance(value, type) and issubclass(value, Exception)
        ]
        for exc in exception_types:
            assert issubclass(exc, errors.RtadError), exc

    def test_layer_bases(self):
        assert issubclass(errors.PacketDecodeError, errors.TraceError)
        assert issubclass(errors.FrameSyncError, errors.TraceError)
        assert issubclass(errors.MapperConfigError, errors.IgmError)
        assert issubclass(errors.IllegalInstructionError, errors.GpuError)
        assert issubclass(errors.TrimmingError, errors.GpuError)
        assert issubclass(errors.FifoOverflowError, errors.McmError)

    def test_one_catch_at_the_soc_boundary(self):
        """Any subsystem failure is catchable as RtadError."""
        from repro.igm.address_mapper import AddressMapper

        with pytest.raises(errors.RtadError):
            AddressMapper(capacity=0)

        from repro.miaow.assembler import assemble

        with pytest.raises(errors.RtadError):
            assemble("nonsense_op v0\ns_endpgm")


class TestEvalCli:
    def test_unknown_experiment_rejected(self, capsys):
        from repro.eval.__main__ import main

        with pytest.raises(SystemExit):
            main(["figure9"])
        assert "unknown experiments" in capsys.readouterr().err

    def test_fig7_runs(self, capsys):
        from repro.eval.__main__ import main

        assert main(["fig7"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 7" in out
        assert "[fig7:" in out

    def test_fig6_runs(self, capsys):
        from repro.eval.__main__ import main

        assert main(["fig6"]) == 0
        assert "geomean" in capsys.readouterr().out

    def test_fig8_subset_args(self, capsys):
        from repro.eval.__main__ import main

        code = main(
            ["fig8", "--trials", "1", "--benchmarks", "403.gcc"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "403.gcc" in out
