"""Context-aware filtering: monitoring one process among many.

PTM reports "current process IDs"; the OS emits a context-ID packet at
every switch.  An IGM configured with a monitored context must pass
only the victim's branches even when the trace port interleaves
several processes.
"""

import numpy as np
import pytest

from repro.coresight.ptm import Ptm, PtmConfig
from repro.coresight.tpiu import Tpiu
from repro.igm.igm import Igm, IgmConfig
from repro.igm.trace_analyzer import TraceAnalyzer
from repro.igm.vector_encoder import EncoderMode
from repro.utils.bitstream import bytes_to_words
from repro.workloads.cfg import BranchEvent, BranchKind


def interleaved_trace(num_slices=6, events_per_slice=20):
    """Two processes (ctx 1 and 2) alternating on the CPU.

    Process 1 branches into the 0x1xxxx region, process 2 into
    0x2xxxx, so filtering is observable from the addresses alone.
    """
    ptm = Ptm(PtmConfig(context_id=1))
    tpiu = Tpiu()
    framed = bytearray()
    cycle = 0
    expected_ctx1 = []
    for slice_index in range(num_slices):
        context = 1 + slice_index % 2
        framed += tpiu.push(ptm.switch_context(context))
        base = 0x10000 * context
        for i in range(events_per_slice):
            event = BranchEvent(
                cycle=cycle,
                source=base + 0x100 + 4 * i,
                target=base + 4 * ((i * 7) % 64),
                kind=BranchKind.UNCONDITIONAL,
            )
            if context == 1:
                expected_ctx1.append(event.target)
            framed += tpiu.push(ptm.feed(event))
            cycle += 10
    framed += tpiu.push(ptm.flush())
    framed += tpiu.flush()
    return bytes(framed), expected_ctx1


class TestTraceAnalyzerContext:
    def test_unfiltered_passes_everything(self):
        framed, expected_ctx1 = interleaved_trace()
        ta = TraceAnalyzer()
        pairs = ta.process_words(bytes_to_words(framed))
        assert len(pairs) > len(expected_ctx1)
        assert ta.branches_filtered_by_context == 0

    def test_filter_keeps_only_monitored_context(self):
        framed, expected_ctx1 = interleaved_trace()
        ta = TraceAnalyzer(monitored_context=1)
        pairs = ta.process_words(bytes_to_words(framed))
        addresses = [b.address for _, b in pairs]
        assert addresses == expected_ctx1
        assert ta.branches_filtered_by_context > 0

    def test_filter_other_context(self):
        framed, expected_ctx1 = interleaved_trace()
        ta = TraceAnalyzer(monitored_context=2)
        pairs = ta.process_words(bytes_to_words(framed))
        assert all(b.address < 0x30000 for _, b in pairs)
        assert all(b.address >= 0x20000 for _, b in pairs)

    def test_current_context_tracked(self):
        framed, _ = interleaved_trace(num_slices=3)
        ta = TraceAnalyzer()
        ta.process_words(bytes_to_words(framed))
        assert ta.current_context == 1  # last slice has ctx 1


class TestIgmContext:
    def test_vectors_only_from_victim(self):
        framed, expected_ctx1 = interleaved_trace()
        monitored_addresses = sorted(set(expected_ctx1))
        igm = Igm(
            IgmConfig(
                mode=EncoderMode.SEQUENCE, window=4, monitored_context=1
            )
        )
        igm.configure(monitored_addresses)
        vectors = igm.push_words(bytes_to_words(framed))
        # Every ctx-1 target is in the table, so vector count follows
        # the ctx-1 stream length exactly.
        assert len(vectors) == len(expected_ctx1) - 4 + 1
        # The other process touches none of our table entries either
        # way, but the context filter must have dropped its branches
        # before the mapper (no misses counted for them).
        assert igm.trace_analyzer.branches_filtered_by_context > 0
