"""End-to-end detection parity between trace frontends.

The refactor's gate: the CoreSight and E-Trace grammars serialize the
same branch stream differently, but everything downstream of the
deframer — IGM address mapping, vector encoding, MCM inference,
thresholding — is shared.  So on a shared ELM+LSTM demo workload the
two frontends must produce the *same* verdicts (sequence numbers,
scores, anomalous flags) and the *same* IGM vectors, and the E-Trace
path must hold the batched-vs-loop dataplane equivalence the
CoreSight path already pins elsewhere.
"""

import numpy as np
import pytest

from repro.eval.metrics import build_demo_soc, demo_events
from repro.eval.parity import parity_failures, run_parity

EVENTS = 4_000


def _verdicts(records):
    return [
        (r.sequence_number, r.score, bool(r.anomalous)) for r in records
    ]


@pytest.mark.parametrize("kind", ("elm", "lstm"))
def test_detection_parity_between_frontends(kind):
    stream = demo_events(kind, 0, EVENTS, run_label=f"parity-{kind}")
    per_frontend = {}
    for frontend in ("coresight", "etrace"):
        soc = build_demo_soc(kind, seed=0, frontend=frontend)
        per_frontend[frontend] = _verdicts(soc.run_events(stream))
    assert per_frontend["coresight"], "vacuous parity (no inferences)"
    assert per_frontend["coresight"] == per_frontend["etrace"]


@pytest.mark.parametrize("kind", ("elm", "lstm"))
def test_etrace_batched_matches_loop_dataplane(kind):
    stream = demo_events(kind, 0, EVENTS, run_label=f"parity-{kind}")
    # Fresh SoC per run: run_events returns the MCM's lifetime record
    # log, so reusing one SoC would hand the second run both sessions.
    soc = build_demo_soc(kind, seed=0, frontend="etrace")
    batched = _verdicts(soc.run_events(stream, dataplane="batched"))
    soc = build_demo_soc(kind, seed=0, frontend="etrace")
    loop = _verdicts(soc.run_events(stream, dataplane="loop"))
    assert batched, "vacuous equivalence (no inferences)"
    assert batched == loop


def test_igm_vectors_are_identical_across_frontends():
    """Bare-pipeline vector capture: same values, same sequence."""
    from repro.eval.parity import _capture_vectors

    soc = build_demo_soc("lstm", seed=0)
    stream = demo_events("lstm", 0, EVENTS, run_label="parity-vectors")
    coresight = _capture_vectors("coresight", soc, stream)
    etrace = _capture_vectors("etrace", soc, stream)
    assert len(coresight) == len(etrace) > 0
    for left, right in zip(coresight, etrace):
        assert left.sequence_number == right.sequence_number
        assert left.trigger_address == right.trigger_address
        assert left.trigger_cycle == right.trigger_cycle
        assert np.array_equal(left.values, right.values)


def test_run_parity_reports_no_failures():
    """The eval-level gate (what CI's parity smoke runs) is clean."""
    result = run_parity(kinds=("lstm",), events=EVENTS, seed=0)
    assert result.parity
    assert parity_failures(result) == []
    digests = {
        (run.verdict_digest, run.vector_digest)
        for kind in result.kinds
        for run in kind.runs
    }
    assert len(digests) == 1  # both frontends hashed identically
