"""IGM: trace analyzer, P2S, address mapper, vector encoder, top level."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.coresight.driver import CoreSightDriver
from repro.coresight.ptm import encode_trace
from repro.coresight.tpiu import Tpiu
from repro.errors import EncoderConfigError, IgmError, MapperConfigError
from repro.igm.address_mapper import AddressMapper
from repro.igm.igm import Igm, IgmConfig, VECTORIZE_CYCLES
from repro.igm.p2s import P2sEntry, ParallelToSerial
from repro.igm.trace_analyzer import TraceAnalyzer
from repro.igm.vector_encoder import EncoderMode, VectorEncoder
from repro.utils.bitstream import bytes_to_words
from repro.workloads.cfg import BranchKind
from repro.workloads.dataset import Vocabulary, sliding_windows


def framed_words(events):
    driver = CoreSightDriver()
    driver.enable()
    return bytes_to_words(driver.trace_all(events))


class TestTraceAnalyzer:
    def test_decodes_full_stream(self, small_trace):
        events = small_trace.events[:1000]
        ta = TraceAnalyzer()
        pairs = ta.process_words(framed_words(events))
        taken = [
            e for e in events
            if not (e.kind is BranchKind.CONDITIONAL and not e.taken)
        ]
        assert [b.address for _, b in pairs] == [e.target for e in taken]

    def test_rate_limited_to_four_bytes_per_cycle(self, small_trace):
        events = small_trace.events[:1000]
        words = framed_words(events)
        ta = TraceAnalyzer()
        ta.process_words(words)
        total_bytes = sum(u.bytes_decoded for u in ta.units)
        assert total_bytes <= 4 * ta.cycles

    def test_backlog_bounded_by_frame(self, small_trace):
        words = framed_words(small_trace.events[:2000])
        ta = TraceAnalyzer()
        ta.process_words(words)
        assert ta.max_backlog <= 32

    def test_backpressure_holds_bytes(self):
        ta = TraceAnalyzer()
        words = framed_words([])  # nothing
        # push a word without decode permission
        ta.process_word(0x12345678, decode=False)
        assert ta.cycles == 1

    def test_lane_utilization_spread(self, small_trace):
        ta = TraceAnalyzer()
        ta.process_words(framed_words(small_trace.events[:1000]))
        counts = [u.bytes_decoded for u in ta.units]
        assert all(c > 0 for c in counts)


class TestP2s:
    def test_fifo_order(self):
        p2s = ParallelToSerial(depth=8)
        entries = [P2sEntry(i, False, 0) for i in range(4)]
        p2s.push_burst(entries)
        assert [p2s.pop().address for _ in range(4)] == [0, 1, 2, 3]

    def test_burst_limit(self):
        p2s = ParallelToSerial(depth=16)
        with pytest.raises(IgmError):
            p2s.push_burst([P2sEntry(i, False, 0) for i in range(5)])

    def test_overflow_counted(self):
        p2s = ParallelToSerial(depth=4)
        p2s.push_burst([P2sEntry(i, False, 0) for i in range(4)])
        p2s.push_burst([P2sEntry(9, False, 0)])
        assert p2s.drops == 1
        assert len(p2s) == 4

    def test_pop_empty_returns_none(self):
        assert ParallelToSerial().pop() is None

    def test_min_depth(self):
        with pytest.raises(IgmError):
            ParallelToSerial(depth=3)

    def test_max_occupancy_tracked(self):
        p2s = ParallelToSerial(depth=8)
        p2s.push_burst([P2sEntry(i, False, 0) for i in range(3)])
        assert p2s.max_occupancy == 3


class TestAddressMapper:
    def test_load_and_lookup(self):
        mapper = AddressMapper()
        mapper.load([0x3000, 0x1000, 0x2000])
        assert mapper.lookup(0x1000) == 1
        assert mapper.lookup(0x2000) == 2
        assert mapper.lookup(0x3000) == 3

    def test_miss_returns_none_and_counts(self):
        mapper = AddressMapper()
        mapper.load([0x1000])
        assert mapper.lookup(0x9999) is None
        assert mapper.misses == 1
        assert mapper.hits == 0

    def test_capacity_enforced(self):
        mapper = AddressMapper(capacity=2)
        with pytest.raises(MapperConfigError):
            mapper.load([1 << 2, 2 << 2, 3 << 2])

    def test_duplicates_collapse(self):
        mapper = AddressMapper()
        mapper.load([0x1000, 0x1000])
        assert mapper.size == 1

    def test_bad_address_rejected(self):
        mapper = AddressMapper()
        with pytest.raises(MapperConfigError):
            mapper.load([-4])

    def test_contains(self):
        mapper = AddressMapper()
        mapper.load([0x1000])
        assert 0x1000 in mapper
        assert 0x2000 not in mapper

    def test_deterministic_index_assignment(self):
        a, b = AddressMapper(), AddressMapper()
        a.load([0x30, 0x10])
        b.load([0x10, 0x30])
        assert a.entries == b.entries
        assert a.lookup(0x30) == b.lookup(0x30)


class TestVectorEncoder:
    def test_sequence_mode_window(self):
        encoder = VectorEncoder(EncoderMode.SEQUENCE, window=3,
                                vocabulary_size=8)
        outs = [encoder.push(i, 0, 0) for i in (1, 2, 3, 4)]
        assert outs[0] is None and outs[1] is None
        assert (outs[2].values == [1, 2, 3]).all()
        assert (outs[3].values == [2, 3, 4]).all()

    def test_histogram_mode_counts(self):
        encoder = VectorEncoder(EncoderMode.HISTOGRAM, window=4,
                                vocabulary_size=6)
        vec = None
        for i in (2, 2, 3, 5):
            vec = encoder.push(i, 0, 0)
        assert vec.values[2] == 2
        assert vec.values[3] == 1
        assert vec.values[5] == 1
        assert vec.values.sum() == 4

    def test_stride_respected(self):
        encoder = VectorEncoder(EncoderMode.SEQUENCE, window=2,
                                vocabulary_size=8, stride=3)
        emitted = [
            encoder.push(i % 7 + 1, 0, 0) is not None for i in range(12)
        ]
        assert sum(emitted) == 4

    def test_rejects_out_of_vocab_index(self):
        encoder = VectorEncoder(window=2, vocabulary_size=4)
        with pytest.raises(EncoderConfigError):
            encoder.push(4, 0, 0)
        with pytest.raises(EncoderConfigError):
            encoder.push(0, 0, 0)

    def test_sequence_numbers_increment(self):
        encoder = VectorEncoder(window=1, vocabulary_size=4)
        a = encoder.push(1, 0, 0)
        b = encoder.push(2, 0, 0)
        assert (a.sequence_number, b.sequence_number) == (0, 1)

    def test_trigger_metadata(self):
        encoder = VectorEncoder(window=1, vocabulary_size=4)
        vec = encoder.push(1, address=0xABC0, cycle=99)
        assert vec.trigger_address == 0xABC0
        assert vec.trigger_cycle == 99

    def test_reset_clears_history(self):
        encoder = VectorEncoder(window=2, vocabulary_size=4)
        encoder.push(1, 0, 0)
        encoder.reset()
        assert encoder.push(2, 0, 0) is None


class TestIgmTopLevel:
    def make_igm(self, program, window=6, count=24):
        igm = Igm(IgmConfig(mode=EncoderMode.SEQUENCE, window=window))
        igm.configure(program.monitored_call_targets(count=count))
        return igm

    def test_unconfigured_use_rejected(self):
        igm = Igm()
        with pytest.raises(IgmError):
            igm.push_word(0)

    def test_matches_golden_software_path(self, small_program, small_trace):
        igm = self.make_igm(small_program)
        monitored = igm.mapper.entries
        vectors = igm.push_words(framed_words(small_trace.events))
        vocab = Vocabulary.from_addresses(monitored)
        golden_ids = vocab.encode_events(small_trace.events)
        golden = sliding_windows(golden_ids, 6)
        assert len(vectors) == len(golden)
        assert all(
            (v.values == g).all() for v, g in zip(vectors, golden)
        )

    def test_no_loss_under_backpressure(self, small_program, small_trace):
        igm = self.make_igm(small_program)
        igm.push_words(framed_words(small_trace.events))
        assert igm.p2s.drops == 0

    def test_vector_cycles_increase(self, small_program, small_trace):
        igm = self.make_igm(small_program, window=2)
        vectors = igm.push_words(framed_words(small_trace.events))
        cycles = [v.trigger_cycle for v in vectors]
        assert cycles == sorted(cycles)

    def test_vectorize_latency_constant(self):
        assert VECTORIZE_CYCLES == 2
