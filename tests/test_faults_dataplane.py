"""Cross-dataplane fault determinism.

The same :class:`FaultPlan` seed must produce the *identical*
corruption pattern — and therefore identical inference records and
fault counters — whether the SoC runs its staged batched dataplane or
the legacy event loop.  This is the property that makes chaos results
comparable across execution modes.
"""

import pytest

from repro.eval.metrics import build_demo_soc, demo_events
from repro.faults import FaultKind, FaultPlan, FaultSpec
from repro.obs import MetricsRegistry

EVENTS = 3000
SEED = 11

FAULT_COUNTERS = (
    "faults.events.dropped",
    "faults.events.duplicated",
    "faults.events.corrupted",
    "faults.vectors.dropped",
)


def event_plan(seed=SEED):
    return FaultPlan(
        seed=seed,
        specs=(
            FaultSpec(FaultKind.EVENT_DROP, rate=0.01),
            FaultSpec(FaultKind.EVENT_DUP, rate=0.01),
            FaultSpec(FaultKind.EVENT_CORRUPT, rate=0.01),
            FaultSpec(FaultKind.FIFO_OVERFLOW, rate=0.003, burst=4),
        ),
    )


def zero_plan(seed=SEED):
    return FaultPlan(
        seed=seed,
        specs=(
            FaultSpec(FaultKind.EVENT_DROP, rate=0.0),
            FaultSpec(FaultKind.EVENT_CORRUPT, rate=0.0),
            FaultSpec(FaultKind.FIFO_OVERFLOW, rate=0.0),
        ),
    )


def record_key(record):
    return (
        record.sequence_number,
        record.arrival_ns,
        record.start_ns,
        record.done_ns,
        float(record.score),
        record.anomalous,
    )


def run_soc(dataplane, fault_plan, seed=SEED):
    registry = MetricsRegistry()
    soc = build_demo_soc(
        "lstm", seed=0, metrics=registry, fault_plan=fault_plan
    )
    events = demo_events("lstm", 0, EVENTS, run_label="dataplane-faults")
    records = soc.run_events(events, dataplane=dataplane)
    counters = registry.snapshot()["counters"]
    faults = {
        name: counters.get(name, 0) for name in FAULT_COUNTERS
    }
    return [record_key(r) for r in records], faults


class TestCrossDataplaneDeterminism:
    def test_same_seed_same_records_and_counters(self):
        batched_records, batched_faults = run_soc("batched", event_plan())
        loop_records, loop_faults = run_soc("loop", event_plan())
        assert batched_faults == loop_faults
        assert sum(batched_faults.values()) > 0  # faults actually fired
        assert batched_records == loop_records

    def test_different_seeds_differ(self):
        a_records, a_faults = run_soc("batched", event_plan(seed=1))
        b_records, b_faults = run_soc("batched", event_plan(seed=2))
        assert a_records != b_records or a_faults != b_faults

    def test_faults_change_output(self):
        clean_records, _ = run_soc("batched", None)
        faulty_records, faults = run_soc("batched", event_plan())
        assert faults["faults.events.dropped"] > 0
        assert clean_records != faulty_records


class TestZeroRatePassthrough:
    @pytest.mark.parametrize("dataplane", ["batched", "loop"])
    def test_zero_rate_plan_is_identity(self, dataplane):
        baseline, _ = run_soc(dataplane, None)
        gated, faults = run_soc(dataplane, zero_plan())
        assert all(value == 0 for value in faults.values())
        assert gated == baseline
