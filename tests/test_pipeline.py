"""Unit tests for the staged dataplane (repro.pipeline).

Each batched stage is checked *differentially* against the per-event
reference component it replaces (Ptm, Tpiu, PtmFifoModel, mapper +
encoder loop), under randomized event streams and randomized chunk
boundaries — the carry state across batches is where the bugs live.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.coresight.ptm import Ptm, PtmConfig
from repro.coresight.tpiu import Tpiu
from repro.errors import SocConfigError
from repro.igm.address_mapper import AddressMapper
from repro.igm.vector_encoder import EncoderMode, InputVector, VectorEncoder
from repro.obs import MetricsRegistry
from repro.pipeline import (
    DeliverStage,
    EventBatch,
    FifoFlush,
    IgmStage,
    Pipeline,
    Port,
    PortPolicy,
    PtmEncodeStage,
    PtmFifoStage,
    Stage,
    TpiuFrameStage,
    TraceBatch,
    build_trace_pipeline,
)
from repro.soc.cpu import PtmFifoModel
from repro.workloads.cfg import BranchEvent, BranchKind


def random_events(
    rng: np.random.Generator,
    count: int,
    syscall_rate: float = 0.05,
    atom_rate: float = 0.4,
) -> list:
    """A random but PTM-legal branch stream with mixed diff widths."""
    events = []
    cycle = 0
    address = 0x1000
    for _ in range(count):
        cycle += int(rng.integers(1, 2000))
        roll = rng.random()
        if roll < atom_rate:
            kind, taken = BranchKind.CONDITIONAL, False
            target = address + 4  # not-taken: no address packet
        elif roll < atom_rate + syscall_rate:
            kind, taken = BranchKind.SYSCALL, True
            target = int(rng.integers(0, 1 << 30)) * 4
        else:
            kind, taken = BranchKind.CALL, True
            # Mix short and long jumps so every prefix-compression
            # width (1..5 bytes) occurs.
            span = int(rng.choice([1 << 4, 1 << 10, 1 << 18, 1 << 25, 1 << 29]))
            target = int(rng.integers(0, span)) * 4 % (1 << 32)
        source = address
        events.append(
            BranchEvent(
                cycle=cycle, source=source, target=target,
                kind=kind, taken=taken,
            )
        )
        if taken:
            address = target
        else:
            address += 4
    return events


def random_chunks(rng: np.random.Generator, items, max_chunk: int = 97):
    """Split a list at random boundaries (including size-1 chunks)."""
    out = []
    start = 0
    while start < len(items):
        size = int(rng.integers(1, max_chunk))
        out.append(items[start : start + size])
        start += size
    return out


# ----------------------------------------------------------------------
# Ports
# ----------------------------------------------------------------------


class TestPort:
    def test_fifo_order(self):
        port = Port("p", capacity=3)
        for item in ("a", "b", "c"):
            assert port.put(item)
        assert [port.get(), port.get(), port.get()] == ["a", "b", "c"]
        assert port.get() is None
        assert port.empty

    def test_stall_policy_backpressure(self):
        port = Port("p", capacity=2, policy=PortPolicy.STALL)
        assert port.put(1) and port.put(2)
        assert port.full
        assert not port.put(3)          # refused, not lost
        assert port.stalls == 1
        assert port.drops == 0
        assert port.get() == 1          # nothing was dropped
        assert port.put(3)              # space again after a get
        assert [port.get(), port.get()] == [2, 3]

    def test_drop_policy_loses_newest(self):
        port = Port("p", capacity=2, policy=PortPolicy.DROP)
        assert port.put(1) and port.put(2)
        assert not port.put(3)
        assert port.drops == 1
        assert port.stalls == 0
        assert [port.get(), port.get()] == [1, 2]

    def test_clear(self):
        port = Port("p", capacity=4)
        port.put(1)
        port.put(2)
        port.clear()
        assert port.empty and port.depth == 0

    def test_bad_capacity_rejected(self):
        with pytest.raises(SocConfigError):
            Port("p", capacity=0)

    def test_metrics_threaded(self):
        registry = MetricsRegistry()
        port = Port("x", capacity=1, metrics=registry)
        port.put(1)
        port.put(2)
        counters = registry.snapshot()["counters"]
        assert counters["pipeline.port.x.batches_in"] == 1
        assert counters["pipeline.port.x.stalls"] == 1


# ----------------------------------------------------------------------
# Stage protocol
# ----------------------------------------------------------------------


def test_concrete_stages_satisfy_protocol():
    mapper = AddressMapper()
    mapper.load([0x1000, 0x2000])
    encoder = VectorEncoder(window=2, vocabulary_size=3)
    stages = [
        PtmEncodeStage(),
        TpiuFrameStage(),
        PtmFifoStage(),
        IgmStage(mapper, encoder),
        DeliverStage(lambda v, t: None),
    ]
    for stage in stages:
        assert isinstance(stage, Stage)
    assert len({stage.name for stage in stages}) == len(stages)


# ----------------------------------------------------------------------
# PTM encode stage vs the reference Ptm
# ----------------------------------------------------------------------


class TestPtmEncodeStage:
    @pytest.mark.parametrize(
        "config",
        [
            PtmConfig(),
            PtmConfig(sync_interval_bytes=64),
            PtmConfig(sync_interval_bytes=64, timestamps_enabled=True),
            PtmConfig(sync_interval_bytes=128, timestamps_enabled=True),
        ],
        ids=["default", "dense-sync", "timestamps", "ts-128"],
    )
    def test_matches_reference_ptm(self, config):
        rng = np.random.default_rng(7)
        for trial in range(8):
            events = random_events(rng, int(rng.integers(50, 400)))
            reference = Ptm(config)
            expect = [len(reference.feed(e)) for e in events]
            expect_tail = len(reference.flush())

            stage = PtmEncodeStage(config=config)
            assert stage._fast, "these configs must use the fast path"
            got: list = []
            for chunk in random_chunks(rng, events):
                batch = TraceBatch(events=EventBatch.from_events(chunk))
                got.extend(stage.process(batch).ptm_bytes.tolist())
            tail = stage.flush()
            assert got == expect, f"trial {trial}: byte streams diverge"
            assert tail.tail_ptm_bytes == expect_tail

    def test_reference_fallback_path(self):
        # A sync interval small enough to retrigger within one burst
        # falls back to driving a real Ptm — still exact.
        config = PtmConfig(sync_interval_bytes=16)
        stage = PtmEncodeStage(config=config)
        assert not stage._fast
        rng = np.random.default_rng(3)
        events = random_events(rng, 200)
        reference = Ptm(config)
        expect = [len(reference.feed(e)) for e in events]
        expect_tail = len(reference.flush())
        got: list = []
        for chunk in random_chunks(rng, events):
            batch = TraceBatch(events=EventBatch.from_events(chunk))
            got.extend(stage.process(batch).ptm_bytes.tolist())
        assert got == expect
        assert stage.flush().tail_ptm_bytes == expect_tail

    def test_counters_match_reference(self):
        rng = np.random.default_rng(11)
        events = random_events(rng, 300)
        ref_registry = MetricsRegistry()
        reference = Ptm(PtmConfig(), metrics=ref_registry)
        for event in events:
            reference.feed(event)
        reference.flush()
        stage_registry = MetricsRegistry()
        stage = PtmEncodeStage(metrics=stage_registry)
        for chunk in random_chunks(rng, events):
            stage.process(TraceBatch(events=EventBatch.from_events(chunk)))
        stage.flush()
        ref_counters = ref_registry.snapshot()["counters"]
        got_counters = stage_registry.snapshot()["counters"]
        for name, value in ref_counters.items():
            assert got_counters.get(name) == value, name

    def test_reset_restarts_session(self):
        rng = np.random.default_rng(5)
        events = random_events(rng, 120)
        stage = PtmEncodeStage()
        first = stage.process(
            TraceBatch(events=EventBatch.from_events(events))
        ).ptm_bytes.copy()
        stage.flush()
        stage.reset()
        second = stage.process(
            TraceBatch(events=EventBatch.from_events(events))
        ).ptm_bytes
        assert np.array_equal(first, second)


# ----------------------------------------------------------------------
# TPIU framing stage vs the reference Tpiu
# ----------------------------------------------------------------------


class TestTpiuFrameStage:
    @pytest.mark.parametrize("sync_period", [1, 3, 64])
    def test_matches_reference_tpiu(self, sync_period):
        rng = np.random.default_rng(13)
        ptm_bytes = rng.integers(0, 9, size=500)
        reference = Tpiu(sync_period=sync_period)
        expect = [
            len(reference.push(bytes(int(n)))) for n in ptm_bytes
        ]
        expect_tail = len(reference.flush())

        stage = TpiuFrameStage(sync_period=sync_period)
        got: list = []
        start = 0
        while start < len(ptm_bytes):
            size = int(rng.integers(1, 64))
            chunk = ptm_bytes[start : start + size]
            batch = TraceBatch()
            batch.events = EventBatch.from_events([])  # placeholder
            batch.events.cycle = np.zeros(len(chunk), dtype=np.int64)
            batch.ptm_bytes = chunk.astype(np.int64)
            got.extend(stage.process(batch).frame_bytes.tolist())
            start += size
        tail = stage.flush()
        assert got == expect
        assert tail.tail_frame_bytes == expect_tail


# ----------------------------------------------------------------------
# PTM FIFO stage vs the reference PtmFifoModel
# ----------------------------------------------------------------------


class TestPtmFifoStage:
    def test_matches_reference_model(self):
        rng = np.random.default_rng(17)
        n = 600
        frame_bytes = rng.integers(0, 40, size=n).astype(np.int64)
        times = np.cumsum(rng.integers(1, 500, size=n)).astype(np.float64)

        reference = PtmFifoModel(threshold_bytes=176)
        expect = []
        for t, b in zip(times, frame_bytes):
            done = reference.push(float(t), int(b))
            if done is not None:
                expect.append(done)
        # reference-loop tail: the push's own drain handle is kept
        # (a threshold-crossing tail push drains everything), and the
        # explicit flush covers the below-threshold remainder.
        tail_done = reference.push(float(times[-1]), 13)
        if tail_done is None:
            tail_done = reference.flush(float(times[-1]))

        stage = PtmFifoStage(threshold_bytes=176)
        got = []
        start = 0
        while start < n:
            size = int(rng.integers(1, 80))
            batch = TraceBatch()
            batch.events = EventBatch.from_events([])
            batch.events.time_ns = times[start : start + size]
            batch.events.cycle = np.zeros(
                len(batch.events.time_ns), dtype=np.int64
            )
            batch.frame_bytes = frame_bytes[start : start + size]
            out = stage.process(batch)
            got.extend(f.done_ns for f in out.flushes)
            start += size
        tail = TraceBatch.tail_marker()
        tail.tail_frame_bytes = 13
        tail = stage.process(tail)
        assert got == expect
        if tail_done is not None:
            assert [f.done_ns for f in tail.flushes] == [tail_done]

    def test_tail_threshold_crossing_still_delivers(self):
        # Regression: an end-of-session push that itself crosses the
        # threshold used to drop its drain handle, losing the
        # session's pending vectors (the E-Trace/ELM parity workload
        # hit this).  The tail drain must always deliver.
        stage = PtmFifoStage(threshold_bytes=16)
        tail = TraceBatch.tail_marker()
        tail.tail_frame_bytes = 20
        tail = stage.process(tail)
        assert len(tail.flushes) == 1
        assert tail.flushes[0].delivers
        assert tail.flushes[0].amount == 20


# ----------------------------------------------------------------------
# IGM stage vs the mapper + encoder loop
# ----------------------------------------------------------------------


def reference_igm(events, addresses, mode, window, vocabulary):
    mapper = AddressMapper()
    mapper.load(addresses)
    encoder = VectorEncoder(
        mode=mode, window=window, vocabulary_size=vocabulary
    )
    vectors = []
    for event in events:
        index = mapper.lookup(event.target)
        if index is not None:
            vector = encoder.push(
                index=index, address=event.target, cycle=event.cycle
            )
            if vector is not None:
                vectors.append(vector)
    return vectors


class TestIgmStage:
    @pytest.mark.parametrize(
        "mode,window",
        [
            (EncoderMode.SEQUENCE, 1),
            (EncoderMode.SEQUENCE, 4),
            (EncoderMode.HISTOGRAM, 8),
        ],
    )
    def test_matches_reference_loop(self, mode, window):
        rng = np.random.default_rng(19)
        addresses = sorted(
            int(a) * 4 for a in rng.choice(5000, size=24, replace=False)
        )
        events = random_events(rng, 800)
        # splice monitored targets in so the mapper hits often
        for i in range(0, len(events), 3):
            e = events[i]
            events[i] = BranchEvent(
                cycle=e.cycle,
                source=e.source,
                target=int(rng.choice(addresses)),
                kind=BranchKind.CALL,
                taken=True,
            )
        vocabulary = len(addresses) + 1
        expect = reference_igm(events, addresses, mode, window, vocabulary)

        mapper = AddressMapper()
        mapper.load(addresses)
        encoder = VectorEncoder(
            mode=mode, window=window, vocabulary_size=vocabulary
        )
        stage = IgmStage(mapper, encoder)
        got = []
        for chunk in random_chunks(rng, events):
            batch = TraceBatch(events=EventBatch.from_events(chunk))
            got.extend(stage.process(batch).vectors)
        assert len(got) == len(expect)
        for a, b in zip(got, expect):
            assert np.array_equal(a.values, b.values)
            assert a.sequence_number == b.sequence_number
            assert a.trigger_address == b.trigger_address
            assert a.trigger_cycle == b.trigger_cycle
        # the wrapped encoder tracks the stage's progress
        assert encoder.vectors_emitted == len(expect)

    def test_rejects_strided_encoders(self):
        mapper = AddressMapper()
        mapper.load([0x1000])
        encoder = VectorEncoder(window=4, vocabulary_size=8, stride=2)
        with pytest.raises(ValueError):
            IgmStage(mapper, encoder)


# ----------------------------------------------------------------------
# Deliver stage
# ----------------------------------------------------------------------


def make_vector(seq: int, cycle: int = 0) -> InputVector:
    return InputVector(
        values=np.array([1], dtype=np.int64),
        sequence_number=seq,
        trigger_address=0x1000,
        trigger_cycle=cycle,
    )


def vector_batch(positions, flushes, count=None):
    batch = TraceBatch()
    batch.events = EventBatch.from_events([])
    batch.events.cycle = np.zeros(
        count or (max(positions) + 1 if positions else 1), dtype=np.int64
    )
    batch.vectors = [make_vector(i) for i in range(len(positions))]
    batch.vector_event_pos = np.asarray(positions, dtype=np.int64)
    batch.flushes = flushes
    return batch


class TestDeliverStage:
    def test_vectors_grouped_by_flush(self):
        delivered = []
        stage = DeliverStage(
            lambda v, t: delivered.append((v.sequence_number, t)),
            igm_pipe_ns=24.0,
        )
        flushes = [
            FifoFlush(event_pos=3, done_ns=1000.0, amount=176),
            FifoFlush(event_pos=7, done_ns=2000.0, amount=176),
        ]
        stage.process(vector_batch([1, 3, 5, 9], flushes, count=12))
        # pos 1,3 ride the first drain; pos 5 the second; pos 9 pends
        assert delivered == [
            (0, 1024.0), (1, 1024.0), (2, 2024.0),
        ]
        # a later batch's first flush carries the pending vector first
        stage.process(
            vector_batch([0], [FifoFlush(event_pos=0, done_ns=3000.0,
                                         amount=176)], count=2)
        )
        assert delivered[3:] == [(3, 3024.0), (0, 3024.0)]

    def test_tail_flush_without_delivery_loses_pending(self):
        registry = MetricsRegistry()
        delivered = []
        stage = DeliverStage(
            lambda v, t: delivered.append(v), metrics=registry
        )
        stage.process(vector_batch([0, 1], [], count=4))
        tail = TraceBatch.tail_marker()
        tail.flushes = [
            FifoFlush(event_pos=0, done_ns=10.0, amount=200,
                      delivers=False)
        ]
        stage.process(tail)
        assert delivered == []
        counters = registry.snapshot()["counters"]
        assert counters["pipeline.deliver.lost_vectors"] == 2


# ----------------------------------------------------------------------
# Pipeline assembler / scheduler
# ----------------------------------------------------------------------


class TestPipeline:
    def _run(self, events, **kwargs) -> list:
        mapper = AddressMapper()
        addresses = sorted({e.target for e in events if e.taken})[:20]
        mapper.load(addresses)
        encoder = VectorEncoder(
            window=2, vocabulary_size=mapper.size + 1
        )
        delivered = []
        pipeline = build_trace_pipeline(
            mapper,
            encoder,
            lambda v, t: delivered.append((v.sequence_number, t)),
            **kwargs,
        )
        pipeline.run(events)
        return delivered

    def test_chunking_and_port_capacity_invariant(self):
        rng = np.random.default_rng(23)
        events = random_events(rng, 2000, atom_rate=0.2)
        baseline = self._run(events, chunk_events=100000)
        for chunk_events, port_capacity in ((7, 1), (64, 1), (256, 4)):
            got = self._run(
                events,
                chunk_events=chunk_events,
                port_capacity=port_capacity,
            )
            assert got == baseline, (
                f"chunk={chunk_events} capacity={port_capacity}"
            )

    def test_backpressure_counted_with_tiny_ports(self):
        rng = np.random.default_rng(29)
        events = random_events(rng, 1200, atom_rate=0.2)
        registry = MetricsRegistry()
        mapper = AddressMapper()
        mapper.load(sorted({e.target for e in events if e.taken})[:10])
        encoder = VectorEncoder(window=1, vocabulary_size=mapper.size + 1)
        pipeline = build_trace_pipeline(
            mapper, encoder, lambda v, t: None,
            metrics=registry, chunk_events=16, port_capacity=1,
        )
        pipeline.run(events)
        counters = registry.snapshot()["counters"]
        assert counters["pipeline.chunks"] == (1200 + 15) // 16
        # every admitted chunk flowed through every stage port
        for name in ("ptm", "tpiu", "ptm_fifo", "igm", "deliver"):
            assert counters[f"pipeline.port.{name}.batches_in"] >= 75
        # nothing may ever be dropped on the STALL trace path
        for name in ("ptm", "tpiu", "ptm_fifo", "igm", "deliver"):
            assert counters.get(f"pipeline.port.{name}.drops", 0) == 0

    def test_reset_gives_fresh_session(self):
        rng = np.random.default_rng(31)
        events = random_events(rng, 600, atom_rate=0.2)
        mapper = AddressMapper()
        mapper.load(sorted({e.target for e in events if e.taken})[:10])
        encoder = VectorEncoder(window=2, vocabulary_size=mapper.size + 1)
        delivered = []
        pipeline = build_trace_pipeline(
            mapper, encoder, lambda v, t: delivered.append((v, t))
        )
        pipeline.run(events)
        first = list(delivered)
        delivered.clear()
        pipeline.reset()
        encoder.reset(reset_sequence=True)
        pipeline.run(events)
        assert [(v.sequence_number, t) for v, t in delivered] == [
            (v.sequence_number, t) for v, t in first
        ]

    def test_empty_stage_list_rejected(self):
        with pytest.raises(SocConfigError):
            Pipeline([])

    def test_bad_chunk_size_rejected(self):
        with pytest.raises(SocConfigError):
            Pipeline([PtmEncodeStage()], chunk_events=0)
