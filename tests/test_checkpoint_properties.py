"""Property tests: checkpoint capture/restore is a lossless snapshot.

The durability layer (crash recovery) and the fleet (tenant migration
handoff) both lean on :mod:`repro.durability.checkpoint` documents
being *complete*: a manager restored from a captured document must be
behaviourally indistinguishable from the original — the very next
round's verdicts byte-identical — for **arbitrary** tenant mixes and
health states, not just the happy paths the example tests pin.

Hypothesis drives the topology (tenant count, rounds of history) and
the health mix (HEALTHY / DEGRADED mid-probation / QUARANTINED) and
the properties assert:

1. full-checkpoint round trip: a fresh manager restored from the
   document produces byte-identical records and health on the next
   round;
2. per-tenant round trip (the migration handoff unit): a tenant's
   document restored into a runtime on a *different* manager yields
   byte-identical next-round records for that tenant;
3. mismatched restores are refused as corruption, never absorbed.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.durability.checkpoint import (
    capture_checkpoint,
    capture_tenant_state,
    restore_checkpoint,
    restore_tenant_state,
)
from repro.errors import JournalCorruptionError
from repro.eval.metrics import build_demo_deployments, demo_events
from repro.eval.recovery import record_signature
from repro.fleet import demo_factory
from repro.obs import MetricsRegistry
from repro.soc.manager import SocManager, TenantHealth

KIND = "lstm"
EVENTS = 120  # small rounds: each example builds + runs two managers

HEALTH_CHOICES = ("healthy", "degraded", "quarantined")


@st.composite
def scenarios(draw):
    num_tenants = draw(st.integers(2, 4))
    rounds = draw(st.integers(1, 2))
    mix = draw(
        st.lists(
            st.sampled_from(HEALTH_CHOICES),
            min_size=num_tenants,
            max_size=num_tenants,
        )
    )
    return num_tenants, rounds, mix


def _traces(num_tenants, round_index):
    return {
        f"tenant{i}": demo_events(
            KIND, 0, EVENTS, run_label=f"ckpt-t{i}-r{round_index}"
        )
        for i in range(num_tenants)
    }


def _manager(num_tenants):
    return SocManager(
        build_demo_deployments(num_tenants=num_tenants, kind=KIND),
        metrics=MetricsRegistry(),
    )


def _apply_mix(manager, mix):
    """Force the drawn health states at a round boundary."""
    for runtime, state in zip(manager.tenants, mix):
        if state == "quarantined":
            manager._quarantine(runtime)
        elif state == "degraded":
            runtime.health = TenantHealth.DEGRADED
            runtime._bad_rounds = 1
            runtime.crashes = 1


def _log(manager):
    return {
        runtime.name: [record_signature(r) for r in runtime.mcm.records]
        for runtime in manager.tenants
    }


class TestFullCheckpointRoundTrip:
    @given(scenario=scenarios())
    @settings(max_examples=20, deadline=None)
    def test_restored_manager_is_byte_identical(self, scenario):
        num_tenants, rounds, mix = scenario
        original = _manager(num_tenants)
        for r in range(rounds):
            original.run_events(_traces(num_tenants, r))
        _apply_mix(original, mix)

        document = capture_checkpoint(original)
        restored = _manager(num_tenants)
        restore_checkpoint(restored, document)

        assert restored.next_round == original.next_round
        assert restored.health() == original.health()
        # The next round — quarantine skips, probation clocks, record
        # numbering, carry state — must evolve identically.
        traces = _traces(num_tenants, rounds)
        original.run_events(traces)
        restored.run_events(traces)
        assert _log(restored) == _log(original)
        assert restored.health() == original.health()

    @given(scenario=scenarios())
    @settings(max_examples=10, deadline=None)
    def test_document_survives_json(self, scenario):
        # The checkpoint rides in one JSON journal record; every drawn
        # state must survive a JSON round trip unchanged.
        import json

        num_tenants, rounds, mix = scenario
        manager = _manager(num_tenants)
        for r in range(rounds):
            manager.run_events(_traces(num_tenants, r))
        _apply_mix(manager, mix)
        document = capture_checkpoint(manager)
        restored = _manager(num_tenants)
        restore_checkpoint(restored, json.loads(json.dumps(document)))
        traces = _traces(num_tenants, rounds)
        manager.run_events(traces)
        restored.run_events(traces)
        assert _log(restored) == _log(manager)


class TestTenantHandoff:
    """The per-tenant document is the fleet's migration unit."""

    @given(
        scenario=scenarios(), tenant_index=st.integers(0, 3)
    )
    @settings(max_examples=15, deadline=None)
    def test_tenant_document_round_trips_across_managers(
        self, scenario, tenant_index
    ):
        num_tenants, rounds, mix = scenario
        tenant_index %= num_tenants
        name = f"tenant{tenant_index}"
        original = _manager(num_tenants)
        for r in range(rounds):
            original.run_events(_traces(num_tenants, r))
        _apply_mix(original, mix)

        # Adopt the captured tenant on a fresh single-tenant manager,
        # the way a sibling shard does after an eviction.
        document = capture_tenant_state(original.tenant(name))
        adopter = SocManager(
            demo_factory([name], kind=KIND),
            metrics=MetricsRegistry(),
        )
        restore_tenant_state(adopter.tenant(name), document)

        # Feed only this tenant on both sides: its records (numbering,
        # scores, verdicts, timestamps) must continue identically.
        trace = demo_events(
            KIND, 0, EVENTS, run_label=f"ckpt-handoff-{name}"
        )
        original.run_events({name: trace})
        adopter.run_events({name: trace})
        assert _log(adopter)[name] == _log(original)[name]
        assert (
            adopter.tenant(name).health is original.tenant(name).health
        )


class TestMismatchRefused:
    def test_tenant_name_mismatch_is_corruption(self):
        manager = _manager(2)
        document = capture_tenant_state(manager.tenant("tenant0"))
        with pytest.raises(JournalCorruptionError):
            restore_tenant_state(manager.tenant("tenant1"), document)

    def test_topology_mismatch_is_corruption(self):
        manager = _manager(2)
        document = capture_checkpoint(manager)
        with pytest.raises(JournalCorruptionError):
            restore_checkpoint(_manager(3), document)

    def test_version_mismatch_is_corruption(self):
        manager = _manager(2)
        document = dict(capture_checkpoint(manager), version=99)
        with pytest.raises(JournalCorruptionError):
            restore_checkpoint(_manager(2), document)
