"""Experiment preparation: bundles, caching, SoC wiring."""

import numpy as np
import pytest

from repro.eval.prep import (
    ELM_WINDOW,
    LSTM_SMOOTHING,
    ModelBundle,
    _rare_half,
    get_bundle,
    get_program,
    make_miaow,
    make_ml_miaow,
)


class TestRareHalf:
    def test_returns_less_frequent_ids(self):
        ids = np.array([1] * 50 + [2] * 30 + [3] * 5 + [4] * 2)
        rare = set(_rare_half(ids).tolist())
        assert 4 in rare and 3 in rare
        assert 1 not in rare

    def test_degenerate_repertoire(self):
        ids = np.array([7, 7, 7])
        assert set(_rare_half(ids).tolist()) == {7}


class TestEngines:
    def test_miaow_single_cu(self):
        gpu = make_miaow()
        assert gpu.num_cus == 1
        assert gpu.name == "MIAOW"

    def test_ml_miaow_five_cus(self):
        gpu = make_ml_miaow()
        assert gpu.num_cus == 5
        assert gpu.name == "ML-MIAOW"


class TestBundles:
    def test_program_cache(self):
        assert get_program("gcc") is get_program("403.gcc")

    def test_elm_bundle_contents(self):
        bundle = get_bundle("403.gcc", "elm")
        assert bundle.kind == "elm"
        assert bundle.window == ELM_WINDOW
        assert bundle.elm is not None and bundle.elm.fitted
        assert bundle.dictionary is not None
        assert len(bundle.normal_ids) > 1000
        assert bundle.detector.threshold > 0
        # gadget pool holds legitimate (training-observed) IDs that are
        # rare in the trial stream
        assert len(bundle.gadget_pool) >= 2
        assert all(0 < g <= 32 for g in bundle.gadget_pool)
        hot = np.unique(
            bundle.normal_ids, return_counts=True
        )
        hottest = int(hot[0][np.argmax(hot[1])])
        assert hottest not in set(bundle.gadget_pool.tolist())

    def test_bundle_cached(self):
        assert get_bundle("403.gcc", "elm") is get_bundle("gcc", "elm")

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            get_bundle("403.gcc", "svm")

    def test_elm_soc_wiring(self):
        bundle = get_bundle("403.gcc", "elm")
        soc = bundle.make_soc(make_ml_miaow(), execute_on_gpu=False)
        assert soc.config.model_kind == "elm"
        assert soc.config.window == ELM_WINDOW
        assert soc.mcm.converter.kind == "elm"
        assert soc.mapper.size == len(bundle.monitored_addresses)

    def test_elm_soc_runs_stream(self):
        bundle = get_bundle("403.gcc", "elm")
        soc = bundle.make_soc(make_ml_miaow(), execute_on_gpu=False)
        interval_ns = bundle.mean_interval_us * 1e3
        ids = bundle.normal_ids[:80]
        times = np.arange(len(ids)) * interval_ns
        records = soc.run_monitored_stream(ids, times)
        assert len(records) == len(ids) - ELM_WINDOW + 1
        # sparse syscall arrivals never queue
        assert all(r.queue_ns == 0 for r in records)

    def test_fresh_soc_per_engine_isolated(self):
        bundle = get_bundle("403.gcc", "elm")
        soc_a = bundle.make_soc(make_miaow(), execute_on_gpu=False)
        soc_b = bundle.make_soc(make_ml_miaow(), execute_on_gpu=False)
        assert soc_a.mcm is not soc_b.mcm
        assert soc_a.mcm.driver.gpu is not soc_b.mcm.driver.gpu
