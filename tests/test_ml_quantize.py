"""Fixed-point ELM deployment path."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.ml.detector import roc_auc
from repro.ml.elm import ExtremeLearningMachine
from repro.ml.quantize import (
    QuantizedElm,
    SIGMOID_LUT_ENTRIES,
    SIGMOID_LUT_RANGE,
    build_sigmoid_lut,
    quantization_agreement,
    sigmoid_lut_lookup,
)
from repro.utils.fixed_point import Q4_12, Q8_8, Q16_16


class TestSigmoidLut:
    def test_monotone(self):
        lut = build_sigmoid_lut(Q8_8)
        assert (np.diff(lut) >= 0).all()

    def test_endpoints(self):
        lut = build_sigmoid_lut(Q8_8)
        assert Q8_8.dequantize(int(lut[0])) < 0.01
        assert Q8_8.dequantize(int(lut[-1])) > 0.99

    def test_midpoint_half(self):
        lut = build_sigmoid_lut(Q16_16)
        mid = Q16_16.dequantize(int(lut[SIGMOID_LUT_ENTRIES // 2]))
        assert mid == pytest.approx(0.5, abs=0.05)

    def test_lookup_matches_float_sigmoid(self):
        fmt = Q8_8
        lut = build_sigmoid_lut(fmt)
        x = np.linspace(-6, 6, 101)
        raw = fmt.quantize_array(x)
        approx = fmt.dequantize_array(sigmoid_lut_lookup(raw, lut, fmt))
        exact = 1.0 / (1.0 + np.exp(-x))
        assert np.abs(approx - exact).max() < 0.05

    def test_lookup_saturates_out_of_range(self):
        fmt = Q8_8
        lut = build_sigmoid_lut(fmt)
        raw = fmt.quantize_array(np.array([-100.0, 100.0]))
        out = sigmoid_lut_lookup(raw, lut, fmt)
        assert out[0] == lut[0]
        assert out[1] == lut[-1]


@pytest.fixture(scope="module")
def fitted_elm():
    rng = np.random.default_rng(3)
    centers = rng.random((4, 24))
    rows = centers[rng.integers(0, 4, 400)] + rng.normal(
        0, 0.05, (400, 24)
    )
    model = ExtremeLearningMachine(input_dim=24, hidden_dim=64, seed=1)
    return model.fit(rows), rows, rng


class TestQuantizedElm:
    def test_requires_fitted_model(self):
        with pytest.raises(ModelError):
            QuantizedElm.from_model(
                ExtremeLearningMachine(input_dim=4, hidden_dim=8)
            )

    def test_scores_track_float(self, fitted_elm):
        model, rows, _ = fitted_elm
        quantized = QuantizedElm.from_model(model)
        float_scores = model.score_mahalanobis(rows[:50])
        fixed_scores = quantized.score(rows[:50])
        correlation = np.corrcoef(float_scores, fixed_scores)[0, 1]
        assert correlation > 0.9

    def test_detection_survives_quantization(self, fitted_elm):
        model, rows, rng = fitted_elm
        anomalies = rng.random((60, 24))  # off the cluster manifold
        quantized = QuantizedElm.from_model(model)
        auc_float = roc_auc(
            model.score_mahalanobis(rows[:100]),
            model.score_mahalanobis(anomalies),
        )
        auc_fixed = roc_auc(
            quantized.score(rows[:100]), quantized.score(anomalies)
        )
        assert auc_fixed > auc_float - 0.1
        assert auc_fixed > 0.8

    def test_rank_agreement_high(self, fitted_elm):
        model, rows, _ = fitted_elm
        assert quantization_agreement(model, rows[:80]) > 0.9

    def test_coarser_format_degrades_agreement(self, fitted_elm):
        from repro.utils.fixed_point import FixedPointFormat

        model, rows, _ = fitted_elm
        fine = quantization_agreement(model, rows[:80], Q4_12, Q8_8)
        coarse = quantization_agreement(
            model, rows[:80],
            FixedPointFormat(2, 4), FixedPointFormat(4, 4),
        )
        assert coarse <= fine + 1e-9

    def test_memory_savings(self, fitted_elm):
        model, _, _ = fitted_elm
        quantized = QuantizedElm.from_model(model, Q4_12, Q8_8)
        # ~50% from 16-bit weights, slightly less because the hidden
        # statistics stay in 32-bit Q16.16 and the mean is 16-bit.
        assert 0.4 < quantized.memory_savings_vs_f32() < 0.55
        assert quantized.weight_bits % 16 == 0

    def test_feature_width_checked(self, fitted_elm):
        model, _, _ = fitted_elm
        quantized = QuantizedElm.from_model(model)
        with pytest.raises(ModelError):
            quantized.score(np.zeros((1, 5)))

    def test_all_integer_internals(self, fitted_elm):
        model, rows, _ = fitted_elm
        quantized = QuantizedElm.from_model(model)
        assert quantized.w_hidden.dtype == np.int64
        assert quantized.sigmoid_lut.dtype == np.int64
        h = quantized.hidden_raw(rows[:3])
        assert h.dtype == np.int64
