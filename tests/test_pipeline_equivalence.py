"""Differential proof that the staged dataplane is behaviour-preserving.

The same demo SoC runs the same trace twice — once through the
per-event reference loop, once through the batched staged pipeline —
and every observable output must match exactly: inference records
(timestamps to the last bit), interrupts, and the full observability
counter set.  This is the contract that let the refactor land without
regenerating a single golden fixture.
"""

from __future__ import annotations

import pytest

from repro.eval.metrics import build_demo_soc, demo_events
from repro.obs import MetricsRegistry


def record_key(record):
    return (
        record.sequence_number,
        record.trigger_cycle,
        record.arrival_ns,
        record.start_ns,
        record.done_ns,
        record.score,
        record.anomalous,
        record.gpu_cycles,
    )


def run_one(kind: str, events, dataplane: str, chunk_events: int = 32768):
    registry = MetricsRegistry()
    soc = build_demo_soc(kind, metrics=registry)
    soc.pipeline.chunk_events = chunk_events
    records = soc.run_events(events, dataplane=dataplane)
    interrupts = [
        (i.time_ns, i.sequence_number) for i in soc.mcm.interrupts.fired
    ]
    counters = {
        name: value
        for name, value in registry.snapshot()["counters"].items()
        # pipeline.port/stage/deliver/chunk/integrity bookkeeping
        # exists only on the batched path; every shared counter must
        # agree exactly.
        if not name.startswith("pipeline.port.")
        and not name.startswith("pipeline.stage.")
        and not name.startswith("pipeline.deliver.")
        and not name.startswith("pipeline.integrity.")
        and name != "pipeline.chunks"
    }
    return records, interrupts, counters


@pytest.mark.parametrize("kind,count", [("lstm", 12_000), ("elm", 30_000)])
def test_batched_matches_loop(kind, count):
    events = demo_events(kind, 0, count)
    loop_records, loop_irqs, loop_counters = run_one(kind, events, "loop")
    bat_records, bat_irqs, bat_counters = run_one(kind, events, "batched")

    assert len(loop_records) > 10, "demo trace produced too few inferences"
    assert [record_key(r) for r in bat_records] == [
        record_key(r) for r in loop_records
    ]
    assert bat_irqs == loop_irqs
    assert bat_counters == loop_counters


@pytest.mark.parametrize("chunk_events", [1, 17, 997, 100_000])
def test_chunk_size_is_invisible(chunk_events):
    events = demo_events("lstm", 0, 6_000)
    baseline, _, _ = run_one("lstm", events, "loop")
    got, _, _ = run_one("lstm", events, "batched", chunk_events=chunk_events)
    assert [record_key(r) for r in got] == [record_key(r) for r in baseline]


def test_dataplane_override_validated():
    from repro.errors import SocConfigError

    soc = build_demo_soc("lstm")
    with pytest.raises(SocConfigError):
        soc.run_events(demo_events("lstm", 0, 10), dataplane="simd")
