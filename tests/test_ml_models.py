"""ML models: features, ELM, LSTM, MLP, n-gram, detector."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ModelError
from repro.ml.detector import DetectionMetrics, ThresholdDetector, roc_auc
from repro.ml.elm import ExtremeLearningMachine
from repro.ml.features import (
    PatternDictionary,
    histogram_features,
    log_softmax,
    normalize_histogram,
    one_hot,
    sigmoid,
)
from repro.ml.lstm import LstmModel
from repro.ml.mlp import MlpAutoencoder
from repro.ml.ngram import NgramModel


class TestFeatures:
    def test_histogram_counts(self):
        out = histogram_features(np.array([[1, 1, 2, 0]]), 4)
        assert (out[0] == [1, 2, 1, 0]).all()

    def test_histogram_rejects_out_of_vocab(self):
        with pytest.raises(ModelError):
            histogram_features(np.array([[5]]), 4)

    def test_normalize_rows_sum_to_one(self):
        h = histogram_features(np.array([[1, 1, 2, 0]]), 4)
        assert normalize_histogram(h).sum() == pytest.approx(1.0)

    def test_normalize_handles_zero_rows(self):
        out = normalize_histogram(np.zeros((2, 4)))
        assert (out == 0).all()

    def test_one_hot(self):
        out = one_hot(np.array([0, 2]), 3)
        assert (out == [[1, 0, 0], [0, 0, 1]]).all()

    def test_sigmoid_stable_extremes(self):
        x = np.array([-1e4, 0.0, 1e4])
        out = sigmoid(x)
        assert out[0] == 0.0 and out[1] == 0.5 and out[2] == 1.0

    def test_log_softmax_normalizes(self):
        logits = np.random.default_rng(0).normal(size=(3, 7))
        assert np.allclose(
            np.exp(log_softmax(logits)).sum(axis=-1), 1.0
        )


class TestPatternDictionary:
    WINDOWS = np.array([
        [1, 2, 3, 1, 2, 3],
        [1, 2, 3, 4, 5, 6],
        [4, 5, 6, 4, 5, 6],
    ])

    def test_fit_and_lookup(self):
        d = PatternDictionary(n=3, capacity=100).fit(self.WINDOWS)
        indices = d.indices(np.array([1, 2, 3, 1, 2]))
        assert d.unseen_index not in indices

    def test_unseen_maps_to_unseen_bin(self):
        d = PatternDictionary(n=3, capacity=100).fit(self.WINDOWS)
        indices = d.indices(np.array([9, 9, 9]))
        assert (indices == d.unseen_index).all()

    def test_unseen_gain_repeats_index(self):
        d = PatternDictionary(n=3, capacity=100, unseen_gain=3)
        d.fit(self.WINDOWS)
        indices = d.indices(np.array([9, 9, 9]))
        assert len(indices) == 3  # one position x gain 3

    def test_features_match_indices(self):
        d = PatternDictionary(n=2, capacity=50, unseen_gain=2)
        d.fit(self.WINDOWS)
        window = np.array([1, 2, 9, 9])
        feats = d.features(window)
        positions = 3
        assert feats.sum() * positions == pytest.approx(len(d.indices(window)))

    def test_capacity_limits_size(self):
        d = PatternDictionary(n=2, capacity=2).fit(self.WINDOWS)
        assert d.size == 3  # 2 patterns + unseen bin

    def test_use_before_fit(self):
        with pytest.raises(ModelError):
            PatternDictionary().indices(np.array([1, 2, 3]))

    def test_bad_params(self):
        with pytest.raises(ModelError):
            PatternDictionary(n=0)
        with pytest.raises(ModelError):
            PatternDictionary(unseen_gain=0)

    def test_max_indices(self):
        d = PatternDictionary(n=3, capacity=10, unseen_gain=4)
        assert d.max_indices(window=16) == 14 * 4


class TestElm:
    def test_hidden_shape_and_range(self, tiny_elm, tiny_dictionary,
                                     syscall_dataset):
        feats = tiny_dictionary.features(syscall_dataset.test_normal[:5])
        h = tiny_elm.hidden(feats)
        assert h.shape == (5, 64)
        assert (h > 0).all() and (h < 1).all()

    def test_requires_fit_before_score(self):
        model = ExtremeLearningMachine(input_dim=4, hidden_dim=8)
        with pytest.raises(ModelError):
            model.score_mahalanobis(np.zeros((1, 4)))

    def test_feature_width_checked(self, tiny_elm):
        with pytest.raises(ModelError):
            tiny_elm.hidden(np.zeros((1, 3)))

    def test_anomalies_score_higher(self, tiny_elm, tiny_dictionary,
                                     syscall_dataset):
        normal = tiny_elm.score_mahalanobis(
            tiny_dictionary.features(syscall_dataset.test_normal)
        )
        anomalous = tiny_elm.score_mahalanobis(
            tiny_dictionary.features(syscall_dataset.test_anomalous)
        )
        assert roc_auc(normal, anomalous) > 0.7

    def test_f32_score_close_to_f64(self, tiny_elm, tiny_dictionary,
                                    syscall_dataset):
        feats = tiny_dictionary.features(syscall_dataset.test_normal[:20])
        f64 = tiny_elm.score_mahalanobis(feats)
        f32 = tiny_elm.score_mahalanobis_f32(feats)
        assert np.allclose(f64, f32, rtol=5e-3)

    def test_reconstruction_score_positive(self, tiny_elm, tiny_dictionary,
                                           syscall_dataset):
        feats = tiny_dictionary.features(syscall_dataset.test_normal[:5])
        assert (tiny_elm.score_reconstruction(feats) >= 0).all()

    def test_export_weights_f32(self, tiny_elm):
        w = tiny_elm.export_weights()
        assert w.w_hidden.dtype == np.float32
        assert w.inv_var.shape == (64,)
        assert (w.inv_var > 0).all()

    def test_deterministic_given_seed(self):
        a = ExtremeLearningMachine(8, 16, seed=3)
        b = ExtremeLearningMachine(8, 16, seed=3)
        assert np.allclose(a.w_hidden, b.w_hidden)


class TestLstm:
    def test_training_reduces_loss(self, call_dataset):
        model = LstmModel(call_dataset.vocabulary.size, hidden_size=12, seed=1)
        losses = model.fit(call_dataset.train_windows[:400], epochs=3)
        assert losses[-1] < losses[0]

    def test_nll_separates_anomalies(self, tiny_lstm, call_dataset):
        normal = tiny_lstm.window_nll(call_dataset.test_normal[:300])
        anomalous = tiny_lstm.window_nll(call_dataset.test_anomalous[:300])
        assert roc_auc(normal, anomalous) > 0.6

    def test_stream_step_scores_before_update(self, tiny_lstm):
        state = tiny_lstm.initial_state()
        surprisal, new_state = tiny_lstm.stream_step(state, 1)
        assert surprisal == pytest.approx(-state.log_probs[1])
        assert not np.allclose(new_state.h, state.h)

    def test_stream_matches_window_nll(self, tiny_lstm):
        """Streaming from a zero state over a window reproduces the
        batch NLL (same per-step surprisals)."""
        window = np.array([1, 2, 3, 4, 5, 1, 2, 3])
        state = tiny_lstm.initial_state()
        surprisals = []
        for index, branch in enumerate(window):
            s, state = tiny_lstm.stream_step(state, int(branch))
            if index > 0:
                surprisals.append(s)
        batch = tiny_lstm.window_nll(window[None, :])[0]
        assert np.mean(surprisals) == pytest.approx(batch, rel=1e-6)

    def test_bad_vocab_id(self, tiny_lstm):
        state = tiny_lstm.initial_state()
        with pytest.raises(ModelError):
            tiny_lstm.stream_step(state, 10_000)

    def test_window_too_short(self, tiny_lstm):
        with pytest.raises(ModelError):
            tiny_lstm.window_nll(np.array([[1]]))

    def test_gradient_check_small_model(self):
        """Numerical gradient check on a tiny LSTM."""
        model = LstmModel(vocabulary_size=5, hidden_size=3, seed=0)
        windows = np.array([[1, 2, 3, 4], [2, 3, 4, 1]])
        loss, grads = model._loss_and_grads(windows)
        eps = 1e-6
        for key in ("u", "b", "w_out"):
            param = model.params[key]
            flat_index = 1 if param.ndim == 1 else (1, 1)
            original = param[flat_index]
            param[flat_index] = original + eps
            loss_plus, _ = model._loss_and_grads(windows)
            param[flat_index] = original - eps
            loss_minus, _ = model._loss_and_grads(windows)
            param[flat_index] = original
            numeric = (loss_plus - loss_minus) / (2 * eps)
            assert grads[key][flat_index] == pytest.approx(
                numeric, rel=1e-3, abs=1e-6
            ), key


class TestBaselines:
    def test_mlp_training_reduces_loss(self, tiny_dictionary, syscall_dataset):
        feats = tiny_dictionary.features(syscall_dataset.train_windows[:500])
        mlp = MlpAutoencoder(input_dim=tiny_dictionary.size, hidden_dim=16)
        losses = mlp.fit(feats, epochs=10)
        assert losses[-1] < losses[0]

    def test_mlp_scores_anomalies_higher(self, tiny_dictionary,
                                         syscall_dataset):
        train = tiny_dictionary.features(syscall_dataset.train_windows[:800])
        mlp = MlpAutoencoder(input_dim=tiny_dictionary.size, hidden_dim=24)
        mlp.fit(train, epochs=20)
        normal = mlp.score(
            tiny_dictionary.features(syscall_dataset.test_normal)
        )
        anomalous = mlp.score(
            tiny_dictionary.features(syscall_dataset.test_anomalous)
        )
        assert roc_auc(normal, anomalous) > 0.6

    def test_mlp_parameter_count(self):
        mlp = MlpAutoencoder(input_dim=10, hidden_dim=4)
        assert mlp.parameter_count == 10 * 4 + 4 + 4 * 10 + 10

    def test_ngram_known_windows_score_zero(self, syscall_dataset):
        model = NgramModel(3).fit(syscall_dataset.train_windows)
        scores = model.score(syscall_dataset.train_windows[:50])
        assert (scores == 0).all()

    def test_ngram_detects_anomalies(self, syscall_dataset):
        model = NgramModel(3).fit(syscall_dataset.train_windows)
        normal = model.score(syscall_dataset.test_normal)
        anomalous = model.score(syscall_dataset.test_anomalous)
        assert roc_auc(normal, anomalous) > 0.7

    def test_ngram_requires_fit(self):
        with pytest.raises(ModelError):
            NgramModel().score(np.array([[1, 2, 3]]))

    def test_ngram_window_shorter_than_n(self):
        with pytest.raises(ModelError):
            NgramModel(5).fit(np.array([[1, 2, 3]]))


class TestDetector:
    def test_threshold_is_quantile(self):
        scores = np.arange(1000)
        detector = ThresholdDetector(0.9).fit(scores)
        assert detector.threshold == pytest.approx(
            np.quantile(scores, 0.9)
        )

    def test_fpr_bounded_by_quantile(self):
        rng = np.random.default_rng(0)
        scores = rng.normal(size=5000)
        detector = ThresholdDetector(0.99).fit(scores)
        fresh = rng.normal(size=5000)
        fpr = detector.classify(fresh).mean()
        assert fpr < 0.03

    def test_monotone_in_quantile(self):
        scores = np.random.default_rng(1).random(1000)
        t_low = ThresholdDetector(0.9).fit(scores).threshold
        t_high = ThresholdDetector(0.99).fit(scores).threshold
        assert t_high >= t_low

    def test_evaluate_metrics(self):
        detector = ThresholdDetector(0.95).fit(np.arange(100.0))
        metrics = detector.evaluate(
            normal_scores=np.arange(100.0),
            anomalous_scores=np.arange(100.0) + 200,
        )
        assert metrics.detection_rate == 1.0
        assert metrics.auc == 1.0
        assert metrics.false_positive_rate <= 0.06

    def test_requires_enough_scores(self):
        with pytest.raises(ModelError):
            ThresholdDetector().fit([1.0] * 5)

    def test_bad_quantile(self):
        with pytest.raises(ModelError):
            ThresholdDetector(quantile=1.5)


class TestRocAuc:
    def test_perfect_separation(self):
        assert roc_auc([0, 1, 2], [10, 11]) == 1.0

    def test_no_separation_is_half(self):
        assert roc_auc([1, 2, 3, 4], [1, 2, 3, 4]) == pytest.approx(0.5)

    def test_inverted_scores_below_half(self):
        assert roc_auc([10, 11], [0, 1]) == 0.0

    def test_requires_both_classes(self):
        with pytest.raises(ModelError):
            roc_auc([], [1.0])

    @given(
        st.lists(st.floats(-10, 10), min_size=2, max_size=50),
        st.lists(st.floats(-10, 10), min_size=2, max_size=50),
    )
    @settings(max_examples=30, deadline=None)
    def test_within_unit_interval(self, normal, anomalous):
        assert 0.0 <= roc_auc(normal, anomalous) <= 1.0
