"""Fault-injection subsystem: plans, injectors, stages, services.

The load-bearing properties: decisions are pure functions of
``(seed, kind, absolute index)`` (so chunking never changes what gets
injected), and a plan whose rates are all zero is a byte-identical
no-op at every insertion point.
"""

import numpy as np
import pytest

from repro.faults import (
    FaultKind,
    FaultPlan,
    FaultSpec,
    ServiceFaultInjector,
    StreamFaultInjector,
    VectorOverflowModel,
    apply_event_faults,
    corrupt_stream,
    crash_fraction,
    splitmix64,
    splitmix64_array,
)
from repro.workloads.cfg import BranchEvent, BranchKind


def _events(n, base=0x40000):
    return [
        BranchEvent(
            cycle=i * 10,
            source=base + 4 * i,
            target=base + 0x1000 + 4 * i,
            kind=BranchKind.UNCONDITIONAL,
        )
        for i in range(n)
    ]


def plan_of(*specs, seed=7):
    return FaultPlan(seed=seed, specs=tuple(specs))


class TestPlan:
    def test_splitmix_array_matches_scalar(self):
        values = np.arange(0, 1000, 13, dtype=np.uint64)
        array = splitmix64_array(values)
        for value, hashed in zip(values, array):
            assert splitmix64(int(value)) == int(hashed)

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(FaultKind.BIT_FLIP, rate=1.5)
        with pytest.raises(ValueError):
            FaultSpec(FaultKind.BIT_FLIP, rate=-0.1)
        with pytest.raises(ValueError):
            FaultSpec("bit-flip", rate=0.1)
        with pytest.raises(ValueError):
            FaultSpec(FaultKind.FIFO_OVERFLOW, rate=0.1, burst=0)
        with pytest.raises(ValueError):
            FaultSpec(FaultKind.FRAME_DESYNC, rate=0.1, desync_bytes=0)

    def test_duplicate_kind_rejected(self):
        with pytest.raises(ValueError):
            plan_of(
                FaultSpec(FaultKind.BIT_FLIP, rate=0.1),
                FaultSpec(FaultKind.BIT_FLIP, rate=0.2),
            )

    def test_decide_deterministic_and_seed_sensitive(self):
        spec = FaultSpec(FaultKind.BIT_FLIP, rate=0.5)
        a = [plan_of(spec, seed=1).decide(FaultKind.BIT_FLIP, i)
             for i in range(200)]
        b = [plan_of(spec, seed=1).decide(FaultKind.BIT_FLIP, i)
             for i in range(200)]
        c = [plan_of(spec, seed=2).decide(FaultKind.BIT_FLIP, i)
             for i in range(200)]
        assert a == b
        assert a != c

    def test_decide_array_matches_scalar(self):
        plan = plan_of(FaultSpec(FaultKind.BYTE_DROP, rate=0.3))
        indices = np.arange(500, dtype=np.uint64)
        array = plan.decide_array(FaultKind.BYTE_DROP, indices)
        for i in range(500):
            assert bool(array[i]) == plan.decide(FaultKind.BYTE_DROP, i)

    def test_rate_extremes(self):
        always = plan_of(FaultSpec(FaultKind.BYTE_DROP, rate=1.0))
        never = plan_of(FaultSpec(FaultKind.BYTE_DROP, rate=0.0))
        indices = np.arange(64, dtype=np.uint64)
        assert plan_of().is_noop
        assert never.is_noop
        assert not always.is_noop
        assert always.decide_array(FaultKind.BYTE_DROP, indices).all()
        assert not never.decide_array(FaultKind.BYTE_DROP, indices).any()
        assert never.spec(FaultKind.BYTE_DROP) is None

    def test_rate_close_to_target(self):
        plan = plan_of(FaultSpec(FaultKind.BIT_FLIP, rate=0.1))
        indices = np.arange(200_000, dtype=np.uint64)
        hits = plan.decide_array(FaultKind.BIT_FLIP, indices).mean()
        assert hits == pytest.approx(0.1, abs=0.005)

    def test_channels_independent(self):
        plan = plan_of(
            FaultSpec(FaultKind.BIT_FLIP, rate=0.5),
            FaultSpec(FaultKind.BYTE_DROP, rate=0.5),
        )
        indices = np.arange(256, dtype=np.uint64)
        flips = plan.decide_array(FaultKind.BIT_FLIP, indices)
        drops = plan.decide_array(FaultKind.BYTE_DROP, indices)
        assert (flips != drops).any()


class TestStreamInjector:
    STREAM = bytes(range(256)) * 16

    def test_noop_plan_returns_same_object(self):
        injector = StreamFaultInjector(
            plan_of(FaultSpec(FaultKind.BIT_FLIP, rate=0.0))
        )
        out = injector.feed(self.STREAM)
        assert out is self.STREAM
        assert injector.flipped == 0

    def test_chunk_invariance(self):
        plan = plan_of(
            FaultSpec(FaultKind.BIT_FLIP, rate=0.01),
            FaultSpec(FaultKind.BYTE_DROP, rate=0.01),
            FaultSpec(FaultKind.BYTE_DUP, rate=0.01),
            FaultSpec(FaultKind.FRAME_DESYNC, rate=0.002, desync_bytes=9),
        )
        whole = corrupt_stream(self.STREAM, plan)
        for chunk_size in (1, 7, 64, 1000, 4096):
            injector = StreamFaultInjector(plan)
            parts = [
                injector.feed(self.STREAM[i:i + chunk_size])
                for i in range(0, len(self.STREAM), chunk_size)
            ]
            assert b"".join(parts) == whole, f"chunk={chunk_size}"

    def test_flip_only_preserves_length(self):
        plan = plan_of(FaultSpec(FaultKind.BIT_FLIP, rate=0.05))
        injector = StreamFaultInjector(plan)
        out = injector.feed(self.STREAM)
        assert len(out) == len(self.STREAM)
        assert injector.flipped > 0
        diff = sum(
            bin(a ^ b).count("1") for a, b in zip(out, self.STREAM)
        )
        assert diff == injector.flipped  # exactly one bit per flip

    def test_drop_and_dup_change_length(self):
        plan = plan_of(
            FaultSpec(FaultKind.BYTE_DROP, rate=0.05),
            FaultSpec(FaultKind.BYTE_DUP, rate=0.05),
        )
        injector = StreamFaultInjector(plan)
        out = injector.feed(self.STREAM)
        assert injector.dropped > 0 and injector.duplicated > 0
        assert len(out) == (
            len(self.STREAM) - injector.dropped + injector.duplicated
        )

    def test_desync_drops_runs(self):
        plan = plan_of(
            FaultSpec(FaultKind.FRAME_DESYNC, rate=0.01, desync_bytes=5)
        )
        injector = StreamFaultInjector(plan)
        out = injector.feed(self.STREAM)
        assert injector.desyncs > 0
        assert len(out) == len(self.STREAM) - injector.dropped
        assert injector.dropped >= injector.desyncs  # runs, not single bytes

    def test_reset_restarts_offsets(self):
        plan = plan_of(FaultSpec(FaultKind.BIT_FLIP, rate=0.02))
        injector = StreamFaultInjector(plan)
        first = injector.feed(self.STREAM)
        injector.reset()
        second = injector.feed(self.STREAM)
        assert first == second


class TestEventFaults:
    def test_noop_returns_same_object(self):
        events = _events(100)
        out, counts = apply_event_faults(
            events, plan_of(FaultSpec(FaultKind.EVENT_DROP, rate=0.0))
        )
        assert out is events
        assert not counts
        out, counts = apply_event_faults(events, None)
        assert out is events

    def test_counts_match_mutations(self):
        events = _events(2000)
        plan = plan_of(
            FaultSpec(FaultKind.EVENT_DROP, rate=0.02),
            FaultSpec(FaultKind.EVENT_DUP, rate=0.02),
            FaultSpec(FaultKind.EVENT_CORRUPT, rate=0.02),
        )
        out, counts = apply_event_faults(events, plan)
        assert counts.dropped > 0
        assert counts.duplicated > 0
        assert counts.corrupted > 0
        assert len(out) == (
            len(events) - counts.dropped + counts.duplicated
        )
        originals = {e.target for e in events}
        corrupted = [e for e in out if e.target not in originals]
        assert len(set(corrupted)) <= counts.corrupted * 2

    def test_chunked_equals_whole(self):
        events = _events(1500)
        plan = plan_of(
            FaultSpec(FaultKind.EVENT_DROP, rate=0.03),
            FaultSpec(FaultKind.EVENT_DUP, rate=0.03),
        )
        whole, _ = apply_event_faults(events, plan)
        pieces = []
        for start in range(0, len(events), 257):
            part, _ = apply_event_faults(
                events[start:start + 257], plan, start_index=start
            )
            pieces.extend(part)
        assert list(whole) == pieces


class TestOverflowModel:
    def test_burst_drops_consecutive(self):
        plan = plan_of(
            FaultSpec(FaultKind.FIFO_OVERFLOW, rate=0.01, burst=4)
        )
        model = VectorOverflowModel(plan)
        admitted = [model.admit() for _ in range(5000)]
        assert model.dropped > 0
        assert model.dropped % 4 == 0 or not admitted[-4:] == [False] * 4
        # every loss run is exactly `burst` long (or cut by the end)
        runs, current = [], 0
        for ok in admitted:
            if ok:
                if current:
                    runs.append(current)
                current = 0
            else:
                current += 1
        if current:
            runs.append(current)
        assert runs
        assert all(run % 4 == 0 for run in runs[:-1])

    def test_reset_reproduces(self):
        plan = plan_of(
            FaultSpec(FaultKind.FIFO_OVERFLOW, rate=0.02, burst=3)
        )
        model = VectorOverflowModel(plan)
        first = [model.admit() for _ in range(1000)]
        model.reset()
        second = [model.admit() for _ in range(1000)]
        assert first == second

    def test_inactive_admits_everything(self):
        model = VectorOverflowModel(plan_of())
        assert all(model.admit() for _ in range(100))
        assert model.dropped == 0


class TestServiceFaults:
    def test_from_plan_gates_on_active_channels(self):
        assert ServiceFaultInjector.from_plan(None) is None
        assert ServiceFaultInjector.from_plan(plan_of()) is None
        quiet = plan_of(FaultSpec(FaultKind.BIT_FLIP, rate=0.5))
        assert ServiceFaultInjector.from_plan(quiet) is None
        loud = plan_of(FaultSpec(FaultKind.MCM_STALL, rate=0.5))
        assert ServiceFaultInjector.from_plan(loud) is not None

    def test_draw_deterministic_after_reset(self):
        plan = plan_of(
            FaultSpec(FaultKind.MCM_STALL, rate=0.3, stall_us=50.0),
            FaultSpec(FaultKind.MCM_HANG, rate=0.05),
        )
        injector = ServiceFaultInjector(plan)
        first = [injector.draw() for _ in range(200)]
        injector.reset()
        second = [injector.draw() for _ in range(200)]
        assert first == second
        assert any(hang for _, hang in first)
        assert any(extra == 50_000.0 for extra, _ in first)

    def test_hang_is_infinite(self):
        plan = plan_of(FaultSpec(FaultKind.MCM_HANG, rate=1.0))
        extra, hang = ServiceFaultInjector(plan).draw()
        assert hang and extra == float("inf")

    def test_crash_fraction(self):
        assert crash_fraction(None, 0) is None
        assert crash_fraction(plan_of(), 3) is None
        plan = plan_of(FaultSpec(FaultKind.TENANT_CRASH, rate=1.0))
        fractions = {crash_fraction(plan, r) for r in range(8)}
        assert all(f is not None and 0.0 <= f < 1.0 for f in fractions)
        assert len(fractions) > 1  # round-indexed, not constant
