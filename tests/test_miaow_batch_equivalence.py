"""Batched dispatch: bit-exact equivalence at every batch size.

The differential harness runs the same request stream three ways —
(a) the per-instruction interpreter, (b) the PR 6 compiled single
path, (c) the fused batched path — at K in {2, 3, 8, 17}, and asserts
that the observable outcomes are *identical*: per-member scores and
result memory, DispatchResult cycles / instructions / per-CU cycles,
per-CU lifetime counters, the full global-memory image, and (for
faulting streams) the exception type, message, and partial effects.
Input memory is salted with the nasty float encodings (sNaN, denormal,
inf) exactly like ``test_miaow_compiler.py``.
"""

import numpy as np
import pytest

from repro.errors import GpuError
from repro.miaow.assembler import assemble
from repro.miaow.compiler import (
    BatchCompiledKernel,
    CompileUnsupported,
    compile_kernel_batched,
)
from repro.miaow.gpu import Gpu
from repro.miaow.isa import WAVE_SIZE
from repro.ml.elm import ExtremeLearningMachine
from repro.ml.features import PatternDictionary
from repro.ml.kernels import (
    DeployedElm,
    DeployedLstm,
    DeployedMlp,
    elm_infer_indices_batch,
    lstm_infer_batch,
    mlp_infer_batch,
)
from repro.ml.lstm import LstmModel
from repro.ml.mlp import MlpAutoencoder

K_VALUES = (2, 3, 8, 17)

#: The salted encodings every randomized input leads with.
_SPECIALS = np.array(
    [
        0x7FC00000,  # qNaN
        0x7F800001,  # sNaN
        0xFFC00001,  # negative NaN with payload
        0x7F800000,  # +inf
        0xFF800000,  # -inf
        0x80000000,  # -0.0
        0x00000001,  # denormal
        0x007FFFFF,  # largest denormal
    ],
    dtype=np.uint32,
)


def _salted_words(rng, count):
    words = rng.integers(0, 1 << 32, size=count, dtype=np.uint64).astype(
        np.uint32
    )
    words[: min(len(_SPECIALS), count)] = _SPECIALS[:count]
    return words


#: Per-member float pipeline over salted memory: gathers a lane word,
#: mixes in two member-varying scalar bit patterns (s5/s6), and stores
#: the result — exercises the batched scalar-array domain and the NaN
#: payload rules in one kernel.
_FLOAT_KERNEL = """
.kernel batcheq
.vgprs 8
    v_lshlrev_b32 v5, 2, v0
    v_add_i32 v6, v5, s2
    flat_load_dword v1, v6
    v_add_f32 v2, v1, s5
    v_mul_f32 v2, v2, s6
    v_mac_f32 v2, v1, s5
    v_fma_f32 v2, v2, v1, s6
    v_max_f32 v2, v2, v1
    v_add_i32 v6, v5, s3
    flat_store_dword v6, v2
    s_endpgm
"""

#: Scalar-looped kernel (uniform bound fuses, varying bound replays):
#: accumulates s5 rounds of lane arithmetic before the store.
_LOOP_KERNEL = """
.kernel batchloop
.vgprs 8
    v_mov_b32 v1, 0.0
    s_mov_b32 s8, 0
loop:
    v_add_f32 v1, v1, 1.5
    s_add_i32 s8, s8, 1
    s_cmp_lt_i32 s8, s5
    s_cbranch_scc1 loop
    v_lshlrev_b32 v2, 2, v0
    v_add_i32 v2, v2, s2
    flat_store_dword v2, v1
    s_endpgm
"""


def _assert_engines_identical(reference, candidate):
    gpu_a, results_a = reference
    gpu_b, results_b = candidate
    assert len(results_a) == len(results_b)
    for member_a, member_b in zip(results_a, results_b):
        assert member_a.cycles == member_b.cycles
        assert member_a.instructions == member_b.instructions
        assert member_a.per_cu_cycles == member_b.per_cu_cycles
    assert np.array_equal(
        gpu_a.global_memory._words, gpu_b.global_memory._words
    )
    for cu_a, cu_b in zip(gpu_a.compute_units, gpu_b.compute_units):
        assert cu_a.total_cycles == cu_b.total_cycles
        assert cu_a.total_instructions == cu_b.total_instructions


def _run_stream(kernel, args_lists, preload, mode, num_cus=2):
    gpu = Gpu(num_cus=num_cus, fast_path=(mode != "interpreter"))
    gpu.global_memory.write_block(0, preload)
    gpu.global_memory.alloc(len(preload) * 4)
    if mode == "batched":
        results = gpu.dispatch_batch(kernel, 1, [list(a) for a in args_lists])
    else:
        results = [gpu.dispatch(kernel, 1, list(a)) for a in args_lists]
    return gpu, results


class TestSyntheticStreams:
    @pytest.mark.parametrize("k", K_VALUES)
    def test_salted_float_stream_three_ways(self, k):
        rng = np.random.default_rng(100 + k)
        kernel = assemble(_FLOAT_KERNEL)
        preload = _salted_words(rng, k * WAVE_SIZE)
        out_base = len(preload) * 4
        args_lists = [
            (
                member * WAVE_SIZE * 4,
                out_base + member * WAVE_SIZE * 4,
                0,
                int(rng.integers(0, 1 << 32)),
                int(rng.integers(0, 1 << 32)),
            )
            for member in range(k)
        ]
        full = np.concatenate([preload, np.zeros(k * WAVE_SIZE, np.uint32)])
        interpreted = _run_stream(kernel, args_lists, full, "interpreter")
        compiled = _run_stream(kernel, args_lists, full, "compiled")
        batched = _run_stream(kernel, args_lists, full, "batched")
        _assert_engines_identical(interpreted, compiled)
        _assert_engines_identical(compiled, batched)
        # the fused path really fused (one cache entry, no fallback)
        assert batched[0].batch_stats()["batch_compiled_cached"] == 1

    @pytest.mark.parametrize("k", K_VALUES)
    def test_uniform_loop_fuses_varying_loop_replays(self, k):
        kernel = assemble(_LOOP_KERNEL)
        preload = np.zeros(k * WAVE_SIZE, np.uint32)
        uniform = [(m * WAVE_SIZE * 4, 0, 0, 6) for m in range(k)]
        varying = [(m * WAVE_SIZE * 4, 0, 0, 3 + m) for m in range(k)]
        for args_lists in (uniform, varying):
            compiled = _run_stream(kernel, args_lists, preload, "compiled")
            batched = _run_stream(kernel, args_lists, preload, "batched")
            _assert_engines_identical(compiled, batched)


class TestFaultParity:
    def test_faulting_member_same_error_and_partial_effects(self):
        kernel = assemble(_FLOAT_KERNEL)
        rng = np.random.default_rng(7)
        preload = _salted_words(rng, 3 * WAVE_SIZE)
        bad = 1 << 30  # store far out of device memory
        args_lists = [
            (0, len(preload) * 4, 0, 1, 2),
            (WAVE_SIZE * 4, bad, 0, 3, 4),
            (2 * WAVE_SIZE * 4, len(preload) * 4 + WAVE_SIZE * 8, 0, 5, 6),
        ]
        full = np.concatenate([preload, np.zeros(3 * WAVE_SIZE, np.uint32)])
        outcomes = []
        for mode in ("compiled", "batched"):
            gpu = Gpu(num_cus=2, fast_path=True)
            gpu.global_memory.write_block(0, full)
            error = None
            try:
                if mode == "batched":
                    gpu.dispatch_batch(
                        kernel, 1, [list(a) for a in args_lists]
                    )
                else:
                    for args in args_lists:
                        gpu.dispatch(kernel, 1, list(args))
            except GpuError as exc:
                error = (type(exc).__name__, str(exc))
            outcomes.append((gpu, error))
        (gpu_serial, err_serial), (gpu_batched, err_batched) = outcomes
        assert err_serial is not None
        assert err_serial == err_batched
        assert np.array_equal(
            gpu_serial.global_memory._words, gpu_batched.global_memory._words
        )
        for cu_a, cu_b in zip(
            gpu_serial.compute_units, gpu_batched.compute_units
        ):
            assert cu_a.total_cycles == cu_b.total_cycles
            assert cu_a.total_instructions == cu_b.total_instructions


class TestShippedModelBatches:
    @pytest.fixture(scope="class")
    def demo_models(self):
        rng = np.random.default_rng(5)
        windows = rng.integers(0, 10, size=(160, 12))
        dictionary = PatternDictionary(n=2, capacity=255, unseen_gain=2)
        dictionary.fit(windows)
        elm = ExtremeLearningMachine(
            input_dim=dictionary.size, hidden_dim=64, seed=5
        ).fit(dictionary.features(windows))
        lstm = LstmModel(vocabulary_size=48, hidden_size=16, seed=5)
        features = rng.random((140, 24)).astype(np.float32)
        features /= features.sum(axis=1, keepdims=True)
        mlp = MlpAutoencoder(input_dim=24, hidden_dim=8, seed=5)
        mlp.fit(features, epochs=2)
        return dictionary, elm, lstm, mlp, windows, features

    @pytest.mark.parametrize("k", K_VALUES)
    def test_elm_batch_bit_identical(self, demo_models, k):
        dictionary, elm, _, _, windows, _ = demo_models
        indices = [dictionary.indices(windows[i]) for i in range(k)]

        def deploy(gpu):
            members = []
            for _ in range(k):
                member = DeployedElm(elm, dictionary, windows.shape[1])
                member.load(gpu)
                members.append(member)
            return members

        gpu_serial = Gpu(num_cus=3, fast_path=True)
        serial = [
            member.infer_indices(index_list)
            for member, index_list in zip(deploy(gpu_serial), indices)
        ]
        gpu_batched = Gpu(num_cus=3, fast_path=True)
        batched = elm_infer_indices_batch(deploy(gpu_batched), indices)
        for one, two in zip(serial, batched):
            assert one.score == two.score
            assert one.dispatch.cycles == two.dispatch.cycles
            assert one.dispatch.instructions == two.dispatch.instructions
            assert one.dispatch.per_cu_cycles == two.dispatch.per_cu_cycles
        assert np.array_equal(
            gpu_serial.global_memory._words, gpu_batched.global_memory._words
        )

    @pytest.mark.parametrize("k", K_VALUES)
    def test_lstm_batch_bit_identical_with_state(self, demo_models, k):
        _, _, lstm, _, _, _ = demo_models
        rng = np.random.default_rng(31 + k)
        rounds = [
            [int(b) for b in rng.integers(0, 48, size=k)] for _ in range(3)
        ]

        def deploy(gpu):
            members = []
            for _ in range(k):
                member = DeployedLstm(lstm)
                member.load(gpu)
                members.append(member)
            return members

        gpu_serial = Gpu(num_cus=3, fast_path=True)
        serial_members = deploy(gpu_serial)
        serial = [
            [
                member.infer(branch_ids[j])
                for j, member in enumerate(serial_members)
            ]
            for branch_ids in rounds
        ]
        gpu_batched = Gpu(num_cus=3, fast_path=True)
        batched_members = deploy(gpu_batched)
        batched = [
            lstm_infer_batch(batched_members, branch_ids)
            for branch_ids in rounds
        ]
        for serial_round, batched_round in zip(serial, batched):
            for one, two in zip(serial_round, batched_round):
                assert one.surprisal == two.surprisal
                assert [d.cycles for d in one.dispatches] == [
                    d.cycles for d in two.dispatches
                ]
        assert np.array_equal(
            gpu_serial.global_memory._words, gpu_batched.global_memory._words
        )

    @pytest.mark.parametrize("k", K_VALUES)
    def test_mlp_batch_bit_identical(self, demo_models, k):
        _, _, _, mlp, _, features = demo_models
        inputs = [features[i] for i in range(k)]

        def deploy(gpu):
            members = []
            for _ in range(k):
                member = DeployedMlp(mlp)
                member.load(gpu)
                members.append(member)
            return members

        gpu_serial = Gpu(num_cus=3, fast_path=True)
        serial = [
            member.infer(sample)
            for member, sample in zip(deploy(gpu_serial), inputs)
        ]
        gpu_batched = Gpu(num_cus=3, fast_path=True)
        batched = mlp_infer_batch(deploy(gpu_batched), inputs)
        for one, two in zip(serial, batched):
            assert one.score == two.score
            assert [d.cycles for d in one.dispatches] == [
                d.cycles for d in two.dispatches
            ]
        assert np.array_equal(
            gpu_serial.global_memory._words, gpu_batched.global_memory._words
        )


class TestBatchedLowering:
    def test_batch_below_two_rejected(self):
        kernel = assemble(_FLOAT_KERNEL)
        with pytest.raises(ValueError):
            compile_kernel_batched(kernel, 1)

    def test_lds_store_declined_in_batch_mode(self):
        source = """
.kernel ldsw
.vgprs 4
    v_lshlrev_b32 v1, 2, v0
    v_mov_b32 v2, 7
    ds_write_b32 v1, v2
    s_endpgm
"""
        kernel = assemble(source)
        with pytest.raises(CompileUnsupported):
            compile_kernel_batched(kernel, 2)

    def test_batched_executor_is_inspectable(self):
        kernel = assemble(_FLOAT_KERNEL)
        compiled = compile_kernel_batched(kernel, 3)
        assert isinstance(compiled, BatchCompiledKernel)
        assert compiled.batch == 3
        assert "def _run" in compiled.source
        assert "batchpath-k3" in compiled.filename
