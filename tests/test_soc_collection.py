"""Hardware-path training collection: no train/serve skew."""

import numpy as np
import pytest

from repro.soc.collection import TrainingCollector
from repro.workloads.dataset import Vocabulary, sliding_windows


@pytest.fixture(scope="module")
def monitored(small_program):
    """Function entries the program actually exercises (a mapper table
    of never-visited functions collects nothing)."""
    from repro.eval.prep import _dynamic_call_targets

    return _dynamic_call_targets(small_program, 24)


class TestTrainingCollector:
    def test_hardware_equals_software_featurization(
        self, small_program, monitored
    ):
        """Windows collected through CoreSight + IGM must equal the
        software encoding of the same walk — the point of collecting
        training data with the deployment hardware."""
        collector = TrainingCollector(
            small_program, monitored, window=6
        )
        result = collector.collect(8_000, run_label="hw-sw")

        software_trace = small_program.run(8_000, run_label="hw-sw")
        vocabulary = Vocabulary.from_addresses(monitored)
        ids = vocabulary.encode_events(software_trace.events)
        expected = sliding_windows(ids, 6)

        assert len(expected) > 0
        assert result.windows.shape == expected.shape
        assert (result.windows == expected).all()

    def test_statistics_populated(self, small_program, monitored):
        collector = TrainingCollector(small_program, monitored, window=6)
        result = collector.collect(4_000, run_label="stats")
        assert result.raw_events == 4_000
        assert result.trace_bytes > 1_000
        assert 0 < result.pass_rate < 0.5

    def test_collected_windows_train_a_model(self, small_program, monitored):
        from repro.ml.lstm import LstmModel

        collector = TrainingCollector(small_program, monitored, window=8)
        result = collector.collect(60_000, run_label="train-hw")
        assert len(result.windows) > 50
        model = LstmModel(
            vocabulary_size=len(monitored) + 1, hidden_size=8, seed=0
        )
        losses = model.fit(result.windows[:300], epochs=2, seed=0)
        assert losses[-1] < losses[0]

    def test_empty_when_nothing_monitored_passes(self, small_program):
        # monitor addresses the program never branches to
        collector = TrainingCollector(
            small_program, [0x0FFF0000, 0x0FFF0040], window=4
        )
        result = collector.collect(2_000, run_label="empty")
        assert result.windows.shape == (0, 4)
        assert result.mapper_hits == 0
