"""Deterministic RNG derivation and statistics helpers."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils.rng import derive_seed, make_child_rng, make_rng
from repro.utils.stats import geometric_mean, summarize


class TestRng:
    def test_same_seed_same_stream(self):
        a = make_rng(42).integers(0, 1000, 10)
        b = make_rng(42).integers(0, 1000, 10)
        assert (a == b).all()

    def test_derive_seed_is_stable(self):
        assert derive_seed(1, "x", 2) == derive_seed(1, "x", 2)

    def test_derive_seed_varies_with_labels(self):
        assert derive_seed(1, "x") != derive_seed(1, "y")
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_label_path_order_matters(self):
        assert derive_seed(1, "a", "b") != derive_seed(1, "b", "a")

    def test_child_rng_decorrelated(self):
        a = make_child_rng(5, "walk").random(100)
        b = make_child_rng(5, "attack").random(100)
        assert abs(np.corrcoef(a, b)[0, 1]) < 0.3


class TestGeometricMean:
    def test_known_value(self):
        assert geometric_mean([1, 100]) == pytest.approx(10.0)

    def test_single_value(self):
        assert geometric_mean([7.5]) == pytest.approx(7.5)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    @given(st.lists(st.floats(0.01, 1e4), min_size=1, max_size=30))
    def test_between_min_and_max(self, values):
        g = geometric_mean(values)
        assert min(values) * 0.999 <= g <= max(values) * 1.001


class TestSummarize:
    def test_basic_fields(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s.count == 4
        assert s.mean == pytest.approx(2.5)
        assert s.minimum == 1.0
        assert s.maximum == 4.0

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_percentiles_ordered(self):
        s = summarize(np.random.default_rng(0).random(500))
        assert s.minimum <= s.p50 <= s.p95 <= s.maximum

    def test_str_contains_count(self):
        assert "n=3" in str(summarize([1, 2, 3]))
