"""Shared fixtures.

Expensive artifacts (trained models, programs) are session-scoped and
deliberately small — unit tests exercise behaviour, not scale.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml.elm import ExtremeLearningMachine
from repro.ml.features import PatternDictionary
from repro.ml.lstm import LstmModel
from repro.workloads.dataset import build_dataset
from repro.workloads.profiles import get_profile
from repro.workloads.program import SyntheticProgram


@pytest.fixture(scope="session")
def small_program():
    """A modest synthetic benchmark used across integration tests."""
    return SyntheticProgram(get_profile("403.gcc"), seed=11)


@pytest.fixture(scope="session")
def small_trace(small_program):
    return small_program.run(6_000, run_label="fixture")


@pytest.fixture(scope="session")
def syscall_dataset(small_program):
    return build_dataset(
        small_program,
        feature="syscall",
        window=12,
        train_events=8_000,
        test_events=3_000,
        num_attacks=6,
        seed=3,
    )


@pytest.fixture(scope="session")
def call_dataset(small_program):
    return build_dataset(
        small_program,
        feature="call",
        window=8,
        train_events=60_000,
        test_events=25_000,
        num_attacks=6,
        seed=3,
        mapper_size=30,
    )


@pytest.fixture(scope="session")
def tiny_dictionary(syscall_dataset):
    dictionary = PatternDictionary(n=2, capacity=255, unseen_gain=2)
    dictionary.fit(syscall_dataset.train_windows)
    return dictionary


@pytest.fixture(scope="session")
def tiny_elm(syscall_dataset, tiny_dictionary):
    features = tiny_dictionary.features(syscall_dataset.train_windows)
    model = ExtremeLearningMachine(
        input_dim=tiny_dictionary.size, hidden_dim=64, seed=7
    )
    return model.fit(features)


@pytest.fixture(scope="session")
def tiny_lstm(call_dataset):
    model = LstmModel(
        vocabulary_size=call_dataset.vocabulary.size, hidden_size=16, seed=7
    )
    windows = call_dataset.train_windows[:2500]
    model.fit(windows, epochs=4, seed=7)
    return model
