"""Attack injection and dataset assembly."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import WorkloadError
from repro.workloads.attacks import AttackInjector
from repro.workloads.cfg import BranchEvent, BranchKind
from repro.workloads.dataset import (
    UNKNOWN_ID,
    Vocabulary,
    sliding_windows,
)
from repro.workloads.syscalls import (
    NUM_SYSCALLS,
    SyscallSequenceModel,
    stub_address,
)


def make_events(n=50):
    return [
        BranchEvent(
            cycle=i * 10,
            source=0x1000 + 4 * i,
            target=0x2000 + 4 * (i % 7),
            kind=BranchKind.CONDITIONAL,
        )
        for i in range(n)
    ]


class TestAttackInjector:
    def test_inserts_gadget(self):
        events = make_events()
        injector = AttackInjector(seed=1, gadget_length=5)
        attacked, attack = injector.inject(events, position=10)
        assert len(attacked) == len(events) + 5
        assert attack.position == 10
        assert attack.length == 5

    def test_gadget_targets_are_legitimate(self):
        events = make_events()
        observed = {e.target for e in events}
        attacked, attack = AttackInjector(seed=2).inject(events, position=5)
        assert set(attack.injected_targets) <= observed

    def test_target_pool_respected(self):
        events = make_events()
        pool = [0x2000, 0x2004]
        _, attack = AttackInjector(seed=3).inject(
            events, position=5, target_pool=pool
        )
        assert set(attack.injected_targets) <= set(pool)

    def test_empty_pool_rejected(self):
        with pytest.raises(WorkloadError):
            AttackInjector().inject(make_events(), position=5, target_pool=[])

    def test_tail_shifted_in_time(self):
        events = make_events()
        attacked, attack = AttackInjector(seed=4, gadget_length=4).inject(
            events, position=10
        )
        original_tail = events[10]
        shifted_tail = attacked[10 + 4]
        assert shifted_tail.target == original_tail.target
        assert shifted_tail.cycle > original_tail.cycle

    def test_cycles_stay_monotonic(self):
        events = make_events()
        attacked, _ = AttackInjector(seed=5).inject(events, position=20)
        cycles = [e.cycle for e in attacked]
        assert cycles == sorted(cycles)

    def test_position_bounds(self):
        with pytest.raises(WorkloadError):
            AttackInjector().inject(make_events(), position=0)

    def test_too_short_trace(self):
        with pytest.raises(WorkloadError):
            AttackInjector().inject(make_events(1))

    def test_inject_many_varies_positions(self):
        results = AttackInjector(seed=6).inject_many(make_events(), 8)
        positions = {attack.position for _, attack in results}
        assert len(positions) > 1

    def test_bad_gadget_length(self):
        with pytest.raises(WorkloadError):
            AttackInjector(gadget_length=0)


class TestVocabulary:
    def test_ids_dense_and_sorted(self):
        vocab = Vocabulary.from_addresses([0x30, 0x10, 0x20, 0x10])
        assert vocab.encode(0x10) == 1
        assert vocab.encode(0x20) == 2
        assert vocab.encode(0x30) == 3
        assert vocab.size == 4

    def test_unknown_maps_to_zero(self):
        vocab = Vocabulary.from_addresses([0x10])
        assert vocab.encode(0x999) == UNKNOWN_ID

    def test_encode_events_filters(self):
        vocab = Vocabulary.from_addresses([0x2000])
        events = make_events()
        ids = vocab.encode_events(events)
        expected = sum(1 for e in events if e.target == 0x2000)
        assert len(ids) == expected
        assert (ids == 1).all()

    def test_encode_events_keep_unknown(self):
        vocab = Vocabulary.from_addresses([0x2000])
        ids = vocab.encode_events(make_events(), drop_unknown=False)
        assert len(ids) == 50
        assert UNKNOWN_ID in ids


class TestSlidingWindows:
    def test_count(self):
        out = sliding_windows(np.arange(10), 4)
        assert out.shape == (7, 4)

    def test_stride(self):
        out = sliding_windows(np.arange(10), 4, stride=3)
        assert out.shape == (3, 4)
        assert (out[1] == [3, 4, 5, 6]).all()

    def test_short_input_empty(self):
        assert sliding_windows(np.arange(2), 4).shape == (0, 4)

    def test_bad_window(self):
        with pytest.raises(WorkloadError):
            sliding_windows(np.arange(5), 0)

    @given(st.integers(1, 8), st.integers(1, 4), st.integers(0, 40))
    def test_window_contents(self, window, stride, n):
        ids = np.arange(n)
        out = sliding_windows(ids, window, stride)
        for row_index in range(len(out)):
            start = row_index * stride
            assert (out[row_index] == ids[start:start + window]).all()


class TestSyscallModel:
    def test_stub_addresses_valid(self):
        addresses = [stub_address(i) for i in range(NUM_SYSCALLS)]
        assert len(set(addresses)) == NUM_SYSCALLS
        with pytest.raises(WorkloadError):
            stub_address(NUM_SYSCALLS)

    def test_generate_length_and_range(self, small_program):
        model = SyscallSequenceModel(small_program.profile, seed=1)
        seq = model.generate(500)
        assert len(seq) == 500
        assert seq.min() >= 0 and seq.max() < NUM_SYSCALLS

    def test_deterministic(self, small_program):
        model = SyscallSequenceModel(small_program.profile, seed=1)
        assert (model.generate(200) == model.generate(200)).all()

    def test_low_entropy_transitions(self, small_program):
        """Sequences must be learnable: few successors per state."""
        model = SyscallSequenceModel(small_program.profile, seed=1)
        seq = model.generate(5_000)
        successors = {}
        for a, b in zip(seq[:-1], seq[1:]):
            successors.setdefault(int(a), set()).add(int(b))
        common = [len(s) for s in successors.values()]
        assert np.median(common) <= 10

    def test_inject_anomaly_lengthens(self, small_program):
        model = SyscallSequenceModel(small_program.profile, seed=1)
        seq = model.generate(300)
        attacked, position = model.inject_anomaly(seq, gadget_length=6)
        assert len(attacked) == 306
        assert 1 <= position < 300

    def test_inject_uses_observed_ids(self, small_program):
        model = SyscallSequenceModel(small_program.profile, seed=1)
        seq = model.generate(300)
        attacked, position = model.inject_anomaly(seq, gadget_length=6)
        assert set(attacked[position:position + 6]) <= set(seq.tolist())


class TestBuildDataset:
    def test_syscall_dataset_shapes(self, syscall_dataset):
        assert syscall_dataset.train_windows.shape[1] == 12
        assert len(syscall_dataset.test_anomalous) > 0
        assert syscall_dataset.vocabulary.size == NUM_SYSCALLS + 1

    def test_call_dataset_shapes(self, call_dataset):
        assert call_dataset.train_windows.shape[1] == 8
        assert call_dataset.vocabulary.size <= 31
        assert len(call_dataset.test_normal) > 0

    def test_ids_within_vocab(self, call_dataset):
        v = call_dataset.vocabulary.size
        for arr in (
            call_dataset.train_windows,
            call_dataset.test_normal,
            call_dataset.test_anomalous,
        ):
            if len(arr):
                assert arr.min() >= 0 and arr.max() < v

    def test_unknown_feature_rejected(self, small_program):
        from repro.workloads.dataset import build_dataset

        with pytest.raises(WorkloadError):
            build_dataset(small_program, feature="registers")

    def test_summary_mentions_sizes(self, syscall_dataset):
        assert "train=" in syscall_dataset.summary()
