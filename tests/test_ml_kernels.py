"""Deployment path: trained models compiled onto the GPU simulator."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.miaow.gpu import Gpu
from repro.ml.elm import ExtremeLearningMachine
from repro.ml.kernels import (
    DeployedElm,
    DeployedLstm,
    LSTM_DEPLOY_VOCAB,
    build_elm_kernel,
    build_lstm_gates_kernel,
    build_lstm_score_kernel,
    build_lstm_update_kernel,
)
from repro.ml.lstm import LstmModel


@pytest.fixture(scope="module")
def deployed_elm_setup(request):
    return None


class TestKernelsAssemble:
    def test_all_kernels_assemble(self):
        assert len(build_elm_kernel()) > 10
        assert len(build_lstm_gates_kernel()) > 10
        assert len(build_lstm_update_kernel()) > 10
        assert len(build_lstm_score_kernel()) > 10

    def test_kernel_names(self):
        assert build_elm_kernel().name == "elm_score"
        assert build_lstm_gates_kernel().name == "lstm_gates"


class TestDeployedElm:
    def make(self, tiny_elm, tiny_dictionary, num_cus=1):
        deployment = DeployedElm(tiny_elm, tiny_dictionary, window=12)
        gpu = Gpu(num_cus=num_cus)
        deployment.load(gpu)
        return deployment

    def test_hidden_must_be_wave_aligned(self, tiny_dictionary):
        model = ExtremeLearningMachine(
            input_dim=tiny_dictionary.size, hidden_dim=50
        )
        with pytest.raises(ModelError):
            DeployedElm(model, tiny_dictionary, window=12)

    def test_input_dim_must_match_dictionary(self, tiny_dictionary):
        model = ExtremeLearningMachine(input_dim=10, hidden_dim=64)
        model.fit(np.random.default_rng(0).random((20, 10)))
        with pytest.raises(ModelError):
            DeployedElm(model, tiny_dictionary, window=12)

    def test_gpu_matches_f32_reference(self, tiny_elm, tiny_dictionary,
                                       syscall_dataset):
        deployment = self.make(tiny_elm, tiny_dictionary)
        for window in syscall_dataset.test_normal[:6]:
            result = deployment.infer(window)
            assert result.score == pytest.approx(
                deployment.reference_score(window), rel=1e-3
            )

    def test_anomalous_windows_score_higher_on_gpu(
        self, tiny_elm, tiny_dictionary, syscall_dataset
    ):
        deployment = self.make(tiny_elm, tiny_dictionary)
        normal = np.mean([
            deployment.infer(w).score
            for w in syscall_dataset.test_normal[:10]
        ])
        anomalous = np.mean([
            deployment.infer(w).score
            for w in syscall_dataset.test_anomalous[:10]
        ])
        assert anomalous > normal

    def test_same_result_on_multi_cu(self, tiny_elm, tiny_dictionary,
                                     syscall_dataset):
        window = syscall_dataset.test_normal[0]
        single = self.make(tiny_elm, tiny_dictionary, num_cus=1)
        multi = self.make(tiny_elm, tiny_dictionary, num_cus=5)
        assert single.infer(window).score == pytest.approx(
            multi.infer(window).score, rel=1e-6
        )

    def test_use_before_load(self, tiny_elm, tiny_dictionary):
        deployment = DeployedElm(tiny_elm, tiny_dictionary, window=12)
        with pytest.raises(Exception):
            deployment.infer(np.zeros(12, np.int64))

    def test_cycles_grow_with_unseen_patterns(self, tiny_elm,
                                              tiny_dictionary):
        deployment = self.make(tiny_elm, tiny_dictionary)
        normal_like = deployment.infer_indices(
            np.zeros(11, dtype=np.int64) + 1
        )
        unseen_heavy = deployment.infer_indices(
            np.full(22, tiny_dictionary.unseen_index, dtype=np.int64)
        )
        assert unseen_heavy.dispatch.cycles > normal_like.dispatch.cycles


class TestDeployedLstm:
    def make(self, tiny_lstm, num_cus=1):
        deployment = DeployedLstm(tiny_lstm)
        gpu = Gpu(num_cus=num_cus)
        deployment.load(gpu)
        return deployment

    def test_vocab_limit_enforced(self):
        model = LstmModel(vocabulary_size=100, hidden_size=8)
        with pytest.raises(ModelError):
            DeployedLstm(model)

    def test_hidden_limit_enforced(self):
        with pytest.raises(ModelError):
            DeployedLstm(LstmModel(vocabulary_size=10, hidden_size=100))

    def test_padding_shapes(self, tiny_lstm):
        deployment = DeployedLstm(tiny_lstm)
        padded = deployment._pad_weights()
        assert padded["w_x"].shape[1] == LSTM_DEPLOY_VOCAB
        assert padded["w_out"].shape[0] == LSTM_DEPLOY_VOCAB
        # padded rows carry strongly negative bias
        v = tiny_lstm.vocabulary_size
        assert (padded["b_out"][v:] < -10).all()

    def test_stream_matches_reference(self, tiny_lstm, call_dataset):
        deployment = self.make(tiny_lstm)
        reference = deployment.make_reference()
        for branch in call_dataset.test_normal[0]:
            gpu_result = deployment.infer(int(branch))
            ref_surprisal = reference.infer(int(branch))
            assert gpu_result.surprisal == pytest.approx(
                ref_surprisal, rel=1e-3, abs=1e-4
            )

    def test_three_dispatches_per_inference(self, tiny_lstm):
        deployment = self.make(tiny_lstm)
        result = deployment.infer(1)
        assert [d.kernel for d in result.dispatches] == [
            "lstm_score", "lstm_gates", "lstm_update",
        ]

    def test_gates_phase_uses_four_workgroups(self, tiny_lstm):
        deployment = self.make(tiny_lstm, num_cus=5)
        result = deployment.infer(1)
        gates = result.dispatches[1]
        active = [c for c in gates.per_cu_cycles.values() if c > 0]
        assert len(active) == 4

    def test_multi_cu_same_math_fewer_cycles(self, tiny_lstm):
        single = self.make(tiny_lstm, num_cus=1)
        multi = self.make(tiny_lstm, num_cus=5)
        ids = [1, 2, 3, 1]
        s_total = m_total = 0
        for branch in ids:
            s = single.infer(branch)
            m = multi.infer(branch)
            assert s.surprisal == pytest.approx(m.surprisal, rel=1e-5)
            s_total += s.total_cycles
            m_total += m.total_cycles
        assert m_total < s_total

    def test_reset_state_restores_initial(self, tiny_lstm):
        deployment = self.make(tiny_lstm)
        first = deployment.infer(2).surprisal
        deployment.infer(3)
        deployment.reset_state()
        again = deployment.infer(2).surprisal
        assert first == pytest.approx(again, rel=1e-6)

    def test_state_evolution_changes_scores(self, tiny_lstm):
        deployment = self.make(tiny_lstm)
        a = deployment.infer(2).surprisal
        b = deployment.infer(2).surprisal
        assert a != pytest.approx(b, rel=1e-6)

    def test_out_of_vocab_rejected(self, tiny_lstm):
        deployment = self.make(tiny_lstm)
        with pytest.raises(ModelError):
            deployment.infer(tiny_lstm.vocabulary_size)

    def test_long_stream_stays_finite(self, tiny_lstm, call_dataset):
        """Clamped tanh keeps the recurrent state numerically sane."""
        deployment = self.make(tiny_lstm)
        reference = deployment.make_reference()
        stream = call_dataset.test_normal[:40].ravel()[:200]
        for branch in stream:
            s = reference.infer(int(branch))
            assert np.isfinite(s)
        assert np.isfinite(reference.h).all()
        assert np.isfinite(reference.c).all()
