"""Arbiter watchdog: stalls, hangs, cancellations, lane membership."""

import numpy as np
import pytest

from repro.errors import McmError
from repro.faults import FaultKind, FaultPlan, FaultSpec, ServiceFaultInjector
from repro.igm.vector_encoder import InputVector
from repro.mcm.arbiter import ArbitratedMcm
from repro.mcm.driver import MlMiaowDriver
from repro.mcm.engines import ProtocolConverter
from repro.mcm.mcm import Mcm, McmConfig
from repro.miaow.gpu import Gpu
from repro.ml.kernels import DeployedLstm


def vector(values, seq=0, cycle=0):
    return InputVector(
        values=np.asarray(values, dtype=np.int64),
        sequence_number=seq,
        trigger_address=0x1000,
        trigger_cycle=cycle,
    )


def service_plan(kind, rate, stall_us=100.0, seed=3):
    return FaultPlan(
        seed=seed, specs=(FaultSpec(kind, rate=rate, stall_us=stall_us),)
    )


@pytest.fixture()
def lanes(tiny_lstm):
    gpu = Gpu(name="shared")

    def make():
        driver = MlMiaowDriver(
            DeployedLstm(tiny_lstm), gpu, execute_on_gpu=False
        )
        return Mcm(
            driver=driver,
            converter=ProtocolConverter("lstm"),
            config=McmConfig(fifo_depth=8),
        )

    return [make(), make()]


class TestCancelHead:
    def test_cancel_drops_without_record(self, lanes):
        lane = lanes[0]
        lane.enqueue(vector([1], seq=0), arrival_ns=0.0)
        item = lane.cancel_head()
        assert item.sequence_number == 0
        assert lane.cancelled == 1
        assert lane.records == []
        assert lane.fifo.empty

    def test_cancel_empty_raises(self, lanes):
        with pytest.raises(McmError):
            lanes[0].cancel_head()

    def test_extra_service_ns_extends_one_service(self, lanes):
        lane = lanes[0]
        lane.enqueue(vector([1], seq=0), arrival_ns=0.0)
        lane.enqueue(vector([1], seq=1), arrival_ns=0.0)
        first_done = lane.serve_head(0.0)
        second_done = lane.serve_head(first_done, extra_service_ns=5_000.0)
        first = lane.records[0].service_ns
        second = lane.records[1].service_ns
        assert second == pytest.approx(first + 5_000.0)
        assert second_done == lane.records[1].done_ns


class TestWatchdog:
    def test_short_stall_serves_with_delay(self, lanes):
        faults = [
            ServiceFaultInjector(
                service_plan(FaultKind.MCM_STALL, 1.0, stall_us=10.0)
            ),
            None,
        ]
        arb = ArbitratedMcm(lanes, deadline_us=1000.0, service_faults=faults)
        arb.push(0, vector([1], seq=0), arrival_ns=0.0)
        arb.push(1, vector([1], seq=0), arrival_ns=0.0)
        records = arb.finalize()
        assert len(records[0]) == 1 and len(records[1]) == 1
        # lane 0's only service carries the injected 10 us stall
        assert records[0][0].service_ns == pytest.approx(
            records[1][0].service_ns + 10_000.0
        )
        assert arb.watchdog_trips == [0, 0]

    def test_stall_past_deadline_is_cancelled(self, lanes):
        faults = [
            ServiceFaultInjector(
                service_plan(FaultKind.MCM_STALL, 1.0, stall_us=1_000.0)
            ),
            None,
        ]
        arb = ArbitratedMcm(lanes, deadline_us=100.0, service_faults=faults)
        for seq in range(3):
            arb.push(0, vector([1], seq=seq), arrival_ns=0.0)
        arb.push(1, vector([1], seq=0), arrival_ns=0.0)
        records = arb.finalize()
        assert records[0] == []
        assert lanes[0].cancelled == 3
        assert arb.watchdog_trips == [3, 0]
        assert len(records[1]) == 1

    def test_abort_occupies_one_deadline_window(self, lanes):
        faults = [
            ServiceFaultInjector(service_plan(FaultKind.MCM_HANG, 1.0)),
            None,
        ]
        arb = ArbitratedMcm(lanes, deadline_us=100.0, service_faults=faults)
        arb.push(0, vector([1], seq=0), arrival_ns=0.0)
        arb.push(1, vector([1], seq=0), arrival_ns=0.0)
        records = arb.finalize()
        # the healthy lane's service starts exactly after the abort
        assert records[1][0].start_ns == pytest.approx(100.0 * 1e3)
        assert arb.watchdog_trips == [1, 0]
        assert not arb.hung

    def test_hang_without_watchdog_wedges_engine(self, lanes):
        faults = [
            ServiceFaultInjector(service_plan(FaultKind.MCM_HANG, 1.0)),
            None,
        ]
        arb = ArbitratedMcm(lanes, service_faults=faults)
        arb.push(0, vector([1], seq=0), arrival_ns=0.0)
        arb.push(1, vector([1], seq=0), arrival_ns=0.0)
        records = arb.finalize()
        assert arb.hung
        assert records[0] == [] and records[1] == []
        # reset clears the wedge and lets queued work drain
        arb.reset_session()
        assert not arb.hung

    def test_reset_session_reproduces_fault_pattern(self, lanes):
        faults = [
            ServiceFaultInjector(
                service_plan(FaultKind.MCM_STALL, 0.4, stall_us=1_000.0)
            ),
            None,
        ]
        arb = ArbitratedMcm(lanes, deadline_us=100.0, service_faults=faults)

        def run_round():
            for seq in range(6):
                arb.push(0, vector([1], seq=seq), arrival_ns=float(seq))
            arb.finalize()
            return [r.sequence_number for r in lanes[0].records]

        first = run_round()
        trips = arb.watchdog_trips[0]
        baseline = len(lanes[0].records)
        arb.reset_session()
        second = run_round()[baseline:]
        assert first == second
        assert arb.watchdog_trips[0] == 2 * trips

    def test_invalid_configuration_rejected(self, lanes):
        with pytest.raises(McmError):
            ArbitratedMcm(lanes, deadline_us=0.0)
        with pytest.raises(McmError):
            ArbitratedMcm(lanes, service_faults=[None])


class TestLaneMembership:
    def test_remove_and_readd_lane(self, lanes, tiny_lstm):
        arb = ArbitratedMcm(lanes)
        removed = arb.remove_lane(0)
        assert removed is lanes[0]
        assert arb.lanes == [lanes[1]]
        index = arb.add_lane(removed)
        assert index == 1
        assert arb.lanes == [lanes[1], lanes[0]]
        assert arb.watchdog_trips == [0, 0]

    def test_remove_last_lane_refused(self, lanes):
        arb = ArbitratedMcm(lanes[:1])
        with pytest.raises(McmError):
            arb.remove_lane(0)
        with pytest.raises(McmError):
            arb.remove_lane(5)

    def test_add_lane_engine_check(self, lanes, tiny_lstm):
        arb = ArbitratedMcm(lanes)
        foreign = Mcm(
            driver=MlMiaowDriver(
                DeployedLstm(tiny_lstm), Gpu(name="other"),
                execute_on_gpu=False,
            ),
            converter=ProtocolConverter("lstm"),
        )
        with pytest.raises(McmError):
            arb.add_lane(foreign)

    def test_round_robin_index_adjusts_after_removal(self, lanes, tiny_lstm):
        gpu = lanes[0].driver.gpu
        third = Mcm(
            driver=MlMiaowDriver(
                DeployedLstm(tiny_lstm), gpu, execute_on_gpu=False
            ),
            converter=ProtocolConverter("lstm"),
        )
        arb = ArbitratedMcm(lanes + [third])
        arb.push(0, vector([1], seq=0), arrival_ns=0.0)
        arb.finalize()  # grant to lane 0, next_lane -> 1
        arb.remove_lane(0)
        arb.push(0, vector([1], seq=0), arrival_ns=0.0)
        arb.push(1, vector([1], seq=0), arrival_ns=0.0)
        records = arb.finalize()
        assert len(records[0]) == 1 and len(records[1]) == 1
