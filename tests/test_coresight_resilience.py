"""Failure injection on the trace path: corruption and resync.

A real trace port can glitch; the PFT design recovers because (a) the
a-sync pattern (five 0x00 then 0x80) cannot appear inside any packet's
header position run for long, and (b) the i-sync that follows carries
a full absolute address, resetting the branch-address compression
state.  These tests corrupt the stream and check the decoder re-locks.
"""

import numpy as np
import pytest

from repro.coresight.decoder import DecodedBranch, DecodedISync, PftDecoder
from repro.coresight.ptm import Ptm, PtmConfig
from repro.errors import PacketDecodeError
from repro.workloads.cfg import BranchEvent, BranchKind


def make_stream(num_events=400, sync_interval=128):
    ptm = Ptm(PtmConfig(sync_interval_bytes=sync_interval))
    rng = np.random.default_rng(1)
    events = [
        BranchEvent(
            cycle=i * 10,
            source=0x40000 + 4 * i,
            target=int(0x50000 + 4 * rng.integers(0, 4096)),
            kind=BranchKind.UNCONDITIONAL,
        )
        for i in range(num_events)
    ]
    chunks = [ptm.feed(e) for e in events]
    chunks.append(ptm.flush())
    return b"".join(chunks), events


class TestCorruptionRecovery:
    def test_clean_stream_decodes_fully(self):
        stream, events = make_stream()
        branches = [
            i for i in PftDecoder().feed(stream)
            if isinstance(i, DecodedBranch)
        ]
        assert len(branches) == len(events)

    def test_strict_decoder_raises_on_corruption(self):
        stream, _ = make_stream()
        corrupted = bytearray(stream)
        corrupted[len(corrupted) // 2] ^= 0xFF
        with pytest.raises(PacketDecodeError):
            PftDecoder(strict=True).feed(bytes(corrupted))

    def test_lenient_decoder_relocks_after_sync(self):
        stream, events = make_stream(sync_interval=96)
        corrupted = bytearray(stream)
        hit = len(corrupted) // 2
        for offset in range(4):  # clobber a few bytes
            corrupted[hit + offset] ^= 0xA5
        items = PftDecoder(strict=False).feed(bytes(corrupted))
        branches = [i for i in items if isinstance(i, DecodedBranch)]
        # Most of the stream survives: everything before the hit plus
        # everything after the next sync point.
        assert len(branches) > 0.8 * len(events)
        # Late branches decode to *correct* addresses again (i-sync
        # reset the compression state): the tail must match the clean
        # decode's tail.
        clean = [
            i for i in PftDecoder().feed(stream)
            if isinstance(i, DecodedBranch)
        ]
        assert [b.address for b in branches[-40:]] == [
            b.address for b in clean[-40:]
        ]

    def test_truncated_stream_keeps_prefix(self):
        stream, events = make_stream()
        cut = PftDecoder(strict=False).feed(stream[: len(stream) // 2])
        branches = [i for i in cut if isinstance(i, DecodedBranch)]
        clean = [
            i for i in PftDecoder().feed(stream)
            if isinstance(i, DecodedBranch)
        ]
        assert [b.address for b in branches] == [
            b.address for b in clean[: len(branches)]
        ]

    def test_isync_resets_address_compression(self):
        stream, _ = make_stream(sync_interval=64)
        items = PftDecoder().feed(stream)
        isyncs = [i for i in items if isinstance(i, DecodedISync)]
        assert len(isyncs) > 3
        # every i-sync carries a full absolute (word-aligned) address
        assert all(s.address % 4 == 0 for s in isyncs)

    def test_garbage_prefix_ignored_until_async(self):
        stream, events = make_stream()
        # lenient decoder fed garbage, then the real stream (which
        # begins with an a-sync burst)
        garbage = bytes([0x22, 0x6A, 0x42] * 5)  # harmless junk headers
        decoder = PftDecoder(strict=False)
        items = decoder.feed(garbage + stream)
        branches = [i for i in items if isinstance(i, DecodedBranch)]
        clean = [
            i for i in PftDecoder().feed(stream)
            if isinstance(i, DecodedBranch)
        ]
        assert [b.address for b in branches[-50:]] == [
            b.address for b in clean[-50:]
        ]


class TestResyncHunt:
    """Full-recovery mode: errors drop the decoder into an a-sync hunt."""

    def test_hunt_decoder_relocks_and_counts(self):
        stream, events = make_stream(sync_interval=96)
        corrupted = bytearray(stream)
        hit = len(corrupted) // 2
        for offset in range(4):
            corrupted[hit + offset] ^= 0xA5
        decoder = PftDecoder(strict=False, resync_hunt=True)
        items = decoder.feed(bytes(corrupted))
        branches = [i for i in items if isinstance(i, DecodedBranch)]
        assert len(branches) > 0.8 * len(events)
        assert decoder.resyncs >= 1
        clean = [
            i for i in PftDecoder().feed(stream)
            if isinstance(i, DecodedBranch)
        ]
        assert [b.address for b in branches[-40:]] == [
            b.address for b in clean[-40:]
        ]

    def test_initial_lock_is_not_a_resync(self):
        stream, _ = make_stream()
        decoder = PftDecoder(strict=False, resync_hunt=True)
        decoder.feed(bytes([0x22, 0x6A, 0x42] * 5) + stream)
        assert decoder.resyncs == 0
        assert decoder.hunt_bytes >= 15

    def test_relock_within_one_sync_interval(self):
        # Recovery bound: after a corruption burst the hunt-mode
        # decoder produces correct branches again no later than the
        # second a-sync following the burst (the first sync point can
        # itself be damaged by the burst's tail).
        sync_interval = 64
        stream, events = make_stream(num_events=400,
                                     sync_interval=sync_interval)
        clean_decoder = PftDecoder()
        clean = [
            i for i in clean_decoder.feed(stream)
            if isinstance(i, DecodedBranch)
        ]
        hit = len(stream) // 3
        corrupted = bytearray(stream)
        for offset in range(6):
            corrupted[hit + offset] ^= 0xFF
        decoder = PftDecoder(strict=False, resync_hunt=True)
        branches = [
            i for i in decoder.feed(bytes(corrupted))
            if isinstance(i, DecodedBranch)
        ]
        tail = [b.address for b in clean[-20:]]
        assert [b.address for b in branches[-20:]] == tail
        # hunt consumed at most ~two sync intervals of bytes
        assert decoder.hunt_bytes <= 2 * sync_interval + 16


class TestTruncatedTail:
    """End-of-stream handling for a packet cut off mid-flight."""

    def test_strict_finish_raises_on_truncation(self):
        stream, _ = make_stream()
        decoder = PftDecoder(strict=True)
        decoder.feed(stream[:-3])  # cut mid-packet (statistically)
        if decoder._state.value == "idle":  # pragma: no cover
            pytest.skip("cut landed on a packet boundary")
        with pytest.raises(PacketDecodeError):
            decoder.finish()

    def test_lenient_finish_reports_truncated_packet(self):
        from repro.coresight.decoder import TruncatedPacket

        stream, _ = make_stream()
        decoder = PftDecoder(strict=False)
        decoder.feed(stream[:-3])
        out = decoder.finish()
        assert len(out) == 1
        marker = out[0]
        assert isinstance(marker, TruncatedPacket)
        assert marker.pending_bytes >= 1
        assert decoder.truncated == 1
        # the decoder is reusable for a fresh stream afterwards
        branches = [
            i for i in decoder.feed(stream)
            if isinstance(i, DecodedBranch)
        ]
        assert branches

    def test_clean_finish_is_empty(self):
        stream, _ = make_stream()
        decoder = PftDecoder(strict=True)
        decoder.feed(stream)
        assert decoder.finish() == []
        assert decoder.truncated == 0

    def test_hunt_mode_finish_returns_to_hunt(self):
        stream, _ = make_stream()
        decoder = PftDecoder(strict=False, resync_hunt=True)
        decoder.feed(stream[:-3])
        decoder.finish()
        assert decoder._state.value == "hunt"


class TestDeframerResyncHunt:
    def test_malformed_frame_recovers(self):
        from repro.coresight.tpiu import Tpiu, TpiuDeframer

        ptm_stream, _ = make_stream(num_events=300, sync_interval=96)
        tpiu = Tpiu(sync_period=4)
        framed = tpiu.push(ptm_stream) + tpiu.flush()
        corrupted = bytearray(framed)
        del corrupted[len(corrupted) // 2]  # byte loss shifts framing
        deframer = TpiuDeframer(expected_source_id=1, resync_hunt=True)
        payload = deframer.push(bytes(corrupted))
        assert deframer.frame_resyncs >= 1
        branches = [
            i for i in PftDecoder(strict=False,
                                  resync_hunt=True).feed(payload)
            if isinstance(i, DecodedBranch)
        ]
        assert len(branches) > 100

    def test_strict_deframer_still_raises(self):
        from repro.coresight.tpiu import Tpiu, TpiuDeframer
        from repro.errors import FrameSyncError

        ptm_stream, _ = make_stream(num_events=100)
        tpiu = Tpiu(sync_period=4)
        framed = tpiu.push(ptm_stream) + tpiu.flush()
        corrupted = bytearray(framed)
        del corrupted[len(corrupted) // 3]
        deframer = TpiuDeframer(expected_source_id=1)
        with pytest.raises(FrameSyncError):
            deframer.push(bytes(corrupted))
