"""Multi-tenant deployments: N programs, one shared ML-MIAOW.

The isolation contract under test: sharing the engine may *delay* a
tenant (single-server queueing) but never corrupts its stream — each
tenant's vectors, sequence numbers, and records are exactly what a
dedicated SoC running the same trace would produce, and the shared
engine never serves two lanes at once.
"""

from __future__ import annotations

import pytest

from repro.errors import McmError, SocConfigError
from repro.eval.metrics import (
    build_demo_manager,
    build_demo_soc,
    demo_events,
)
from repro.mcm.arbiter import ArbitratedMcm
from repro.mcm.driver import MlMiaowDriver
from repro.miaow.gpu import Gpu
from repro.obs import MetricsRegistry
from repro.soc.manager import Deployment, SocManager

NUM_TENANTS = 4


@pytest.fixture(scope="module")
def four_tenant_run():
    registry = MetricsRegistry()
    # Deep lane FIFOs: 4 tenants on one engine queue ~4x longer than a
    # dedicated SoC, and this fixture wants a loss-free round so the
    # content-isolation assertions are exact.
    manager = build_demo_manager(
        num_tenants=NUM_TENANTS, kind="lstm", metrics=registry,
        fifo_depth=256,
    )
    traces = {
        f"tenant{i}": demo_events("lstm", 0, 6_000, run_label=f"tenant-{i}")
        for i in range(NUM_TENANTS)
    }
    records = manager.run_events(traces)
    return manager, traces, records, registry


class TestFourTenants:
    def test_single_shared_engine(self, four_tenant_run):
        manager, _, _, _ = four_tenant_run
        engines = {
            id(t.deployment.driver.gpu) for t in manager.tenants
        }
        assert len(engines) == 1

    def test_every_tenant_gets_records(self, four_tenant_run):
        _, _, records, _ = four_tenant_run
        assert set(records) == {f"tenant{i}" for i in range(NUM_TENANTS)}
        for name, stream in records.items():
            assert len(stream) > 0, f"{name} produced no inferences"

    def test_streams_are_isolated_sequences(self, four_tenant_run):
        # Per-tenant sequence numbers are contiguous from zero: no
        # vector from another tenant ever lands in this lane.
        _, _, records, _ = four_tenant_run
        for name, stream in records.items():
            sequences = [r.sequence_number for r in stream]
            assert sequences == list(range(len(sequences))), name

    def test_engine_serves_one_lane_at_a_time(self, four_tenant_run):
        # Single-server invariant: the service intervals of all lanes,
        # merged, never overlap.
        _, _, records, _ = four_tenant_run
        intervals = sorted(
            (r.start_ns, r.done_ns)
            for stream in records.values()
            for r in stream
        )
        for (_, prev_done), (next_start, _) in zip(
            intervals, intervals[1:]
        ):
            assert next_start >= prev_done

    def test_tenant_matches_dedicated_soc(self, four_tenant_run):
        # Tenant 0's inference *content* equals a dedicated SoC run of
        # the same trace: same vectors in, same scores/anomaly flags
        # out.  (Timing differs: the shared engine adds queueing.)
        _, traces, records, _ = four_tenant_run
        solo = build_demo_soc("lstm", fifo_depth=256).run_events(
            traces["tenant0"]
        )
        shared = records["tenant0"]
        assert len(shared) == len(solo)
        for a, b in zip(shared, solo):
            assert a.sequence_number == b.sequence_number
            assert a.trigger_cycle == b.trigger_cycle
            assert a.arrival_ns == b.arrival_ns
            assert a.score == b.score
            assert a.anomalous == b.anomalous

    def test_arbiter_grants_cover_all_lanes(self, four_tenant_run):
        manager, _, records, registry = four_tenant_run
        counters = registry.snapshot()["counters"]
        for index in range(NUM_TENANTS):
            expected = len(records[f"tenant{index}"])
            assert counters[f"mcm.arbiter.grants.{index}"] == expected
        assert counters["socmgr.vectors"] == sum(
            len(stream) for stream in records.values()
        )

    def test_idle_tenant_and_second_round(self, four_tenant_run):
        manager, traces, first, _ = four_tenant_run
        # Second round: only tenant1 runs; others idle and return no
        # *new* records.  take_new_records semantics keep rounds
        # separable even though mcm.records accumulates.
        second = manager.run_events({"tenant1": traces["tenant1"]})
        assert len(second["tenant1"]) == len(first["tenant1"])
        for name in ("tenant0", "tenant2", "tenant3"):
            assert second[name] == []
        # Per-round sessions reset: the repeat run is reproducible.
        repeat = manager.run_events({"tenant1": traces["tenant1"]})
        assert [r.done_ns for r in repeat["tenant1"]] == [
            r.done_ns for r in second["tenant1"]
        ]


def test_contention_losses_stay_per_lane():
    # With the demo's shallow default FIFO (64), four tenants on one
    # engine overflow their *own* lanes; the drops are accounted
    # per-tenant and never corrupt the surviving record prefix.
    manager = build_demo_manager(num_tenants=NUM_TENANTS, kind="lstm")
    traces = {
        f"tenant{i}": demo_events("lstm", 0, 6_000, run_label=f"tenant-{i}")
        for i in range(NUM_TENANTS)
    }
    records = manager.run_events(traces)
    total_dropped = sum(
        t.mcm.dropped_vectors for t in manager.tenants
    )
    assert total_dropped > 0, "expected contention at fifo_depth=64"
    for name, stream in records.items():
        sequences = [r.sequence_number for r in stream]
        assert sequences == list(range(len(sequences))), name


class TestManagerValidation:
    def test_unknown_tenant_refused(self, four_tenant_run):
        manager, _, _, _ = four_tenant_run
        with pytest.raises(SocConfigError):
            manager.run_events({"ghost": []})
        with pytest.raises(SocConfigError):
            manager.tenant("ghost")

    def test_mixed_engines_refused(self):
        manager = build_demo_manager(num_tenants=2, kind="lstm")
        deployments = [t.deployment for t in manager.tenants]
        # rebuild tenant 1 around its own private GPU
        lone = deployments[1]
        lone_driver = MlMiaowDriver(
            lone.driver.deployment, Gpu(num_cus=5), execute_on_gpu=False
        )
        with pytest.raises(SocConfigError):
            SocManager(
                [
                    deployments[0],
                    Deployment(
                        name="rogue",
                        driver=lone_driver,
                        converter=lone.converter,
                        monitored_addresses=lone.monitored_addresses,
                        detector=lone.detector,
                        config=lone.config,
                    ),
                ]
            )

    def test_duplicate_names_refused(self):
        manager = build_demo_manager(num_tenants=2, kind="lstm")
        deployments = [t.deployment for t in manager.tenants]
        clone = Deployment(
            name=deployments[0].name,
            driver=deployments[1].driver,
            converter=deployments[1].converter,
            monitored_addresses=deployments[1].monitored_addresses,
            detector=deployments[1].detector,
            config=deployments[1].config,
        )
        with pytest.raises(SocConfigError):
            SocManager([deployments[0], clone])

    def test_empty_manager_refused(self):
        with pytest.raises(SocConfigError):
            SocManager([])

    def test_arbiter_requires_shared_engine(self):
        a = build_demo_manager(num_tenants=1, kind="lstm")
        b = build_demo_manager(num_tenants=1, kind="lstm")
        with pytest.raises(McmError):
            ArbitratedMcm([a.tenants[0].mcm, b.tenants[0].mcm])

    def test_arbiter_requires_lanes(self):
        with pytest.raises(McmError):
            ArbitratedMcm([])
