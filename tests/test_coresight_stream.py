"""PTM encoder, TPIU framing and the golden decoder, end to end."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.coresight.decoder import (
    DecodedAtom,
    DecodedBranch,
    DecodedContext,
    DecodedISync,
    DecodedTimestamp,
    PftDecoder,
)
from repro.coresight.driver import CoreSightDriver
from repro.coresight.ptm import Ptm, PtmConfig, encode_trace
from repro.coresight.tpiu import (
    FRAME_SIZE,
    SYNC_FRAME,
    Tpiu,
    TpiuDeframer,
)
from repro.errors import FrameSyncError, PacketDecodeError, SocConfigError
from repro.workloads.cfg import BranchEvent, BranchKind


def taken_events(events):
    return [
        e for e in events
        if not (e.kind is BranchKind.CONDITIONAL and not e.taken)
    ]


def decode_all(data):
    return PftDecoder().feed(data)


class TestPtmEncoder:
    def test_first_event_emits_sync_burst(self):
        ptm = Ptm()
        event = BranchEvent(0, 0x1000, 0x2000, BranchKind.UNCONDITIONAL)
        data = ptm.feed(event)
        items = decode_all(data)
        kinds = [type(i) for i in items]
        assert DecodedISync in kinds
        assert DecodedContext in kinds
        assert DecodedBranch in kinds

    def test_not_taken_conditionals_become_atoms(self):
        ptm = Ptm()
        events = [
            BranchEvent(0, 0x1000, 0x2000, BranchKind.UNCONDITIONAL)
        ] + [
            BranchEvent(i, 0x1000, 0x1004, BranchKind.CONDITIONAL, taken=False)
            for i in range(1, 4)
        ]
        data = b"".join(ptm.feed(e) for e in events) + ptm.flush()
        atoms = [i for i in decode_all(data) if isinstance(i, DecodedAtom)]
        assert len(atoms) == 3
        assert all(not a.taken for a in atoms)

    def test_syscall_marks_exception(self):
        events = [
            BranchEvent(0, 0x1000, 0x2000, BranchKind.UNCONDITIONAL),
            BranchEvent(1, 0x1010, 0xFFFF0000, BranchKind.SYSCALL),
        ]
        data = encode_trace(events)
        branches = [
            i for i in decode_all(data) if isinstance(i, DecodedBranch)
        ]
        assert branches[-1].is_syscall

    def test_periodic_resync(self):
        config = PtmConfig(sync_interval_bytes=64)
        ptm = Ptm(config)
        events = [
            BranchEvent(i, 0x1000 + 8 * i, 0x9000_0000 + 512 * i,
                        BranchKind.UNCONDITIONAL)
            for i in range(200)
        ]
        data = b"".join(ptm.feed(e) for e in events)
        isyncs = [i for i in decode_all(data) if isinstance(i, DecodedISync)]
        assert len(isyncs) > 3
        assert ptm.packet_counts["isync"] == len(isyncs)

    def test_timestamps_optional(self):
        config = PtmConfig(timestamps_enabled=True)
        ptm = Ptm(config)
        data = ptm.feed(
            BranchEvent(77, 0x1000, 0x2000, BranchKind.UNCONDITIONAL)
        )
        stamps = [
            i for i in decode_all(data) if isinstance(i, DecodedTimestamp)
        ]
        assert stamps and stamps[0].cycles == 77

    def test_compression_keeps_stream_small(self, small_trace):
        data = encode_trace(small_trace.events)
        assert len(data) / len(small_trace.events) < 2.0

    def test_decoded_branches_match_events(self, small_trace):
        data = encode_trace(small_trace.events)
        branches = [
            i for i in decode_all(data) if isinstance(i, DecodedBranch)
        ]
        expected = taken_events(small_trace.events)
        assert len(branches) == len(expected)
        assert all(
            b.address == e.target for b, e in zip(branches, expected)
        )


class TestDecoderRobustness:
    def test_unknown_header_strict(self):
        with pytest.raises(PacketDecodeError):
            PftDecoder(strict=True).feed(b"\x02")

    def test_unknown_header_lenient(self):
        assert PftDecoder(strict=False).feed(b"\x02") == []

    def test_ignore_byte_skipped(self):
        assert PftDecoder().feed(b"\x20\x20") == []

    def test_truncated_packet_held(self):
        decoder = PftDecoder()
        partial = decoder.feed(b"\x08\x00\x10")  # i-sync missing bytes
        assert partial == []
        rest = decoder.feed(b"\x00\x00\x01")
        assert isinstance(rest[0], DecodedISync)

    def test_streaming_equals_batch(self, small_trace):
        data = encode_trace(small_trace.events[:800])
        batch = PftDecoder().feed(data)
        stream_decoder = PftDecoder()
        streamed = []
        for i in range(0, len(data), 3):
            streamed.extend(stream_decoder.feed(data[i:i + 3]))
        assert len(batch) == len(streamed)
        assert all(a == b for a, b in zip(batch, streamed))


class TestTpiu:
    def test_frames_are_fixed_size(self):
        tpiu = Tpiu(sync_period=1000)
        out = tpiu.push(bytes(range(100)))
        assert len(out) % FRAME_SIZE == 0

    def test_first_output_begins_with_sync(self):
        tpiu = Tpiu()
        out = tpiu.push(bytes(30))
        assert out[:FRAME_SIZE] == SYNC_FRAME

    def test_flush_emits_partial_payload(self):
        tpiu = Tpiu()
        tpiu.push(b"\x01\x02\x03")
        out = tpiu.flush()
        deframer = TpiuDeframer()
        # prepend a sync so the receiver can lock on
        assert deframer.push(SYNC_FRAME + out) == b"\x01\x02\x03"

    def test_roundtrip(self):
        tpiu = Tpiu(sync_period=4)
        payload = bytes(np.random.default_rng(0).integers(0, 256, 1000,
                                                          dtype=np.uint8))
        framed = tpiu.push(payload) + tpiu.flush()
        deframer = TpiuDeframer()
        assert deframer.push(framed) == payload

    def test_deframer_discards_until_sync(self):
        tpiu = Tpiu()
        framed = tpiu.push(bytes(range(60)))
        deframer = TpiuDeframer()
        garbage = b"\xAB" * 23
        recovered = deframer.push(garbage + framed)
        assert recovered == bytes(range(60))[:len(recovered)]
        assert deframer.bytes_discarded >= len(garbage)

    def test_wrong_source_id_raises(self):
        tpiu = Tpiu(source_id=0x2)
        framed = tpiu.push(bytes(range(60)))
        deframer = TpiuDeframer(expected_source_id=0x1)
        with pytest.raises(FrameSyncError):
            deframer.push(framed)

    def test_bad_source_id_constructor(self):
        with pytest.raises(ValueError):
            Tpiu(source_id=16)

    @given(st.binary(min_size=1, max_size=400), st.integers(1, 16))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_any_payload_any_chunking(self, payload, chunk):
        tpiu = Tpiu(sync_period=3)
        framed = bytearray()
        for i in range(0, len(payload), chunk):
            framed += tpiu.push(payload[i:i + chunk])
        framed += tpiu.flush()
        assert TpiuDeframer().push(bytes(framed)) == payload


class TestDriver:
    def test_requires_enable(self):
        driver = CoreSightDriver()
        with pytest.raises(SocConfigError):
            driver.trace(
                BranchEvent(0, 0x1000, 0x2000, BranchKind.UNCONDITIONAL)
            )

    def test_reconfigure_while_enabled_rejected(self):
        driver = CoreSightDriver()
        driver.enable()
        with pytest.raises(SocConfigError):
            driver.set_context_id(5)

    def test_end_to_end_trace_all(self, small_trace):
        driver = CoreSightDriver()
        driver.enable()
        framed = driver.trace_all(small_trace.events[:500])
        deframer = CoreSightDriver.new_deframer()
        payload = deframer.push(framed)
        branches = [
            i for i in PftDecoder().feed(payload)
            if isinstance(i, DecodedBranch)
        ]
        expected = taken_events(small_trace.events[:500])
        assert [b.address for b in branches] == [e.target for e in expected]
