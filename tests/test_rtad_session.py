"""Per-session SoC semantics: repeated runs, empty traces, trial edges.

Regression tests for the session-state fixes that rode along with the
staged-dataplane refactor:

- ``run_events`` used to leak PTM FIFO bytes, CoreSight compression
  state, the encoder window, and the MCM busy window across calls, so
  back-to-back runs diverged from fresh-SoC runs;
- an empty trace used to emit a spurious zero-time FIFO flush;
- ``run_attack_trial`` edge cases (onset at the last index, FIFO
  overflow, timeout expiry) were untested.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SocConfigError
from repro.eval.metrics import build_demo_soc, demo_events
from repro.obs import MetricsRegistry


def record_key(record):
    return (
        record.sequence_number,
        record.trigger_cycle,
        record.arrival_ns,
        record.start_ns,
        record.done_ns,
        record.score,
        record.anomalous,
    )


class TestRepeatedRuns:
    @pytest.mark.parametrize("dataplane", ["batched", "loop"])
    def test_second_run_matches_fresh_soc(self, dataplane):
        events = demo_events("lstm", 0, 6_000)
        soc = build_demo_soc("lstm")
        # run_events returns the live lifetime log (mcm.records), so
        # snapshot a copy before the second call appends to it.
        first = list(soc.run_events(events, dataplane=dataplane))
        both = soc.run_events(events, dataplane=dataplane)
        second = both[len(first):]
        fresh = build_demo_soc("lstm").run_events(
            events, dataplane=dataplane
        )
        assert len(second) == len(fresh) > 10
        assert [record_key(r) for r in second] == [
            record_key(r) for r in fresh
        ]

    def test_interleaved_traces_stay_independent(self):
        a = demo_events("lstm", 0, 4_000, run_label="session-a")
        b = demo_events("lstm", 0, 4_000, run_label="session-b")
        soc = build_demo_soc("lstm")
        run_a = list(soc.run_events(a))
        run_b = soc.run_events(b)[len(run_a):]
        fresh_b = build_demo_soc("lstm").run_events(b)
        assert [record_key(r) for r in run_b] == [
            record_key(r) for r in fresh_b
        ]


class TestEmptyTrace:
    @pytest.mark.parametrize("dataplane", ["batched", "loop"])
    def test_empty_trace_is_a_clean_noop(self, dataplane):
        registry = MetricsRegistry()
        soc = build_demo_soc("lstm", metrics=registry)
        records = soc.run_events([], dataplane=dataplane)
        assert records == []
        counters = registry.snapshot()["counters"]
        # no spurious zero-time FIFO flush, no trace bytes, no vectors
        assert counters.get("ptm_fifo.flushes", 0) == 0
        assert counters.get("ptm.bytes", 0) == 0
        assert counters.get("mcm.vectors_in", 0) == 0

    def test_empty_then_real_run_unaffected(self):
        events = demo_events("lstm", 0, 4_000)
        soc = build_demo_soc("lstm")
        assert soc.run_events([]) == []
        records = soc.run_events(events)
        fresh = build_demo_soc("lstm").run_events(events)
        assert [record_key(r) for r in records] == [
            record_key(r) for r in fresh
        ]


class TestAttackTrialEdges:
    def test_onset_at_last_index(self):
        soc = build_demo_soc("lstm")
        ids = ((np.arange(300) % 20) + 1).tolist()
        result = soc.run_attack_trial(
            normal_ids=ids,
            mean_interval_us=150.0,
            gadget_ids=[5, 9, 3, 7],
            onset_index=len(ids),     # gadget appended after the stream
            seed=1,
        )
        assert result.onset_ns > 0
        assert result.inferences == len(ids) + 4
        # the gadget still completes inferences, so a judgment exists
        assert result.detection_latency_us is not None
        assert result.detection_latency_us > 0

    def test_onset_past_end_rejected(self):
        soc = build_demo_soc("lstm")
        with pytest.raises(SocConfigError):
            soc.run_attack_trial(
                normal_ids=[1, 2, 3],
                mean_interval_us=10.0,
                gadget_ids=[1],
                onset_index=4,
            )

    def test_saturating_gadget_overflows_fifo(self):
        soc = build_demo_soc("lstm", num_cus=1, fifo_depth=4)
        ids = ((np.arange(500) % 20) + 1).tolist()
        result = soc.run_attack_trial(
            normal_ids=ids,
            mean_interval_us=5.0,     # far faster than the engine
            gadget_ids=[3, 4, 5, 6],
            onset_index=250,
            seed=3,
        )
        assert result.overflowed
        assert result.dropped_vectors > 0
        assert result.inferences < len(ids) + 4

    def test_timeout_expiry_reports_none(self):
        soc = build_demo_soc("lstm")
        ids = ((np.arange(200) % 20) + 1).tolist()
        # Service alone takes ~20 us, so a 1 us budget always expires:
        # the judgment lands after the window and must not be counted.
        result = soc.run_attack_trial(
            normal_ids=ids,
            mean_interval_us=150.0,
            gadget_ids=[5, 9, 3, 7],
            onset_index=100,
            seed=1,
            timeout_us=1.0,
        )
        assert result.detection_latency_us is None
        assert not result.detected
        # the same trial with a sane budget does produce a judgment
        relaxed = build_demo_soc("lstm").run_attack_trial(
            normal_ids=ids,
            mean_interval_us=150.0,
            gadget_ids=[5, 9, 3, 7],
            onset_index=100,
            seed=1,
        )
        assert relaxed.detection_latency_us is not None
