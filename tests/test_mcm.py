"""MCM: FIFO, FSM protocol, engines, driver, queueing top level."""

import numpy as np
import pytest

from repro.errors import FifoOverflowError, FsmProtocolError, McmError
from repro.igm.vector_encoder import InputVector
from repro.mcm.driver import MlMiaowDriver
from repro.mcm.engines import ProtocolConverter, RxEngine, TxEngine
from repro.mcm.fifo import InternalFifo
from repro.mcm.fsm import ControlFsm, McmState
from repro.mcm.interrupt import Interrupt, InterruptManager
from repro.mcm.mcm import Mcm, McmConfig
from repro.miaow.gpu import Gpu
from repro.ml.detector import ThresholdDetector
from repro.ml.kernels import DeployedElm, DeployedLstm


def vector(values, seq=0, cycle=0):
    return InputVector(
        values=np.asarray(values, dtype=np.int64),
        sequence_number=seq,
        trigger_address=0x1000,
        trigger_cycle=cycle,
    )


class TestFifo:
    def test_order_preserved(self):
        fifo = InternalFifo(depth=4)
        for i in range(3):
            fifo.push(i, arrival_ns=i * 10.0)
        assert [fifo.pop().item for _ in range(3)] == [0, 1, 2]

    def test_overflow_drops_newest(self):
        fifo = InternalFifo(depth=2)
        assert fifo.push("a", 0.0)
        assert fifo.push("b", 1.0)
        assert not fifo.push("c", 2.0)
        assert fifo.drops == 1
        assert fifo.pop().item == "a"

    def test_overflow_can_raise(self):
        fifo = InternalFifo(depth=1, raise_on_overflow=True)
        fifo.push("a", 0.0)
        with pytest.raises(FifoOverflowError):
            fifo.push("b", 1.0)

    def test_occupancy_stats(self):
        fifo = InternalFifo(depth=8)
        for i in range(5):
            fifo.push(i, 0.0)
        fifo.pop()
        assert fifo.max_occupancy == 5
        assert len(fifo) == 4

    def test_pop_empty(self):
        assert InternalFifo().pop() is None

    def test_arrival_time_recorded(self):
        fifo = InternalFifo()
        fifo.push("x", arrival_ns=123.0)
        assert fifo.peek().arrival_ns == 123.0


class TestFsm:
    def test_full_round(self):
        fsm = ControlFsm()
        transitions = fsm.run_inference_sequence(time_ns=5.0)
        assert transitions == 5
        assert fsm.state is McmState.WAIT_INPUT
        assert len(fsm.history) == 5

    def test_illegal_event_raises(self):
        fsm = ControlFsm()
        with pytest.raises(FsmProtocolError):
            fsm.fire("computation_done")

    def test_state_order(self):
        fsm = ControlFsm()
        fsm.fire("input_available")
        assert fsm.state is McmState.READ_INPUT
        fsm.fire("vector_read")
        assert fsm.state is McmState.WRITE_INPUT
        fsm.fire("engine_started")
        assert fsm.state is McmState.WAIT_DONE
        fsm.fire("computation_done")
        assert fsm.state is McmState.READ_RESULT

    def test_control_cycles(self):
        fsm = ControlFsm(cycles_per_transition=3)
        assert fsm.control_cycles_per_inference == 15


class TestEngines:
    def test_tx_cycles_linear(self):
        tx = TxEngine(setup_cycles=10, cycles_per_word=2)
        assert tx.cycles(0) == 10
        assert tx.cycles(16) == 42

    def test_rx_cycles(self):
        rx = RxEngine(setup_cycles=5, cycles_per_word=1)
        assert rx.cycles(4) == 9

    def test_negative_size_rejected(self):
        with pytest.raises(McmError):
            TxEngine().cycles(-1)

    def test_lstm_converter_passthrough(self):
        converter = ProtocolConverter("lstm")
        assert converter.convert(np.array([7])) == 7
        assert converter.words_for(7) == 1

    def test_lstm_converter_rejects_windows(self):
        converter = ProtocolConverter("lstm")
        with pytest.raises(McmError):
            converter.convert(np.array([1, 2]))

    def test_elm_converter_needs_dictionary(self):
        with pytest.raises(McmError):
            ProtocolConverter("elm")

    def test_elm_converter_emits_pattern_indices(self, tiny_dictionary):
        converter = ProtocolConverter("elm", tiny_dictionary)
        window = np.array([1, 2, 3, 4, 5, 6])
        out = converter.convert(window)
        assert (out == tiny_dictionary.indices(window)).all()
        assert converter.words_for(out) == len(out)

    def test_unknown_kind(self):
        with pytest.raises(McmError):
            ProtocolConverter("cnn")


class TestInterruptManager:
    def test_fire_records_and_calls_handler(self):
        seen = []
        manager = InterruptManager(handler=seen.append)
        manager.fire(10.0, 3.2, 7)
        assert manager.count == 1
        assert manager.first == Interrupt(10.0, 3.2, 7)
        assert seen[0].sequence_number == 7


class TestDriver:
    def test_elm_phases_measured(self, tiny_elm, tiny_dictionary):
        deployment = DeployedElm(tiny_elm, tiny_dictionary, window=12)
        driver = MlMiaowDriver(deployment, Gpu(), execute_on_gpu=True)
        assert driver.phases.num_dispatches == 1
        assert driver.phases.total_cycles > 100
        assert driver.result_words == deployment.num_workgroups

    def test_lstm_phases_measured(self, tiny_lstm):
        driver = MlMiaowDriver(DeployedLstm(tiny_lstm), Gpu(),
                               execute_on_gpu=True)
        assert driver.phases.num_dispatches == 3
        assert driver.result_words == 1

    def test_calibrated_mode_matches_exact_scores(self, tiny_lstm):
        exact = MlMiaowDriver(
            DeployedLstm(tiny_lstm), Gpu(), execute_on_gpu=True
        )
        fast = MlMiaowDriver(
            DeployedLstm(tiny_lstm), Gpu(), execute_on_gpu=False
        )
        for branch in (1, 2, 3, 1, 2):
            a = exact.run_inference(branch)
            b = fast.run_inference(branch)
            assert a.score == pytest.approx(b.score, rel=1e-3, abs=1e-4)
            assert b.phases.total_cycles == fast.phases.total_cycles

    def test_elm_calibrated_scores_match(self, tiny_elm, tiny_dictionary,
                                         syscall_dataset):
        exact = MlMiaowDriver(
            DeployedElm(tiny_elm, tiny_dictionary, window=12),
            Gpu(), execute_on_gpu=True,
        )
        fast = MlMiaowDriver(
            DeployedElm(tiny_elm, tiny_dictionary, window=12),
            Gpu(), execute_on_gpu=False,
        )
        converter = ProtocolConverter("elm", tiny_dictionary)
        for window in syscall_dataset.test_normal[:4]:
            indices = converter.convert(window)
            assert exact.run_inference(indices).score == pytest.approx(
                fast.run_inference(indices).score, rel=1e-3
            )

    def test_reset_restores_lstm_state(self, tiny_lstm):
        driver = MlMiaowDriver(DeployedLstm(tiny_lstm), Gpu(),
                               execute_on_gpu=False)
        first = driver.run_inference(1).score
        driver.run_inference(2)
        driver.reset()
        assert driver.run_inference(1).score == pytest.approx(first)


class TestMcmQueueing:
    def make_mcm(self, tiny_lstm, fifo_depth=4, detector=None, smoothing=1):
        driver = MlMiaowDriver(DeployedLstm(tiny_lstm), Gpu(),
                               execute_on_gpu=False)
        return Mcm(
            driver=driver,
            converter=ProtocolConverter("lstm"),
            detector=detector,
            config=McmConfig(fifo_depth=fifo_depth,
                             score_smoothing=smoothing),
        )

    def test_kind_mismatch_rejected(self, tiny_elm, tiny_dictionary):
        driver = MlMiaowDriver(
            DeployedElm(tiny_elm, tiny_dictionary, window=12),
            Gpu(), execute_on_gpu=False,
        )
        with pytest.raises(McmError):
            Mcm(driver=driver, converter=ProtocolConverter("lstm"))

    def test_serial_service(self, tiny_lstm):
        mcm = self.make_mcm(tiny_lstm)
        mcm.push(vector([1], seq=0), arrival_ns=0.0)
        mcm.push(vector([2], seq=1), arrival_ns=1.0)
        records = mcm.finalize()
        assert len(records) == 2
        assert records[1].start_ns >= records[0].done_ns

    def test_idle_arrivals_no_queueing(self, tiny_lstm):
        mcm = self.make_mcm(tiny_lstm)
        service = None
        gap = 1e9  # 1 second apart
        for i in range(3):
            mcm.push(vector([1], seq=i), arrival_ns=i * gap)
        records = mcm.finalize()
        assert all(r.queue_ns == 0.0 for r in records)

    def test_burst_queues(self, tiny_lstm):
        mcm = self.make_mcm(tiny_lstm, fifo_depth=8)
        for i in range(4):
            mcm.push(vector([1], seq=i), arrival_ns=float(i))
        records = mcm.finalize()
        assert records[-1].queue_ns > 0

    def test_overflow_drops_and_counts(self, tiny_lstm):
        mcm = self.make_mcm(tiny_lstm, fifo_depth=2)
        for i in range(10):
            mcm.push(vector([1], seq=i), arrival_ns=float(i))
        records = mcm.finalize()
        assert mcm.overflowed
        assert mcm.dropped_vectors == 10 - len(records)
        assert len(records) < 10

    def test_service_breakdown_positive(self, tiny_lstm):
        mcm = self.make_mcm(tiny_lstm)
        mcm.push(vector([1]), arrival_ns=0.0)
        record = mcm.finalize()[0]
        assert record.service_ns > record.gpu_cycles / 50e6 * 1e9 * 0.9
        assert record.done_ns > record.start_ns

    def test_detector_fires_interrupt(self, tiny_lstm):
        detector = ThresholdDetector(0.5)
        detector._threshold = -1.0  # everything is anomalous
        mcm = self.make_mcm(tiny_lstm, detector=detector)
        mcm.push(vector([1], seq=3), arrival_ns=0.0)
        mcm.finalize()
        assert mcm.interrupts.count == 1
        assert mcm.interrupts.first.sequence_number == 3

    def test_smoothing_averages_scores(self, tiny_lstm):
        detector = ThresholdDetector(0.5)
        detector._threshold = 1e9  # never fires; we check records only
        plain = self.make_mcm(tiny_lstm, detector=detector, smoothing=1)
        smooth = self.make_mcm(tiny_lstm, detector=detector, smoothing=3)
        for i, branch in enumerate((1, 2, 3, 1, 2)):
            plain.push(vector([branch], seq=i), arrival_ns=i * 1e6)
            smooth.push(vector([branch], seq=i), arrival_ns=i * 1e6)
        raw = [r.score for r in plain.finalize()]
        smooth.finalize()
        expected_last = np.mean(raw[-3:])
        assert smooth._recent_scores[-1] == pytest.approx(raw[-1])
        assert np.mean(smooth._recent_scores) == pytest.approx(
            expected_last, rel=1e-6
        )


class TestDrainBatchHistogram:
    """``mcm.drain.batch_vectors`` must account for every served vector,
    including the final partial drain when the queue empties mid-round
    and the arbitrated path where the arbiter owns the drain loop."""

    def test_direct_mode_partial_drains_sum_to_total(self, tiny_lstm):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        driver = MlMiaowDriver(
            DeployedLstm(tiny_lstm), Gpu(), execute_on_gpu=False
        )
        mcm = Mcm(
            driver=driver,
            converter=ProtocolConverter("lstm"),
            config=McmConfig(fifo_depth=16),
            metrics=registry,
        )
        # A burst (drained in one batch when the next push arrives) and
        # trailing idle arrivals (each drained alone): several partial
        # drains, the last triggered by finalize on a non-empty queue.
        for i in range(4):
            mcm.push(vector([1], seq=i), arrival_ns=float(i))
        for i in range(4, 7):
            mcm.push(vector([1], seq=i), arrival_ns=1e9 * (i + 1))
        records = mcm.finalize()
        histogram = registry.snapshot()["histograms"][
            "mcm.drain.batch_vectors"
        ]
        assert histogram["sum"] == len(records) == 7
        assert histogram["count"] >= 2  # really multiple partial drains

    def test_arbitrated_mode_sums_to_total_inferences(self, tiny_lstm):
        from repro.mcm.arbiter import ArbitratedMcm
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        gpu = Gpu(name="shared")
        lanes = []
        for _ in range(2):
            driver = MlMiaowDriver(
                DeployedLstm(tiny_lstm), gpu, execute_on_gpu=False
            )
            lanes.append(
                Mcm(
                    driver=driver,
                    converter=ProtocolConverter("lstm"),
                    config=McmConfig(fifo_depth=16),
                    metrics=registry,
                )
            )
        arb = ArbitratedMcm(lanes, metrics=registry)
        for i in range(5):
            arb.push(i % 2, vector([1], seq=i // 2), arrival_ns=float(i))
        arb.finalize()
        total = sum(len(lane.records) for lane in lanes)
        histogram = registry.snapshot()["histograms"][
            "mcm.drain.batch_vectors"
        ]
        assert total == 5
        assert histogram["sum"] == total
