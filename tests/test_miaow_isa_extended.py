"""Extended ISA: bit manipulation, FMA, conversions, LDS atomics."""

import numpy as np
import pytest

from repro.miaow.alu import execute
from repro.miaow.assembler import assemble, float_bits
from repro.miaow.binary import decode_kernel, encode_kernel
from repro.miaow.isa import Instruction, Lit, SReg, VReg, WAVE_SIZE
from repro.miaow.memory import GlobalMemory, LocalMemory
from repro.miaow.wavefront import Wavefront


class FakeCu:
    def __init__(self):
        self.global_memory = GlobalMemory(64 * 1024)
        self.local_memory = LocalMemory(16 * 1024)


@pytest.fixture
def cu():
    return FakeCu()


@pytest.fixture
def wf():
    return Wavefront(vgprs=16)


def run(wf, cu, op, *operands):
    execute(wf, Instruction(op=op, operands=tuple(operands)), cu)


class TestScalarBitOps:
    def test_not(self, wf, cu):
        run(wf, cu, "s_not_b32", SReg(2), Lit(0x0000FFFF))
        assert wf.s_u32(2) == 0xFFFF0000

    def test_popcount(self, wf, cu):
        run(wf, cu, "s_bcnt1_i32_b32", SReg(2), Lit(0xF0F0))
        assert wf.s_u32(2) == 8

    def test_popcount_zero(self, wf, cu):
        run(wf, cu, "s_bcnt1_i32_b32", SReg(2), Lit(0))
        assert wf.s_u32(2) == 0

    def test_find_first_one(self, wf, cu):
        run(wf, cu, "s_ff1_i32_b32", SReg(2), Lit(0b101000))
        assert wf.s_u32(2) == 3

    def test_find_first_one_empty(self, wf, cu):
        run(wf, cu, "s_ff1_i32_b32", SReg(2), Lit(0))
        assert wf.s_u32(2) == 0xFFFFFFFF


class TestVectorExtended:
    def test_fma(self, wf, cu):
        wf.vgpr[1] = np.full(WAVE_SIZE, float_bits(2.0), np.uint32)
        wf.vgpr[2] = np.full(WAVE_SIZE, float_bits(3.0), np.uint32)
        wf.vgpr[3] = np.full(WAVE_SIZE, float_bits(0.5), np.uint32)
        run(wf, cu, "v_fma_f32", VReg(4), VReg(1), VReg(2), VReg(3))
        assert np.allclose(wf.v_f32(4), 6.5)

    def test_mul_hi_u32(self, wf, cu):
        wf.vgpr[1] = np.full(WAVE_SIZE, 0x80000000, np.uint32)
        run(wf, cu, "v_mul_hi_u32", VReg(2), VReg(1), Lit(4))
        assert (wf.v_u32(2) == 2).all()

    def test_bfe(self, wf, cu):
        wf.vgpr[1] = np.full(WAVE_SIZE, 0xABCD1234, np.uint32)
        run(wf, cu, "v_bfe_u32", VReg(2), VReg(1), Lit(8), Lit(8))
        assert (wf.v_u32(2) == 0x12).all()

    def test_bfi(self, wf, cu):
        # select mask 0xFF00: insert bits from src1, keep base elsewhere
        run(
            wf, cu, "v_bfi_b32", VReg(2),
            Lit(0xFF00), Lit(0xAB00), Lit(0x1234),
        )
        assert (wf.v_u32(2) == 0xAB34).all()

    def test_cvt_unsigned_roundtrip(self, wf, cu):
        wf.vgpr[1] = np.full(WAVE_SIZE, 3_000_000_000, np.uint32)
        run(wf, cu, "v_cvt_f32_u32", VReg(2), VReg(1))
        run(wf, cu, "v_cvt_u32_f32", VReg(3), VReg(2))
        assert np.allclose(
            wf.v_u32(3).astype(np.float64), 3_000_000_000, rtol=1e-7
        )

    def test_trunc_floor_differ_on_negatives(self, wf, cu):
        wf.vgpr[1] = np.full(WAVE_SIZE, float_bits(-1.5), np.uint32)
        run(wf, cu, "v_trunc_f32", VReg(2), VReg(1))
        run(wf, cu, "v_floor_f32", VReg(3), VReg(1))
        assert (wf.v_f32(2) == -1.0).all()
        assert (wf.v_f32(3) == -2.0).all()


class TestLdsAtomic:
    def test_colliding_lanes_accumulate(self, wf, cu):
        # all 64 lanes add 1 to the same word
        wf.vgpr[1] = np.zeros(WAVE_SIZE, np.uint32)  # address 0
        wf.vgpr[2] = np.ones(WAVE_SIZE, np.uint32)
        run(wf, cu, "ds_add_u32", VReg(1), VReg(2))
        assert cu.local_memory.read_block(0, 1)[0] == WAVE_SIZE

    def test_respects_exec_mask(self, wf, cu):
        wf.vgpr[1] = np.zeros(WAVE_SIZE, np.uint32)
        wf.vgpr[2] = np.ones(WAVE_SIZE, np.uint32)
        wf.exec_mask[:] = False
        wf.exec_mask[:10] = True
        run(wf, cu, "ds_add_u32", VReg(1), VReg(2))
        assert cu.local_memory.read_block(0, 1)[0] == 10

    def test_histogram_kernel(self, cu):
        """An LDS-atomic histogram — a kernel the ELM's converter could
        offload: each lane bins its input value."""
        from repro.miaow.gpu import Gpu
        from repro.miaow.runtime import GpuRuntime

        source = """
        .kernel lds_histogram
        .vgprs 8
            ; s2 = input base (64 u32 bins in [0,16)), s3 = out base
            v_lshlrev_b32 v1, 2, v0
            v_add_i32 v1, v1, s2
            flat_load_dword v2, v1          ; value
            v_lshlrev_b32 v3, 2, v2         ; bin byte address
            ds_add_u32 v3, 1
            ; copy bins back out (each lane copies its own slot;
            ; only slots 0..15 are ever nonzero)
            v_lshlrev_b32 v4, 2, v0
            ds_read_b32 v5, v4
            v_add_i32 v6, v4, s3
            flat_store_dword v6, v5
            s_endpgm
        """
        gpu = Gpu(num_cus=1)
        runtime = GpuRuntime(gpu)
        kernel = runtime.build_program(source)
        rng = np.random.default_rng(0)
        values = rng.integers(0, 16, 64).astype(np.uint32)
        buf_in = runtime.alloc(64 * 4)
        buf_out = runtime.alloc(64 * 4)
        runtime.write(buf_in, values)
        runtime.launch(kernel, 1, [buf_in, buf_out])
        bins = runtime.read_u32(buf_out, 16)
        expected = np.bincount(values, minlength=16)[:16]
        assert (bins == expected).all()


class TestBinaryFourOperands:
    def test_fma_roundtrips(self):
        kernel = assemble(
            "v_fma_f32 v1, v2, v3, 1.5\n"
            "v_bfe_u32 v4, v1, 4, 8\n"
            "s_endpgm\n"
        )
        again = decode_kernel(encode_kernel(kernel))
        assert [str(i) for i in again.instructions] == [
            str(i) for i in kernel.instructions
        ]

    def test_all_opcodes_fit_encoding(self):
        """Every opcode's maximum-arity form must encode."""
        from repro.miaow.isa import OPCODES

        for name, info in OPCODES.items():
            arity = len(info.signature.rstrip("L"))
            assert arity <= 4, name