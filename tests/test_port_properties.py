"""Conservation properties of pipeline ports under rate mismatch.

The serving front door leans on :class:`repro.pipeline.Port` for its
bounded per-tenant windows, so the two policies' accounting must be
exact under arbitrary producer/consumer interleavings:

- ``STALL``: backpressure only — nothing is ever lost.  Every batch
  either enters the port (and comes out, in order) or is refused back
  to the caller with a stall counted.
- ``DROP``: overflow loses exactly the refused batch, and every loss
  is counted — attempts == accepted + drops, always.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs import MetricsRegistry
from repro.pipeline import Port, PortPolicy

#: (produce_burst, consume_burst) schedule: bursts up to 2x a typical
#: capacity so both overflow and underflow happen often.
schedules = st.lists(
    st.tuples(st.integers(0, 8), st.integers(0, 8)), max_size=40
)


def _run_schedule(port, schedule):
    """Drive one interleaving; returns (attempts, accepted, drained)."""
    attempts = []
    accepted = []
    drained = []
    sequence = 0
    for produce, consume in schedule:
        for _ in range(produce):
            item = sequence
            sequence += 1
            attempts.append(item)
            if port.put(item):
                accepted.append(item)
        for _ in range(consume):
            item = port.get()
            if item is not None:
                drained.append(item)
    while not port.empty:
        drained.append(port.get())
    return attempts, accepted, drained


class TestStallConservation:
    @given(capacity=st.integers(1, 8), schedule=schedules)
    @settings(max_examples=80, deadline=None)
    def test_nothing_lost_under_stall(self, capacity, schedule):
        port = Port("p", capacity=capacity, policy=PortPolicy.STALL)
        attempts, accepted, drained = _run_schedule(port, schedule)
        # Everything accepted comes back out, in FIFO order.
        assert drained == accepted
        # A refusal is a stall, never a silent loss.
        assert port.stalls == len(attempts) - len(accepted)
        assert port.drops == 0

    @given(capacity=st.integers(1, 8), schedule=schedules)
    @settings(max_examples=40, deadline=None)
    def test_stall_only_when_full(self, capacity, schedule):
        port = Port("p", capacity=capacity, policy=PortPolicy.STALL)
        for produce, consume in schedule:
            for _ in range(produce):
                was_full = port.full
                assert port.put(object()) == (not was_full)
            for _ in range(consume):
                port.get()


class TestDropConservation:
    @given(capacity=st.integers(1, 8), schedule=schedules)
    @settings(max_examples=80, deadline=None)
    def test_drops_exactly_accounted(self, capacity, schedule):
        port = Port("p", capacity=capacity, policy=PortPolicy.DROP)
        attempts, accepted, drained = _run_schedule(port, schedule)
        assert drained == accepted
        # Overflow loses exactly the refused batch, and counts it.
        assert len(attempts) == len(accepted) + port.drops
        assert port.stalls == 0

    @given(capacity=st.integers(1, 8), schedule=schedules)
    @settings(max_examples=40, deadline=None)
    def test_drop_only_when_full(self, capacity, schedule):
        port = Port("p", capacity=capacity, policy=PortPolicy.DROP)
        for produce, consume in schedule:
            for _ in range(produce):
                was_full = port.full
                assert port.put(object()) == (not was_full)
            for _ in range(consume):
                port.get()


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
@pytest.mark.parametrize("policy", [PortPolicy.STALL, PortPolicy.DROP])
def test_seeded_rate_mismatch_stress(seed, policy):
    """A long seeded run where producer and consumer rates drift:
    phases of sustained overrun, sustained underrun, and parity.  The
    registry counters must agree with the port's own accounting."""
    rng = random.Random(seed)
    registry = MetricsRegistry()
    port = Port(
        "stress", capacity=rng.randrange(1, 16),
        policy=policy, metrics=registry,
    )
    attempts = accepted = drained = 0
    residual = []
    for _ in range(rng.randrange(20, 60)):
        produce_rate = rng.randrange(0, 12)
        consume_rate = rng.randrange(0, 12)
        for _ in range(rng.randrange(1, 30)):
            for _ in range(produce_rate):
                attempts += 1
                if port.put(attempts):
                    accepted += 1
            for _ in range(consume_rate):
                if port.get() is not None:
                    drained += 1
    while not port.empty:
        residual.append(port.get())
    assert accepted == drained + len(residual)
    assert attempts == accepted + (
        port.stalls if policy is PortPolicy.STALL else port.drops
    )
    counters = registry.snapshot()["counters"]
    assert counters["pipeline.port.stress.batches_in"] == accepted
    assert counters.get("pipeline.port.stress.stalls", 0) == port.stalls
    assert counters.get("pipeline.port.stress.drops", 0) == port.drops
    assert counters["pipeline.port.stress.stalls"] == (
        port.stalls if policy is PortPolicy.STALL else 0
    )
