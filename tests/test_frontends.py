"""The TraceFrontend interface: registry, protocol, session lifecycle.

Pins the contracts ``docs/FRONTENDS.md`` documents:

- the registry knows both built-in grammars and rejects unknown names;
- every frontend's driver satisfies the :class:`TraceDriver`
  protocol and the created-disabled session lifecycle — in particular
  the regression that no trace bytes exist before a session starts
  (the old ``HostCpu`` constructor enabled CoreSight eagerly, leaking
  the encoder's lazy sync burst into the pre-session stream);
- ``make_frontend`` refuses CoreSight-specific configuration for
  other grammars instead of silently dropping it.
"""

import pytest

from repro.coresight.ptm import PtmConfig
from repro.errors import SocConfigError
from repro.eval.metrics import demo_events
from repro.frontends import (
    CoreSightFrontend,
    TraceDriver,
    TraceFrontend,
    frontend_names,
    get_frontend,
    make_frontend,
)
from repro.frontends.etrace import EtraceFrontend

FRONTEND_NAMES = ("coresight", "etrace")


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------


def test_builtin_frontends_are_registered():
    names = frontend_names()
    for name in FRONTEND_NAMES:
        assert name in names


def test_get_frontend_returns_the_right_types():
    assert isinstance(get_frontend("coresight"), CoreSightFrontend)
    assert isinstance(get_frontend("etrace"), EtraceFrontend)


def test_unknown_frontend_name_is_rejected():
    with pytest.raises(SocConfigError):
        get_frontend("nexus")


def test_make_frontend_routes_ptm_config_to_coresight():
    config = PtmConfig(context_id=9)
    frontend = make_frontend("coresight", ptm_config=config)
    assert frontend.ptm_config is config


def test_make_frontend_rejects_ptm_config_for_etrace():
    with pytest.raises(SocConfigError):
        make_frontend("etrace", ptm_config=PtmConfig())


def test_rtad_config_validates_frontend_name():
    from repro.soc.rtad import RtadConfig

    assert RtadConfig(frontend="etrace").frontend == "etrace"
    with pytest.raises(SocConfigError):
        RtadConfig(frontend="nexus")


# ----------------------------------------------------------------------
# Protocol conformance + driver lifecycle
# ----------------------------------------------------------------------


@pytest.mark.parametrize("name", FRONTEND_NAMES)
def test_frontend_and_driver_satisfy_the_protocols(name):
    frontend = get_frontend(name)
    assert isinstance(frontend, TraceFrontend)
    assert frontend.name == name
    driver = frontend.create_driver()
    assert isinstance(driver, TraceDriver)


@pytest.mark.parametrize("name", FRONTEND_NAMES)
def test_driver_is_created_disabled_and_refuses_dataplane_calls(name):
    driver = get_frontend(name).create_driver()
    assert not driver.enabled
    event = demo_events("lstm", 0, 1)[0]
    with pytest.raises(SocConfigError):
        driver.trace(event)
    with pytest.raises(SocConfigError):
        driver.flush()
    with pytest.raises(SocConfigError):
        driver.export_state()


@pytest.mark.parametrize("name", FRONTEND_NAMES)
def test_driver_session_cycle_is_repeatable_and_deterministic(name):
    driver = get_frontend(name).create_driver()
    events = demo_events("lstm", 0, 200)

    driver.enable()
    assert driver.enabled
    first = driver.trace_all(events)
    driver.disable()
    assert not driver.enabled
    driver.enable()
    second = driver.trace_all(events)
    assert first == second
    assert len(first) > 0


@pytest.mark.parametrize("name", FRONTEND_NAMES)
def test_set_context_id_requires_a_stopped_session(name):
    driver = get_frontend(name).create_driver()
    driver.set_context_id(0x42)  # disabled: fine
    driver.enable()
    with pytest.raises(SocConfigError):
        driver.set_context_id(0x43)


@pytest.mark.parametrize("name", FRONTEND_NAMES)
def test_decode_chain_round_trips_through_frontend_factories(name):
    """new_deframer/new_decoder must decode what create_driver emits."""
    frontend = get_frontend(name)
    driver = frontend.create_driver()
    driver.enable()
    events = demo_events("lstm", 3, 500)
    framed = driver.trace_all(events)
    deframer = frontend.new_deframer()
    decoder = frontend.new_decoder()
    decoded = list(decoder.feed(deframer.push(framed)))
    decoded += decoder.finish()
    assert decoded  # at least syncs + branches survived


# ----------------------------------------------------------------------
# Satellite regression: no pre-session trace bytes
# ----------------------------------------------------------------------


@pytest.mark.parametrize("name", FRONTEND_NAMES)
def test_host_cpu_emits_no_bytes_before_a_session(name):
    from repro.eval.prep import get_program
    from repro.soc.cpu import HostCpu

    host = HostCpu(
        get_program("403.gcc", seed=0), frontend=get_frontend(name)
    )
    # Construction must not power up the trace path: the encoder's
    # lazy sync burst belongs to the first session, not to t=0.
    assert not host.driver.enabled
    with pytest.raises(SocConfigError):
        host.driver.trace(demo_events("lstm", 0, 1)[0])
    host.begin_session()
    assert host.driver.enabled
    host.end_session()
    assert not host.driver.enabled


@pytest.mark.parametrize("name", FRONTEND_NAMES)
def test_loop_dataplane_driver_starts_disabled(name):
    from repro.igm.address_mapper import AddressMapper
    from repro.igm.vector_encoder import VectorEncoder
    from repro.soc.loop import LoopDataplane

    mapper = AddressMapper()
    mapper.load([0x1000, 0x2000])
    plane = LoopDataplane(
        mapper,
        VectorEncoder(window=4, vocabulary_size=mapper.size + 1),
        lambda vector, when: None,
        frontend=get_frontend(name),
    )
    assert not plane.driver.enabled
    # run() powers it up lazily; the first session's first byte is the
    # sync burst, exactly as in the batched pipeline.
    plane.run(demo_events("lstm", 0, 50))
    assert plane.driver.enabled


def test_loop_dataplane_rejects_ptm_config_alongside_frontend():
    from repro.igm.address_mapper import AddressMapper
    from repro.igm.vector_encoder import VectorEncoder
    from repro.soc.loop import LoopDataplane

    mapper = AddressMapper()
    mapper.load([0x1000])
    with pytest.raises(ValueError):
        LoopDataplane(
            mapper,
            VectorEncoder(window=4, vocabulary_size=mapper.size + 1),
            lambda vector, when: None,
            ptm_config=PtmConfig(),
            frontend=get_frontend("etrace"),
        )


def test_pipeline_rejects_ptm_config_alongside_frontend():
    from repro.igm.address_mapper import AddressMapper
    from repro.igm.vector_encoder import VectorEncoder
    from repro.pipeline import build_trace_pipeline

    mapper = AddressMapper()
    mapper.load([0x1000])
    with pytest.raises(SocConfigError):
        build_trace_pipeline(
            mapper,
            VectorEncoder(window=4, vocabulary_size=mapper.size + 1),
            lambda vector, when: None,
            ptm_config=PtmConfig(),
            frontend=get_frontend("etrace"),
        )


@pytest.mark.parametrize("name", FRONTEND_NAMES)
def test_counter_namespaces_are_declared_and_disjoint(name):
    frontend = get_frontend(name)
    assert frontend.counter_namespace
    for counter in frontend.decoder_counters + frontend.deframer_counters:
        assert counter  # non-empty names
    other = [n for n in FRONTEND_NAMES if n != name][0]
    other_counters = set(
        get_frontend(other).decoder_counters
        + get_frontend(other).deframer_counters
    )
    mine = set(frontend.decoder_counters + frontend.deframer_counters)
    assert not (mine & other_counters)
