"""Graceful front-door shutdown (SIGTERM / KeyboardInterrupt path).

``IngestServer.shutdown`` must stop accepting, drain every buffered
window through a final round (admitted work is never abandoned), and
answer in-flight clients with SUMMARY frames before transports close.
"""

import asyncio
import os
import signal

import pytest

from repro.errors import ServeError
from repro.eval.metrics import build_demo_manager, demo_events
from repro.serve import IngestServer, ServeClient, ServeConfig
from repro.serve import protocol


def _server(num_tenants=2):
    manager = build_demo_manager(num_tenants, kind="lstm", seed=0)
    clock = {"ns": 0}
    server = IngestServer(
        manager, ServeConfig(), clock_ns=lambda: clock["ns"]
    )
    return server, clock


def _events(count=48, label=None):
    return demo_events("lstm", 0, count, run_label=label)


class TestGracefulShutdown:
    def test_drains_buffered_windows_and_summarises_clients(self):
        async def scenario():
            server, _ = _server()
            client = ServeClient.local(server)
            await client.hello("tenant0")
            response = await client.send_events(_events(60))
            assert response["frame_type"] == protocol.FrameType.ACK
            # No drain has run: the work is still buffered when the
            # shutdown lands.
            assert server.counts["serve.rounds"] == 0
            await server.shutdown()
            summary = protocol.decode_json((await client._recv()).payload)
            return server, summary

        server, summary = asyncio.run(scenario())
        # The buffered window went through a final round ...
        assert server.counts["serve.rounds"] == 1
        assert server.counts["serve.round.events"] == 60
        # ... and the in-flight client got its SUMMARY before close.
        assert summary["draining"] is True
        assert summary["admitted"] == 1
        assert summary["shed"] == 0
        assert server.counts["serve.connections.closed"] == 1

    def test_refuses_new_connections_while_closing(self):
        async def scenario():
            server, _ = _server()
            await server.shutdown()
            with pytest.raises(ServeError, match="shutting down"):
                server.local_connection()

        asyncio.run(scenario())

    def test_idempotent_under_repeated_signals(self):
        async def scenario():
            server, _ = _server()
            client = ServeClient.local(server)
            await client.hello("tenant0")
            await client.send_events(_events(30))
            await server.shutdown()
            await server.shutdown()  # second signal: no-op
            return server

        server = asyncio.run(scenario())
        assert server.counts["serve.rounds"] == 1

    def test_sigterm_routes_to_graceful_shutdown(self):
        async def scenario():
            server, _ = _server()
            await server.start()
            host, port = await server.start_tcp()
            server.install_signal_handlers()
            client = await ServeClient.connect(host, port)
            await client.hello("tenant0")
            await client.send_events(_events(40))
            os.kill(os.getpid(), signal.SIGTERM)
            # Let the handler's shutdown task run to completion.
            for _ in range(200):
                await asyncio.sleep(0.005)
                if server._closing and not server._sessions:
                    break
            summary = protocol.decode_json((await client._recv()).payload)
            return server, summary

        server, summary = asyncio.run(scenario())
        assert summary["draining"] is True
        assert server.counts["serve.round.events"] == 40
        assert server._tcp is None
