"""Program walker: event stream properties, calibration, determinism."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads.cfg import BranchKind
from repro.workloads.profiles import get_profile
from repro.workloads.program import SyntheticProgram


class TestRun:
    def test_event_count_exact(self, small_program):
        trace = small_program.run(500, run_label="count")
        assert len(trace) == 500

    def test_cycles_monotonic(self, small_trace):
        cycles = small_trace.cycles()
        assert (np.diff(cycles) >= 0).all()

    def test_deterministic_per_label(self, small_program):
        a = small_program.run(300, run_label="det")
        b = small_program.run(300, run_label="det")
        assert all(
            x.source == y.source and x.target == y.target
            for x, y in zip(a.events, b.events)
        )

    def test_labels_give_different_walks(self, small_program):
        a = small_program.run(300, run_label="walk-a")
        b = small_program.run(300, run_label="walk-b")
        assert [e.target for e in a.events] != [e.target for e in b.events]

    def test_negative_budget_rejected(self, small_program):
        with pytest.raises(WorkloadError):
            list(small_program.iter_events(-1))

    def test_zero_budget_empty(self, small_program):
        assert list(small_program.iter_events(0)) == []

    def test_targets_are_known_blocks_or_stubs(self, small_program, small_trace):
        known = set(small_program.cfg.blocks)
        stubs = set(small_program.cfg.syscall_addresses)
        for event in small_trace.events:
            assert event.target in known or event.target in stubs

    def test_conditional_edges_respect_cfg(self, small_program):
        trace = small_program.run(2_000, run_label="cond")
        sources = {
            b.branch_address: b for b in small_program.cfg.blocks.values()
        }
        for event in trace.events:
            block = sources.get(event.source)
            if block is None:
                continue  # syscall-stub return
            if event.kind is BranchKind.CONDITIONAL:
                expected = (
                    block.taken_target if event.taken else block.fallthrough
                )
                assert event.target == expected

    def test_syscall_followed_by_kernel_return(self, small_program):
        trace = small_program.run(30_000, run_label="sysret")
        events = trace.events
        for index, event in enumerate(events[:-1]):
            if event.kind is BranchKind.SYSCALL:
                nxt = events[index + 1]
                assert nxt.kind is BranchKind.RETURN
                assert nxt.cycle >= event.cycle

    def test_calibration_brings_call_rate_close(self):
        profile = get_profile("471.omnetpp")
        program = SyntheticProgram(profile, seed=3)
        trace = program.run(20_000, run_label="calcheck")
        calls = sum(
            1 for e in trace.events if e.kind is BranchKind.CALL
        )
        observed = calls / len(trace)
        target = profile.call_block_fraction
        assert observed > target / 4  # within 4x after calibration

    def test_uncalibrated_flag_skips_rounds(self):
        profile = get_profile("401.bzip2")
        program = SyntheticProgram(profile, seed=3, calibrate=False)
        assert program.run(100, run_label="x") is not None


class TestMonitoredTargets:
    def test_default_count_from_profile(self, small_program):
        targets = small_program.monitored_call_targets()
        expected = max(
            1,
            round(
                len(small_program.cfg.call_targets)
                * small_program.profile.monitored_call_fraction
            ),
        )
        assert len(targets) == expected

    def test_explicit_count(self, small_program):
        assert len(small_program.monitored_call_targets(count=7)) == 7

    def test_subset_of_function_entries(self, small_program):
        entries = set(small_program.cfg.call_targets)
        assert set(small_program.monitored_call_targets(count=10)) <= entries

    def test_deterministic(self, small_program):
        assert (
            small_program.monitored_call_targets(count=9)
            == small_program.monitored_call_targets(count=9)
        )

    def test_syscall_targets_sorted(self, small_program):
        targets = small_program.syscall_targets()
        assert targets == sorted(targets)
