"""Fleet supervision: crash recovery, restart pacing, migration.

The supervisor's promises, exercised with real worker deaths (a
deterministically armed ``SIGKILL`` mid-round, and external ``kill
-9`` between rounds):

- an admitted round is never lost: the restarted worker recovers its
  journal and the coordinator re-feeds (or reconciles) the in-flight
  round, with records byte-identical to a fault-free solo manager of
  the same topology;
- a crash-looping shard has its HEALTHY tenants migrated to siblings
  at a round boundary — leaving at least one tenant behind — while
  QUARANTINED tenants stay pinned to the sick shard;
- every supervision event lands in the ``fleet.*`` counters and the
  conservation law survives kills, restarts, and migrations.
"""

import functools
import os
import signal
import tempfile

import pytest

from repro.errors import Backoff
from repro.eval.metrics import demo_events
from repro.eval.recovery import record_signature
from repro.faults import FaultKind, FaultPlan, FaultSpec
from repro.fleet import FleetConfig, FleetCoordinator, demo_factory
from repro.obs import MetricsRegistry
from repro.soc.manager import SocManager, TenantHealth

KIND = "lstm"
TENANTS = 4
EVENTS = 200
KILL_SITE = "wal.chunk.done"  # inputs journaled, round uncommitted

#: Fast supervision config for tests: restart almost immediately.
def _config(**overrides):
    return FleetConfig(
        num_shards=2,
        max_restarts=1,
        backoff=Backoff(base_s=0.01, cap_s=0.05, label="test.restart"),
        **overrides,
    )


CONFIG = _config()


def _names():
    return [f"tenant{i}" for i in range(TENANTS)]


def _traces(round_index):
    return {
        name: demo_events(
            KIND, 0, EVENTS, run_label=f"sup-{name}-r{round_index}"
        )
        for name in _names()
    }


def _fleet(factory=demo_factory, config=CONFIG):
    return FleetCoordinator(
        factory,
        _names(),
        tempfile.mkdtemp(prefix="repro-fleet-sup-"),
        config,
    )


def _flags(records):
    return [(bool(r.anomalous), float(r.score)) for r in records]


def _kill_worker(shard):
    """kill -9 the worker and wait until it is really gone."""
    os.kill(shard.pid, signal.SIGKILL)
    shard.process.join(timeout=10.0)
    assert not shard.alive


def _assert_conservation(counters):
    fresh = sum(
        value
        for name, value in counters.items()
        if name.startswith("fleet.shard.") and name.endswith(".rounds")
    )
    assert counters["fleet.rounds.admitted"] == (
        fresh + counters["fleet.rounds.replayed"]
    )


class TestMidRoundKill:
    @pytest.mark.parametrize("start_method", ["fork", "spawn"])
    def test_armed_sigkill_recovers_without_losing_the_round(
        self, start_method
    ):
        rounds = [_traces(r) for r in range(3)]
        with _fleet(config=_config(start_method=start_method)) as fleet:
            placement = {
                shard.id: list(shard.tenants) for shard in fleet.shards
            }
            logs = [fleet.run_events(rounds[0])]
            # Die at the first WAL chunk boundary of the next dispatch:
            # round 1's inputs are journaled but the round is not
            # committed, so the coordinator must re-feed it.
            fleet.arm_kill(0, KILL_SITE)
            logs.append(fleet.run_events(rounds[1]))
            logs.append(fleet.run_events(rounds[2]))
            counts = dict(fleet.counts)
            counters = fleet.counters()
            stats = fleet.transport_stats()

        assert counts["fleet.restarts"] == 1
        assert counts["fleet.rounds.refed"] == 1
        assert counts["fleet.rounds.reconciled"] == 0
        assert counts["fleet.rounds.admitted"] == 6  # 3 rounds x 2
        assert counters["fleet.rounds.replayed"] >= 1  # WAL replay ran
        _assert_conservation(counters)

        # The kill landed with a shm slot in flight: its staged bytes
        # are discarded (never double-consumed), the restarted worker
        # gets a fresh ring pair, and the byte ledger still balances.
        assert stats["fleet.transport.bytes.discarded"] > 0
        assert stats["fleet.transport.shm.reinits"] >= 1
        assert stats["fleet.transport.bytes.staged"] == (
            stats["fleet.transport.bytes.consumed"]
            + stats["fleet.transport.bytes.discarded"]
        )

        # Zero lost rounds, byte-identical to a fault-free solo manager
        # of the same topology — killed shard's tenants included.
        for tenant_subset in placement.values():
            solo = SocManager(
                demo_factory(tenant_subset, kind=KIND),
                metrics=MetricsRegistry(),
            )
            for traces, log in zip(rounds, logs):
                reference = solo.run_events(
                    {name: traces[name] for name in tenant_subset}
                )
                for name in tenant_subset:
                    assert [
                        record_signature(r) for r in log[name]
                    ] == [
                        record_signature(r) for r in reference[name]
                    ]


class TestCrashLoopMigration:
    def test_repeated_kills_migrate_healthy_tenants(self):
        rounds = [_traces(r) for r in range(2)]
        solo = SocManager(
            demo_factory(_names(), kind=KIND), metrics=MetricsRegistry()
        )
        references = [solo.run_events(traces) for traces in rounds]
        with _fleet() as fleet:
            shard0, shard1 = fleet.shards
            logs = [fleet.run_events(rounds[0])]
            # Two consecutive heartbeat deaths exhaust max_restarts=1;
            # the second miss triggers migration off the sick shard.
            for expected_restarts in (1, 2):
                _kill_worker(shard0)
                assert not fleet.heartbeat()
                assert shard0.total_restarts == expected_restarts
            counts = dict(fleet.counts)
            assert counts["fleet.heartbeat.misses"] == 2
            assert counts["fleet.migrations"] == 1
            # All of shard0 was healthy: one tenant is left behind so
            # the shard is never emptied, the other moves to a sibling.
            assert counts["fleet.tenants.migrated"] == 1
            assert shard0.tenants == ["tenant0"]
            assert sorted(shard1.tenants) == [
                "tenant1", "tenant2", "tenant3",
            ]
            assert fleet.shard_of("tenant2") is shard1
            # Consecutive-restart pressure resets after migration.
            assert shard0.restarts == 0
            # The fleet keeps serving everyone after the handoff, and
            # verdict flags still match the solo reference (the moved
            # tenant's state travelled in its checkpoint document).
            logs.append(fleet.run_events(rounds[1]))
            liveness = {
                row["shard"]: row for row in fleet.liveness()
            }
            counters = fleet.counters()
        for log, reference in zip(logs, references):
            for name in _names():
                assert _flags(log[name]) == _flags(reference[name])
        assert liveness[0]["restarts"] == 2
        assert liveness[0]["alive"] and liveness[1]["alive"]
        assert liveness[1]["tenants"] == shard1.tenants
        _assert_conservation(counters)

    def test_quarantined_tenants_stay_pinned(self):
        # tenant0 crashes in round 0 and is quarantined; when its
        # shard later crash-loops, only the HEALTHY co-tenant moves —
        # a sick tenant is not spread to healthy shards.
        crash = FaultPlan(
            seed=0,
            specs=(FaultSpec(FaultKind.TENANT_CRASH, rate=1.0),),
        )
        factory = functools.partial(
            demo_factory, fault_plans={"tenant0": crash}
        )
        with _fleet(factory) as fleet:
            shard0, shard1 = fleet.shards
            assert shard0.tenants == ["tenant0", "tenant2"]
            fleet.run_events(_traces(0))
            assert fleet.health()["tenant0"] is TenantHealth.QUARANTINED
            for _ in range(2):
                _kill_worker(shard0)
                fleet.heartbeat(shard0)
            counts = dict(fleet.counts)
            placement0 = list(shard0.tenants)
            placement1 = sorted(shard1.tenants)
            health = fleet.health()
        assert counts["fleet.migrations"] == 1
        assert counts["fleet.tenants.migrated"] == 1
        # The quarantined tenant is pinned; the healthy one moved with
        # no leave-one-behind trim (the pinned tenant anchors the
        # shard).
        assert placement0 == ["tenant0"]
        assert placement1 == ["tenant1", "tenant2", "tenant3"]
        assert health["tenant0"] is TenantHealth.QUARANTINED
