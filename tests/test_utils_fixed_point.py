"""Fixed-point formats: ranges, rounding, saturation."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils.fixed_point import FixedPointFormat, Q8_8, Q16_16


class TestFormatProperties:
    def test_width(self):
        assert Q16_16.width == 32
        assert Q8_8.width == 16

    def test_range_bounds(self):
        assert Q8_8.max_value == pytest.approx(127.99609375)
        assert Q8_8.min_value == -128.0

    def test_resolution(self):
        assert Q8_8.resolution == 1 / 256

    def test_str(self):
        assert str(Q8_8) == "Q8.8"

    def test_invalid_formats_rejected(self):
        with pytest.raises(ValueError):
            FixedPointFormat(integer_bits=0, fraction_bits=4)
        with pytest.raises(ValueError):
            FixedPointFormat(integer_bits=4, fraction_bits=-1)


class TestQuantize:
    def test_exact_values(self):
        assert Q8_8.quantize(1.0) == 256
        assert Q8_8.dequantize(256) == 1.0

    def test_rounding_to_nearest(self):
        assert Q8_8.quantize(Q8_8.resolution * 0.6) == 1

    def test_saturation_high(self):
        assert Q8_8.quantize(1e9) == Q8_8.max_raw

    def test_saturation_low(self):
        assert Q8_8.quantize(-1e9) == Q8_8.min_raw

    def test_array_roundtrip_error_bounded(self):
        values = np.linspace(-100, 100, 999)
        error = np.abs(Q8_8.roundtrip(values) - values)
        assert error.max() <= Q8_8.resolution / 2 + 1e-12

    @given(st.floats(-120, 120))
    def test_quantize_dequantize_close(self, value):
        raw = Q8_8.quantize(value)
        assert abs(Q8_8.dequantize(raw) - value) <= Q8_8.resolution


class TestArithmetic:
    def test_saturating_add_in_range(self):
        assert Q8_8.saturating_add(100, 200) == 300

    def test_saturating_add_clips(self):
        assert Q8_8.saturating_add(Q8_8.max_raw, 1) == Q8_8.max_raw
        assert Q8_8.saturating_add(Q8_8.min_raw, -1) == Q8_8.min_raw

    def test_multiply_matches_float(self):
        a, b = 1.5, -2.25
        raw = Q16_16.multiply(Q16_16.quantize(a), Q16_16.quantize(b))
        assert Q16_16.dequantize(raw) == pytest.approx(a * b, abs=1e-4)

    def test_multiply_saturates(self):
        big = Q8_8.quantize(100.0)
        assert Q8_8.multiply(big, big) == Q8_8.max_raw

    @given(st.floats(-10, 10), st.floats(-10, 10))
    def test_multiply_error_bound(self, a, b):
        raw = Q16_16.multiply(Q16_16.quantize(a), Q16_16.quantize(b))
        assert Q16_16.dequantize(raw) == pytest.approx(
            a * b, abs=2e-4 * (1 + abs(a) + abs(b))
        )
