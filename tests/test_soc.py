"""SoC layer: clocks, bus, PTM FIFO, baselines, metrics."""

import numpy as np
import pytest

from repro.errors import SocConfigError
from repro.soc.bus import AxiBus
from repro.soc.clocks import CPU_CLOCK, GPU_CLOCK, RTAD_CLOCK, ClockDomain
from repro.soc.cpu import HostCpu, PtmFifoModel
from repro.soc.metrics import (
    rtad_transfer_breakdown,
    sw_transfer_breakdown,
)
from repro.soc.software_baseline import (
    RtadOverheadModel,
    SoftwareInstrumentationModel,
    SoftwareTransferModel,
)
from repro.workloads.profiles import SPEC_CINT2006, get_profile


class TestClocks:
    def test_paper_frequencies(self):
        assert CPU_CLOCK.hz == 250e6
        assert RTAD_CLOCK.hz == 125e6
        assert GPU_CLOCK.hz == 50e6

    def test_conversions(self):
        clock = ClockDomain("x", 100e6)
        assert clock.period_ns == 10.0
        assert clock.to_ns(5) == 50.0
        assert clock.cycles(100.0) == 10.0
        assert clock.to_us(1000) == 10.0

    def test_invalid_clock(self):
        with pytest.raises(SocConfigError):
            ClockDomain("bad", 0)

    def test_igm_vectorize_is_16ns(self):
        # The paper's step (2): 2 cycles at 125 MHz.
        assert RTAD_CLOCK.to_ns(2) == 16.0


class TestBus:
    def test_cpu_copy_matches_fig7(self):
        bus = AxiBus()
        assert bus.cpu_copy_ns(16) == pytest.approx(11_500, rel=0.01)

    def test_hw_burst_much_cheaper(self):
        bus = AxiBus()
        assert bus.hw_burst_ns(16) < bus.cpu_copy_ns(16) / 10

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            AxiBus().cpu_copy_ns(-1)


class TestPtmFifo:
    def test_holds_until_threshold(self):
        fifo = PtmFifoModel(threshold_bytes=16)
        assert fifo.push(0.0, 8) is None
        assert fifo.occupancy == 8
        done = fifo.push(100.0, 8)
        assert done is not None and done > 100.0
        assert fifo.occupancy == 0

    def test_explicit_flush(self):
        fifo = PtmFifoModel(threshold_bytes=64)
        fifo.push(0.0, 10)
        done = fifo.flush(50.0)
        assert done is not None and done > 50.0

    def test_flush_empty_is_none(self):
        assert PtmFifoModel().flush(0.0) is None

    def test_drain_rate_four_bytes_per_cycle(self):
        fifo = PtmFifoModel(threshold_bytes=8)
        done = fifo.push(0.0, 8)
        assert done == pytest.approx(RTAD_CLOCK.to_ns(2))

    def test_mean_delay_scales_inverse_with_rate(self):
        fifo = PtmFifoModel(threshold_bytes=128)
        slow = fifo.mean_buffer_delay_ns(0.01)
        fast = fifo.mean_buffer_delay_ns(0.1)
        assert slow > fast

    def test_negative_bytes_rejected(self):
        with pytest.raises(SocConfigError):
            PtmFifoModel().push(0.0, -1)


class TestHostCpu:
    def test_trace_events_batched(self, small_program):
        host = HostCpu(small_program, ptm_fifo=PtmFifoModel(threshold_bytes=64))
        events = small_program.run(2_000, run_label="host").events
        batches = host.trace_events(events)
        assert len(batches) > 2
        departures = [b.depart_ns for b in batches]
        assert departures == sorted(departures)

    def test_batch_departure_after_event_times(self, small_program):
        host = HostCpu(small_program)
        events = small_program.run(1_000, run_label="host2").events
        batches = host.trace_events(events)
        last_event_ns = host.event_time_ns(events[-1])
        assert batches[-1].depart_ns >= 0
        assert batches[-1].depart_ns <= last_event_ns + 1e6


class TestFig6Models:
    def test_ordering_per_benchmark(self):
        instr = SoftwareInstrumentationModel()
        rtad = RtadOverheadModel()
        for profile in SPEC_CINT2006:
            assert (
                rtad.overhead(profile)
                < instr.sw_func_overhead(profile)
                < instr.sw_all_overhead(profile)
            )

    def test_rtad_under_one_permille(self):
        rtad = RtadOverheadModel()
        assert all(
            rtad.overhead(p) < 0.001 for p in SPEC_CINT2006
        )

    def test_syscall_overhead_tracks_rate(self):
        instr = SoftwareInstrumentationModel()
        perl = get_profile("perlbench")
        quantum = get_profile("libquantum")
        assert instr.sw_sys_overhead(perl) > instr.sw_sys_overhead(quantum)


class TestFig7Models:
    def test_sw_breakdown_matches_paper(self):
        breakdown = sw_transfer_breakdown(window=16)
        assert breakdown.vectorize_us == pytest.approx(7.38, rel=0.01)
        assert breakdown.copy_us == pytest.approx(11.5, rel=0.01)
        assert breakdown.total_us == pytest.approx(20.0, rel=0.02)

    def test_rtad_breakdown_structure(self):
        breakdown = rtad_transfer_breakdown(get_profile("gcc"), window=16)
        assert breakdown.vectorize_us == pytest.approx(0.016, rel=0.01)
        assert breakdown.read_us > breakdown.copy_us > breakdown.vectorize_us
        assert breakdown.total_us < 6.0

    def test_rtad_faster_than_sw_everywhere(self):
        sw = sw_transfer_breakdown()
        for profile in SPEC_CINT2006:
            rtad = rtad_transfer_breakdown(profile)
            assert rtad.total_us < sw.total_us / 3

    def test_read_step_depends_on_branch_rate(self):
        dense = rtad_transfer_breakdown(get_profile("libquantum"))
        sparse = rtad_transfer_breakdown(get_profile("hmmer"))
        assert dense.read_us < sparse.read_us
