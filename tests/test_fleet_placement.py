"""Load-aware tenant placement and serve sticky routing.

The placer's contract: when ``rebalance_ratio`` is set, a sustained
makespan imbalance moves HEALTHY tenants from the hottest to the
coldest shard at round boundaries — through the same checkpoint
handoff crash migration uses, so verdicts stay bit-identical to a
static placement — while hysteresis keeps balanced fleets still and
quarantined tenants stay pinned.  Every move bumps
``placement_epoch``, and the serve front door swaps its sticky
tenant -> shard routing table atomically at its next drain boundary.
"""

import asyncio
import functools
import tempfile

from repro.eval.metrics import demo_events
from repro.faults import FaultKind, FaultPlan, FaultSpec
from repro.fleet import FleetConfig, FleetCoordinator, demo_factory
from repro.obs import MetricsRegistry
from repro.serve import IngestServer, ServeClient, ServeConfig
from repro.soc.manager import SocManager, TenantHealth

KIND = "lstm"
NAMES = [f"tenant{i}" for i in range(4)]
EVENTS = 300

#: Aggressive hysteresis so a four-round test leg can observe a move.
REBALANCE = dict(
    rebalance_ratio=1.2,
    rebalance_warmup_rounds=1,
    rebalance_cooldown_rounds=1,
)


def _traces(round_index, heavy=None, factor=4):
    return {
        name: demo_events(
            KIND,
            0,
            EVENTS * (factor if name == heavy else 1),
            run_label=f"place-{name}-r{round_index}",
        )
        for name in NAMES
    }


def _fleet(factory=demo_factory, **overrides):
    return FleetCoordinator(
        factory,
        NAMES,
        tempfile.mkdtemp(prefix="repro-fleet-place-"),
        FleetConfig(num_shards=2, **overrides),
    )


def _flags(records):
    return [(bool(r.anomalous), float(r.score)) for r in records]


class TestLoadAwarePlacer:
    def test_imbalanced_load_rebalances_and_flags_match_reference(self):
        # tenant0 carries 4x the events: its shard's makespan EWMA
        # pulls ahead, the placer moves a co-tenant off the hot shard,
        # and the verdicts still match a solo all-tenants manager.
        rounds = [_traces(r, heavy="tenant0") for r in range(4)]
        solo = SocManager(
            demo_factory(NAMES, kind=KIND), metrics=MetricsRegistry()
        )
        references = [solo.run_events(traces) for traces in rounds]
        with _fleet(**REBALANCE) as fleet:
            before = fleet.routing_table()
            logs = [fleet.run_events(traces) for traces in rounds]
            counts = dict(fleet.counts)
            after = fleet.routing_table()
            epoch = fleet.placement_epoch
        assert counts["fleet.placement.rebalances"] >= 1
        assert counts["fleet.placement.tenants_moved"] >= 1
        assert after != before
        assert epoch == counts["fleet.placement.epoch"] > 0
        for log, reference in zip(logs, references):
            for name in NAMES:
                assert _flags(log[name]) == _flags(reference[name])

    def test_balanced_load_holds_still(self):
        with _fleet(**REBALANCE) as fleet:
            before = fleet.routing_table()
            for round_index in range(4):
                fleet.run_events(_traces(round_index))
            counts = dict(fleet.counts)
            assert fleet.routing_table() == before
            assert fleet.placement_epoch == 0
        assert counts["fleet.placement.rounds"] == 4
        assert counts["fleet.placement.rebalances"] == 0
        assert counts["fleet.placement.skipped"] >= 3

    def test_static_placement_by_default(self):
        # rebalance_ratio=None (the default) disables the placer
        # entirely — imbalance or not, placement never changes.
        with _fleet() as fleet:
            before = fleet.routing_table()
            for round_index in range(2):
                fleet.run_events(_traces(round_index, heavy="tenant0"))
            counts = dict(fleet.counts)
            assert fleet.routing_table() == before
        assert counts["fleet.placement.rounds"] == 0
        assert counts["fleet.placement.rebalances"] == 0

    def test_quarantined_tenants_are_not_rebalanced(self):
        # tenant2 crashes in round 0 and is QUARANTINED.  The placer
        # may still level load by moving HEALTHY tenants around it,
        # but the sick tenant itself stays pinned to its shard — a
        # quarantined tenant is never spread for load reasons.
        crash = FaultPlan(
            seed=0,
            specs=(FaultSpec(FaultKind.TENANT_CRASH, rate=1.0),),
        )
        factory = functools.partial(
            demo_factory, fault_plans={"tenant2": crash}
        )
        with _fleet(factory, **REBALANCE) as fleet:
            assert fleet.shards[0].tenants == ["tenant0", "tenant2"]
            home = fleet.routing_table()["tenant2"]
            for round_index in range(4):
                fleet.run_events(_traces(round_index, heavy="tenant0"))
                assert fleet.routing_table()["tenant2"] == home
            assert (
                fleet.health()["tenant2"] is TenantHealth.QUARANTINED
            )


class TestServeStickyRouting:
    def test_routes_follow_placement_epoch(self):
        async def scenario():
            fleet = _fleet(**REBALANCE)
            server = IngestServer(fleet, ServeConfig())
            try:
                stats = server.stats()
                assert stats["routes"] == fleet.routing_table()
                assert stats["route_epoch"] == 0
                updates0 = server.counts["serve.route.updates"]
                # Tenants move at a round boundary behind the server's
                # back...
                for round_index in range(4):
                    fleet.run_events(
                        _traces(round_index, heavy="tenant0")
                    )
                assert fleet.placement_epoch > 0
                # ...and the front door swaps its sticky table in one
                # atomic step at its next drain boundary.
                client = ServeClient.local(server)
                await client.hello("tenant1")
                await client.send_events(demo_events(KIND, 0, 40))
                server.drain_once()
                stats = server.stats()
                await client.bye()
                await server.stop()
                return (
                    stats,
                    fleet.routing_table(),
                    fleet.placement_epoch,
                    updates0,
                )
            finally:
                fleet.close()

        stats, table, epoch, updates0 = asyncio.run(scenario())
        assert stats["routes"] == table
        assert stats["route_epoch"] == epoch
        assert stats["serve.route.updates"] == updates0 + 1
