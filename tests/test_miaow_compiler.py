"""Trace-compiled fast path: bit-exact equivalence with the interpreter.

Every test here runs the same kernel on two freshly built GPUs — one
with the compiled fast path, one forced onto the per-instruction
interpreter — with replicated memory contents, and asserts that the
observable outcome is *identical*: result memory, DispatchResult
cycles, per-CU cycles, instruction counts, and (for faulting kernels)
the exception type, message, and partial instruction accounting.
"""

import numpy as np
import pytest

from repro.errors import GpuError, GpuMemoryError, IllegalInstructionError
from repro.miaow.assembler import assemble, float_bits
from repro.miaow.compiler import CompileUnsupported, compile_kernel
from repro.miaow.compute_unit import GpuTimings
from repro.miaow.coverage import CoverageCollector
from repro.miaow.gpu import COMPILED_CACHE_CAPACITY, Gpu
from repro.miaow.isa import WAVE_SIZE
from repro.obs import MetricsRegistry
import repro.miaow.gpu as gpu_module
import repro.ml.kernels as kernels_module
from repro.ml.elm import ExtremeLearningMachine
from repro.ml.features import PatternDictionary
from repro.ml.kernels import DeployedElm, DeployedLstm, DeployedMlp
from repro.ml.lstm import LstmModel
from repro.ml.mlp import MlpAutoencoder


def _random_words(rng, count):
    """Raw 32-bit patterns, salted with the nasty float encodings."""
    words = rng.integers(0, 1 << 32, size=count, dtype=np.uint64).astype(
        np.uint32
    )
    specials = np.array(
        [
            0x7FC00000,  # qNaN
            0x7F800001,  # sNaN
            0xFFC00001,  # negative NaN with payload
            0x7F800000,  # +inf
            0xFF800000,  # -inf
            0x80000000,  # -0.0
            0x00000001,  # denormal
            0x007FFFFF,  # largest denormal
        ],
        dtype=np.uint32,
    )
    words[: min(len(specials), count)] = specials[:count]
    return words


def run_pair(
    source,
    num_workgroups=1,
    args=(),
    preload_global=None,
    preload_lds=None,
    num_cus=2,
    timings=None,
):
    """Dispatch on compiled and interpreted engines; assert identical."""
    kernel = assemble(source)
    outcomes = []
    for fast in (True, False):
        gpu = Gpu(num_cus=num_cus, fast_path=fast, timings=timings)
        if preload_global is not None:
            gpu.global_memory.write_block(0, preload_global)
        if preload_lds is not None:
            gpu.write_lds_all(0, preload_lds)
        result = gpu.dispatch(kernel, num_workgroups, args)
        outcomes.append((gpu, result))
    (gpu_fast, fast_result), (gpu_slow, slow_result) = outcomes
    assert fast_result.cycles == slow_result.cycles
    assert fast_result.instructions == slow_result.instructions
    assert fast_result.per_cu_cycles == slow_result.per_cu_cycles
    assert np.array_equal(
        gpu_fast.global_memory._words, gpu_slow.global_memory._words
    )
    for cu_fast, cu_slow in zip(
        gpu_fast.compute_units, gpu_slow.compute_units
    ):
        assert np.array_equal(
            cu_fast.local_memory._words, cu_slow.local_memory._words
        )
        assert cu_fast.total_cycles == cu_slow.total_cycles
        assert cu_fast.total_instructions == cu_slow.total_instructions
    return fast_result


# ---------------------------------------------------------------------------
# Per-opcode randomized equivalence
# ---------------------------------------------------------------------------

#: Kernel scaffold: v1/v2 hold random words, the body leaves its result
#: in v3, which is stored to the out buffer (s4).
_OP_SCAFFOLD = """
.kernel optest
.vgprs 8
    v_lshlrev_b32 v5, 2, v0
    v_add_i32 v6, v5, s2
    flat_load_dword v1, v6
    v_add_i32 v6, v5, s3
    flat_load_dword v2, v6
    v_mov_b32 v3, v2
{body}
    v_add_i32 v6, v5, s4
    flat_store_dword v6, v3
    s_endpgm
"""

#: One body per VALU emitter, with vector-vector, vector-scalar, and
#: literal operand shapes (s5/s6 carry random scalar bit patterns).
_VALU_BODIES = [
    "    v_mov_b32 v3, v1",
    "    v_mov_b32 v3, s5",
    "    v_add_f32 v3, v1, v2",
    "    v_add_f32 v3, v1, s5",
    "    v_sub_f32 v3, v1, 1.5",
    "    v_mul_f32 v3, v1, v2",
    "    v_mul_f32 v3, s5, s6",
    "    v_max_f32 v3, v1, v2",
    "    v_min_f32 v3, v1, s5",
    "    v_mac_f32 v3, v1, v2",
    "    v_mac_f32 v3, v1, s5",
    "    v_mac_f32 v3, s5, s6",
    "    v_fma_f32 v3, v1, v2, v1",
    "    v_fma_f32 v3, s5, s6, v2",
    "    v_fma_f32 v3, s5, s6, s5",
    "    v_add_i32 v3, v1, v2",
    "    v_sub_i32 v3, v1, s5",
    "    v_mul_lo_i32 v3, v1, v2",
    "    v_mul_hi_u32 v3, v1, v2",
    "    v_and_b32 v3, v1, v2",
    "    v_or_b32 v3, v1, s5",
    "    v_xor_b32 v3, v1, v2",
    "    v_lshlrev_b32 v3, v1, v2",
    "    v_lshlrev_b32 v3, 3, v1",
    "    v_lshrrev_b32 v3, v1, v2",
    "    v_ashrrev_i32 v3, v1, v2",
    "    v_ashrrev_i32 v3, 7, v1",
    "    v_min_i32 v3, v1, v2",
    "    v_max_i32 v3, v1, s5",
    "    v_bfe_u32 v3, v1, v2, v2",
    "    v_bfe_u32 v3, v1, 5, 11",
    "    v_bfi_b32 v3, v1, v2, v3",
    "    v_cvt_f32_u32 v3, v1",
    "    v_cvt_f32_i32 v3, v1",
    "    v_cvt_u32_f32 v3, v1",
    "    v_cvt_i32_f32 v3, v1",
    "    v_trunc_f32 v3, v1",
    "    v_floor_f32 v3, v1",
    "    v_exp_f32 v3, v1",
    "    v_log_f32 v3, v1",
    "    v_rcp_f32 v3, v1",
    "    v_rsq_f32 v3, v1",
    "    v_sqrt_f32 v3, v1",
    "    v_cmp_eq_f32 v1, v2\n    v_cndmask_b32 v3, v1, v2",
    "    v_cmp_lt_f32 v1, s5\n    v_cndmask_b32 v3, v1, v2",
    "    v_cmp_gt_f32 v1, v2\n    v_cndmask_b32 v3, v1, v2",
    "    v_cmp_le_f32 v1, v2\n    v_cndmask_b32 v3, v1, v2",
    "    v_cmp_ge_f32 v1, v2\n    v_cndmask_b32 v3, v1, v2",
    "    v_cmp_eq_i32 v1, v2\n    v_cndmask_b32 v3, v1, v2",
    "    v_cmp_lt_i32 v1, 12\n    v_cndmask_b32 v3, v1, v2",
    "    v_cmp_gt_i32 v1, s5\n    v_cndmask_b32 v3, v1, v2",
    "    v_readfirstlane_b32 s10, v1\n    v_mov_b32 v3, s10",
]

#: Pure-scalar bodies: the SALU result lands in s10 -> v3.
_SALU_BODIES = [
    "    s_add_i32 s10, s5, s6",
    "    s_sub_i32 s10, s5, s6",
    "    s_mul_i32 s10, s5, s6",
    "    s_and_b32 s10, s5, s6",
    "    s_or_b32 s10, s5, s6",
    "    s_xor_b32 s10, s5, 0xdeadbeef",
    "    s_lshl_b32 s10, s5, 7",
    "    s_lshr_b32 s10, s5, s6",
    "    s_ashr_i32 s10, s5, 3",
    "    s_min_i32 s10, s5, s6",
    "    s_max_i32 s10, s5, s6",
    "    s_not_b32 s10, s5",
    "    s_bcnt1_i32_b32 s10, s5",
    "    s_ff1_i32_b32 s10, s5",
    "    s_ff1_i32_b32 s10, 0",
    "    s_cmp_eq_i32 s5, s6\n    s_cbranch_scc1 hit\n"
    "    s_mov_b32 s10, 1\n    s_branch done\nhit:\n"
    "    s_mov_b32 s10, 2\ndone:",
    "    s_cmp_lt_i32 s5, s6\n    s_cbranch_scc0 miss\n"
    "    s_mov_b32 s10, 3\n    s_branch done\nmiss:\n"
    "    s_mov_b32 s10, 4\ndone:",
    "    s_cmp_le_i32 s5, s6\n    s_mov_b32 s10, scc",
    "    s_cmp_gt_i32 s5, s6\n    s_mov_b32 s10, scc",
    "    s_cmp_ge_i32 s5, s6\n    s_mov_b32 s10, scc",
    "    s_cmp_lg_i32 s5, s6\n    s_mov_b32 s10, scc",
    "    s_load_dword s10, s2, 8",
]


class TestOpcodeEquivalence:
    @pytest.mark.parametrize("body", _VALU_BODIES)
    def test_valu(self, body):
        rng = np.random.default_rng(hash(body) % (1 << 32))
        words = _random_words(rng, 3 * WAVE_SIZE)
        scalars = [int(w) for w in _random_words(rng, 2)]
        run_pair(
            _OP_SCAFFOLD.format(body=body),
            args=[0, 4 * WAVE_SIZE, 8 * WAVE_SIZE] + scalars,
            preload_global=words,
        )

    @pytest.mark.parametrize("body", _SALU_BODIES)
    def test_salu(self, body):
        rng = np.random.default_rng(hash(body) % (1 << 32))
        words = _random_words(rng, 3 * WAVE_SIZE)
        scalars = [int(w) for w in _random_words(rng, 2)]
        source = _OP_SCAFFOLD.format(
            body=body + "\n    v_mov_b32 v3, s10"
        )
        run_pair(
            source,
            args=[0, 4 * WAVE_SIZE, 8 * WAVE_SIZE] + scalars,
            preload_global=words,
        )

    @pytest.mark.parametrize(
        "body",
        [
            "    ds_read_b32 v3, v5",
            "    ds_write_b32 v5, v1\n    ds_read_b32 v3, v5",
            "    ds_add_u32 v5, v1\n    ds_read_b32 v3, v5",
            "    ds_swizzle_b32 v3, v1, 17",
            # runtime (SGPR) swizzle mask: compiles through the dynamic
            # offset branch; the interpreter's read_scalar accepts it
            "    s_mov_b32 s5, 21\n    ds_swizzle_b32 v3, v1, s5",
        ],
    )
    def test_lds(self, body):
        rng = np.random.default_rng(hash(body) % (1 << 32))
        words = _random_words(rng, 3 * WAVE_SIZE)
        lds = _random_words(rng, WAVE_SIZE)
        # v2 must stay a legal swizzle/offset operand: mask to 0..31.
        source = _OP_SCAFFOLD.format(
            body="    v_and_b32 v2, v2, 31\n" + body
        )
        run_pair(
            source,
            args=[0, 4 * WAVE_SIZE, 8 * WAVE_SIZE],
            preload_global=words,
            preload_lds=lds,
        )

    def test_nondefault_timings_match(self):
        timings = GpuTimings(issue=2, valu=7, vtrans=13, lds=3, vmem=11)
        rng = np.random.default_rng(99)
        words = _random_words(rng, 3 * WAVE_SIZE)
        run_pair(
            _OP_SCAFFOLD.format(body="    v_exp_f32 v3, v1"),
            args=[0, 4 * WAVE_SIZE, 8 * WAVE_SIZE],
            preload_global=words,
            timings=timings,
        )


# ---------------------------------------------------------------------------
# Divergence (EXEC manipulation) — the shipped kernels never diverge,
# so these synthetic kernels are the only coverage of masked writes.
# ---------------------------------------------------------------------------

class TestDivergenceEquivalence:
    def test_cmpx_masked_writes(self):
        source = """
.kernel cmpx
.vgprs 8
    v_mov_b32 v1, 100
    v_cmpx_lt_i32 v0, 40
    v_add_i32 v1, v0, 1
    v_cmpx_lt_i32 v0, 10
    v_mul_lo_i32 v1, v1, 3
    v_lshlrev_b32 v5, 2, v0
    v_add_i32 v5, v5, s2
    flat_store_dword v5, v1
    s_endpgm
"""
        run_pair(source, args=[0])

    def test_saveexec_restore(self):
        source = """
.kernel saveexec
.vgprs 8
    s_saveexec_b64 s10
    v_cmpx_ge_i32 v0, 32
    v_mov_b32 v1, 7
    s_mov_exec_b64 s10
    v_add_i32 v1, v1, v0
    v_lshlrev_b32 v5, 2, v0
    v_add_i32 v5, v5, s2
    flat_store_dword v5, v1
    s_endpgm
"""
        run_pair(source, args=[0])

    def test_execz_branch_taken_and_not(self):
        source = """
.kernel execz
.vgprs 8
    s_saveexec_b64 s10
    v_cmpx_lt_i32 v0, s3
    s_cbranch_execz empty
    v_mov_b32 v1, 1
    s_branch join
empty:
    v_mov_b32 v1, 2
join:
    s_mov_exec_b64 s10
    v_lshlrev_b32 v5, 2, v0
    v_add_i32 v5, v5, s2
    flat_store_dword v5, v1
    s_endpgm
"""
        run_pair(source, args=[0, 0])   # empty mask -> branch taken
        run_pair(source, args=[0, 10])  # live lanes -> fall through

    def test_vccz_vccnz_branches(self):
        source = """
.kernel vccbr
.vgprs 8
    v_cmp_lt_i32 v0, s3
    s_cbranch_vccz none
    s_cbranch_vccnz some
    s_branch join
none:
    v_mov_b32 v1, 11
    s_branch join
some:
    v_mov_b32 v1, 22
join:
    v_lshlrev_b32 v5, 2, v0
    v_add_i32 v5, v5, s2
    flat_store_dword v5, v1
    s_endpgm
"""
        run_pair(source, args=[0, 0])
        run_pair(source, args=[0, 5])

    def test_loop_with_divergent_body(self):
        source = """
.kernel divloop
.vgprs 8
    v_mov_b32 v1, 0.0
    s_mov_b32 s10, 0
loop:
    s_saveexec_b64 s12
    v_cmpx_lt_i32 v0, s10
    v_add_f32 v1, v1, 1.0
    s_mov_exec_b64 s12
    s_add_i32 s10, s10, 8
    s_cmp_lt_i32 s10, 64
    s_cbranch_scc1 loop
    v_lshlrev_b32 v5, 2, v0
    v_add_i32 v5, v5, s2
    flat_store_dword v5, v1
    s_endpgm
"""
        run_pair(source, args=[0])


# ---------------------------------------------------------------------------
# Shipped model kernels end to end
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def demo_models():
    rng = np.random.default_rng(7)
    windows = rng.integers(0, 12, size=(120, 16))
    dictionary = PatternDictionary(n=2, capacity=63, unseen_gain=2)
    dictionary.fit(windows)
    elm = ExtremeLearningMachine(
        input_dim=dictionary.size, hidden_dim=64, seed=7
    ).fit(dictionary.features(windows))
    lstm = LstmModel(vocabulary_size=24, hidden_size=8, seed=7)
    mlp = MlpAutoencoder(input_dim=dictionary.size, hidden_dim=8)
    mlp.fit(
        rng.random((50, dictionary.size)).astype(np.float32), epochs=2
    )
    return {
        "rng": rng,
        "windows": windows,
        "dictionary": dictionary,
        "elm": elm,
        "lstm": lstm,
        "mlp": mlp,
    }


def _paired(deploy_factory):
    fast, slow = Gpu(num_cus=5), Gpu(num_cus=5, fast_path=False)
    df, ds = deploy_factory(), deploy_factory()
    df.load(fast)
    ds.load(slow)
    return df, ds


class TestShippedKernels:
    def test_elm_bit_identical(self, demo_models):
        m = demo_models
        df, ds = _paired(
            lambda: DeployedElm(m["elm"], m["dictionary"], 16)
        )
        for window in m["windows"][:12]:
            rf, rs = df.infer(window), ds.infer(window)
            assert repr(rf.score) == repr(rs.score)
            assert rf.dispatch.cycles == rs.dispatch.cycles
            assert rf.dispatch.instructions == rs.dispatch.instructions
            assert rf.dispatch.per_cu_cycles == rs.dispatch.per_cu_cycles

    def test_lstm_bit_identical_with_state(self, demo_models):
        m = demo_models
        df, ds = _paired(lambda: DeployedLstm(m["lstm"]))
        for branch in m["rng"].integers(0, 24, size=24):
            rf, rs = df.infer(int(branch)), ds.infer(int(branch))
            assert repr(rf.surprisal) == repr(rs.surprisal)
            for dispatch_f, dispatch_s in zip(rf.dispatches, rs.dispatches):
                assert dispatch_f.cycles == dispatch_s.cycles
                assert dispatch_f.instructions == dispatch_s.instructions
        for state_f, state_s in zip(df.export_state(), ds.export_state()):
            assert state_f.tobytes() == state_s.tobytes()

    def test_mlp_bit_identical(self, demo_models):
        m = demo_models
        df, ds = _paired(lambda: DeployedMlp(m["mlp"]))
        features = m["rng"].random(
            (8, m["dictionary"].size)
        ).astype(np.float32)
        for row in features:
            rf, rs = df.infer(row), ds.infer(row)
            assert repr(rf.score) == repr(rs.score)
            assert rf.total_cycles == rs.total_cycles


# ---------------------------------------------------------------------------
# Fault parity
# ---------------------------------------------------------------------------

def _fault_pair(source, args=()):
    """Dispatch a faulting kernel on both engines; return the errors
    and the per-CU instruction counters at the point of the fault."""
    kernel = assemble(source)
    seen = []
    for fast in (True, False):
        gpu = Gpu(num_cus=1, fast_path=fast)
        with pytest.raises(Exception) as info:
            gpu.dispatch(kernel, 1, args)
        seen.append(
            (info.value, gpu.compute_units[0].total_instructions)
        )
    return seen


class TestFaultParity:
    def test_out_of_range_lane_load(self):
        source = """
.kernel oob
.vgprs 8
    v_mov_b32 v1, 1
    v_mov_b32 v2, 0x7ffffff0
    flat_load_dword v3, v2
    s_endpgm
"""
        (err_fast, n_fast), (err_slow, n_slow) = _fault_pair(source)
        assert isinstance(err_fast, GpuMemoryError)
        assert str(err_fast) == str(err_slow)
        assert n_fast == n_slow

    def test_unaligned_lane_store(self):
        source = """
.kernel misalign
.vgprs 8
    v_mov_b32 v2, 2
    flat_store_dword v2, v0
    s_endpgm
"""
        (err_fast, n_fast), (err_slow, n_slow) = _fault_pair(source)
        assert isinstance(err_fast, GpuMemoryError)
        assert str(err_fast) == str(err_slow)
        assert n_fast == n_slow

    def test_lds_out_of_range(self):
        source = """
.kernel ldsoob
.vgprs 8
    v_mov_b32 v2, 0x00ffff00
    ds_read_b32 v3, v2
    s_endpgm
"""
        (err_fast, n_fast), (err_slow, n_slow) = _fault_pair(source)
        assert isinstance(err_fast, GpuMemoryError)
        assert str(err_fast) == str(err_slow)
        assert n_fast == n_slow

    def test_trimmed_opcode_same_error(self):
        source = """
.kernel trimmed
.vgprs 8
    v_add_f32 v1, v0, v0
    v_exp_f32 v1, v1
    s_endpgm
"""
        kernel = assemble(source)
        allowed = {"v_add_f32", "s_endpgm"}
        seen = []
        for fast in (True, False):
            gpu = Gpu(num_cus=1, fast_path=fast, allowed_ops=allowed)
            with pytest.raises(IllegalInstructionError) as info:
                gpu.dispatch(kernel, 1)
            seen.append(
                (str(info.value), gpu.compute_units[0].total_instructions)
            )
        assert seen[0] == seen[1]

    def test_runaway_loop_same_error(self):
        source = """
.kernel forever
.vgprs 4
loop:
    s_add_i32 s10, s10, 1
    s_branch loop
    s_endpgm
"""
        kernel = assemble(source)
        messages = []
        for fast in (True, False):
            gpu = Gpu(num_cus=1, fast_path=fast)
            with pytest.raises(GpuError) as info:
                gpu.dispatch(kernel, 1)
            messages.append(str(info.value))
        assert messages[0] == messages[1]
        assert "runaway loop" in messages[0]


# ---------------------------------------------------------------------------
# Fallback routing and caching
# ---------------------------------------------------------------------------

_TRIVIAL = """
.kernel trivial
.vgprs 4
    v_add_i32 v1, v0, 1
    s_endpgm
"""


class TestFallbacks:
    def _counters(self, registry):
        return registry.snapshot()["counters"]

    def test_disabled_routes_to_interpreter(self):
        registry = MetricsRegistry()
        gpu = Gpu(fast_path=False, metrics=registry)
        gpu.dispatch(assemble(_TRIVIAL), 1)
        counters = self._counters(registry)
        assert counters["miaow.fastpath.interpreted"] == 1
        assert counters["miaow.fastpath.fallback.disabled"] == 1
        assert counters.get("miaow.fastpath.dispatches", 0) == 0
        assert gpu.fastpath_stats()["compiled_cached"] == 0

    def test_coverage_routes_to_interpreter(self):
        registry = MetricsRegistry()
        gpu = Gpu(coverage=CoverageCollector(), metrics=registry)
        gpu.dispatch(assemble(_TRIVIAL), 1)
        counters = self._counters(registry)
        assert counters["miaow.fastpath.fallback.coverage"] == 1

    def test_occupancy_routes_to_interpreter(self):
        registry = MetricsRegistry()
        gpu = Gpu(max_resident=2, metrics=registry)
        gpu.dispatch(assemble(_TRIVIAL), 1)
        counters = self._counters(registry)
        assert counters["miaow.fastpath.fallback.occupancy"] == 1

    def test_unsupported_negative_cached(self, monkeypatch):
        def refuse(*args, **kwargs):
            raise CompileUnsupported("synthetic decline")

        monkeypatch.setattr(gpu_module, "compile_kernel", refuse)
        registry = MetricsRegistry()
        gpu = Gpu(metrics=registry)
        kernel = assemble(_TRIVIAL)
        gpu.dispatch(kernel, 1)
        gpu.dispatch(kernel, 1)
        counters = self._counters(registry)
        assert counters["miaow.fastpath.fallback.unsupported"] == 2
        # one miss (the failed compile), then a negative-cache hit
        assert counters["miaow.compile.misses"] == 1
        assert counters["miaow.compile.hits"] == 1
        assert gpu.fastpath_stats()["unsupported_cached"] == 1

    def test_compiled_path_counts_and_caches(self):
        registry = MetricsRegistry()
        gpu = Gpu(metrics=registry)
        kernel = assemble(_TRIVIAL)
        for _ in range(3):
            gpu.dispatch(kernel, 4)
        counters = self._counters(registry)
        assert counters["miaow.fastpath.dispatches"] == 3
        assert counters["miaow.compile.misses"] == 1
        assert counters["miaow.compile.hits"] == 2
        assert gpu.fastpath_stats()["compiled_cached"] == 1
        assert gpu.fastpath_stats()["plans_cached"] == 1

    def test_lru_eviction(self):
        registry = MetricsRegistry()
        gpu = Gpu(metrics=registry)
        for index in range(COMPILED_CACHE_CAPACITY + 3):
            source = _TRIVIAL.replace("trivial", f"trivial{index}")
            gpu.dispatch(assemble(source), 1)
        counters = self._counters(registry)
        assert counters["miaow.compile.evictions"] == 3
        stats = gpu.fastpath_stats()
        assert stats["compiled_cached"] == COMPILED_CACHE_CAPACITY


# ---------------------------------------------------------------------------
# Kernel-assembly memoization (repro.ml.kernels)
# ---------------------------------------------------------------------------

class TestKernelMemoization:
    def test_second_deploy_never_assembles(self, monkeypatch, demo_models):
        calls = []
        original = kernels_module.assemble

        def counting_assemble(*args, **kwargs):
            calls.append(args)
            return original(*args, **kwargs)

        monkeypatch.setattr(kernels_module, "assemble", counting_assemble)
        kernels_module.clear_kernel_cache()
        first = DeployedLstm(demo_models["lstm"])
        assert len(calls) == 3  # score/gates/update, once each
        second = DeployedLstm(demo_models["lstm"])
        assert len(calls) == 3  # zero new assembles on the second deploy
        for name in ("score", "gates", "update"):
            assert first.kernels[name] is second.kernels[name]

    def test_cache_stats_and_clear(self):
        kernels_module.clear_kernel_cache()
        kernels_module.build_elm_kernel()
        kernels_module.build_elm_kernel()
        stats = kernels_module.kernel_cache_stats()
        assert stats["cached"] == 1
        assert stats["hits"] >= 1

    def test_digest_stable_across_builds(self):
        kernels_module.clear_kernel_cache()
        first = kernels_module.build_elm_kernel().content_digest()
        kernels_module.clear_kernel_cache()
        second = kernels_module.build_elm_kernel().content_digest()
        assert first == second


# ---------------------------------------------------------------------------
# compile_kernel surface
# ---------------------------------------------------------------------------

class TestCompileKernel:
    def test_declines_vgpr_overflow(self):
        source = """
.kernel tight
.vgprs 2
    v_mov_b32 v5, 0
    s_endpgm
"""
        with pytest.raises(CompileUnsupported):
            compile_kernel(assemble(source))

    def test_compiled_source_is_inspectable(self):
        compiled = compile_kernel(assemble(_TRIVIAL))
        assert "def _run" in compiled.source
        assert compiled.filename.startswith("<miaow-fastpath:trivial:")
