"""Bitstream helpers: bit-level IO, word packing, 7-bit chunking."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import PacketDecodeError
from repro.utils.bitstream import (
    BitReader,
    BitWriter,
    bytes_to_words,
    chunk7,
    unchunk7,
    words_to_bytes,
)


class TestBitWriter:
    def test_single_bits_pack_lsb_first(self):
        writer = BitWriter()
        writer.write_bits(0b1, 1)
        writer.write_bits(0b0, 1)
        writer.write_bits(0b1, 1)
        assert writer.getvalue() == bytes([0b101])

    def test_cross_byte_field(self):
        writer = BitWriter()
        writer.write_bits(0x1FF, 9)
        data = writer.getvalue()
        assert data[0] == 0xFF
        assert data[1] == 0x01

    def test_value_too_wide_rejected(self):
        writer = BitWriter()
        with pytest.raises(ValueError):
            writer.write_bits(4, 2)

    def test_negative_width_rejected(self):
        with pytest.raises(ValueError):
            BitWriter().write_bits(0, -1)

    def test_write_byte_requires_alignment(self):
        writer = BitWriter()
        writer.write_bits(1, 3)
        with pytest.raises(ValueError):
            writer.write_byte(0xAB)

    def test_align_pads_with_zeros(self):
        writer = BitWriter()
        writer.write_bits(1, 1)
        writer.align()
        writer.write_byte(0xCD)
        assert writer.getvalue() == bytes([0x01, 0xCD])

    def test_byte_out_of_range(self):
        writer = BitWriter()
        with pytest.raises(ValueError):
            writer.write_byte(256)


class TestBitReader:
    def test_roundtrip_with_writer(self):
        writer = BitWriter()
        writer.write_bits(0x2A, 6)
        writer.write_bits(0x3, 2)
        reader = BitReader(writer.getvalue())
        assert reader.read_bits(6) == 0x2A
        assert reader.read_bits(2) == 0x3

    def test_read_past_end_raises(self):
        reader = BitReader(b"\x01")
        reader.read_bits(8)
        with pytest.raises(PacketDecodeError):
            reader.read_bits(1)

    def test_read_byte_alignment_enforced(self):
        reader = BitReader(b"\x01\x02")
        reader.read_bits(3)
        with pytest.raises(PacketDecodeError):
            reader.read_byte()

    def test_peek_does_not_advance(self):
        reader = BitReader(b"\xAA\xBB")
        assert reader.peek_byte() == 0xAA
        assert reader.read_byte() == 0xAA

    def test_align_skips_partial_byte(self):
        reader = BitReader(b"\xFF\x5C")
        reader.read_bits(2)
        reader.align()
        assert reader.read_byte() == 0x5C

    @given(st.lists(st.tuples(st.integers(0, 31), st.just(5)), max_size=40))
    def test_arbitrary_field_sequence_roundtrips(self, fields):
        writer = BitWriter()
        for value, width in fields:
            writer.write_bits(value, width)
        reader = BitReader(writer.getvalue())
        for value, width in fields:
            assert reader.read_bits(width) == value


class TestWordPacking:
    def test_exact_multiple(self):
        words = bytes_to_words(bytes(range(8)))
        assert len(words) == 2
        assert words_to_bytes(words) == bytes(range(8))

    def test_padding_applied(self):
        words = bytes_to_words(b"\x01\x02\x03", pad_byte=0x20)
        assert len(words) == 1
        assert words_to_bytes(words) == b"\x01\x02\x03\x20"

    def test_little_endian_layout(self):
        assert bytes_to_words(b"\x78\x56\x34\x12") == [0x12345678]

    def test_word_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            words_to_bytes([1 << 32])

    @given(st.binary(max_size=200))
    def test_roundtrip_up_to_padding(self, data):
        words = bytes_to_words(data)
        recovered = words_to_bytes(words)
        assert recovered[:len(data)] == data
        assert all(b == 0 for b in recovered[len(data):])


class TestChunk7:
    def test_zero_is_one_chunk(self):
        assert chunk7(0) == [0]

    def test_known_value(self):
        assert chunk7(0x81) == [0x01, 0x01]

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            chunk7(-1)

    def test_unchunk_range_check(self):
        with pytest.raises(ValueError):
            unchunk7([0x80])

    @given(st.integers(0, 2**40))
    def test_roundtrip(self, value):
        assert unchunk7(chunk7(value)) == value

    @given(st.integers(1, 2**40))
    def test_minimal_length(self, value):
        chunks = chunk7(value)
        assert chunks[-1] != 0 or len(chunks) == 1
