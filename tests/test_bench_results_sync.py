"""Drift test: root ``BENCH_*.json`` mirrors equal the canonical copies.

Benchmark JSON results live in ``benchmarks/results/`` and are
mirrored at the repository root for the acceptance gate.  Both copies
are written by the single shared writer ``benchmarks/bench_io.py``;
this test pins the invariant for the checked-in files so a hand edit
(or a resurrected per-script writer) can't let them drift apart.
"""

import json
import pathlib
import sys

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_DIR = REPO_ROOT / "benchmarks"
RESULTS_DIR = BENCH_DIR / "results"


def _bench_io():
    sys.path.insert(0, str(BENCH_DIR))
    try:
        import bench_io
    finally:
        sys.path.remove(str(BENCH_DIR))
    return bench_io


MIRRORED = _bench_io().MIRRORED_RESULTS


def test_every_root_bench_json_is_registered():
    """No stray root BENCH_*.json outside the mirrored set."""
    stray = {
        path.name for path in REPO_ROOT.glob("BENCH_*.json")
    } - set(MIRRORED)
    assert not stray, (
        f"root benchmark files {sorted(stray)} are not registered in "
        "benchmarks/bench_io.MIRRORED_RESULTS"
    )


@pytest.mark.parametrize("name", MIRRORED)
def test_mirrors_are_byte_identical(name):
    root_copy = REPO_ROOT / name
    canonical = RESULTS_DIR / name
    assert canonical.exists(), f"missing canonical {canonical}"
    assert root_copy.exists(), f"missing root mirror {root_copy}"
    assert root_copy.read_bytes() == canonical.read_bytes(), (
        f"{name}: root mirror drifted from benchmarks/results/ copy "
        "(regenerate via the benchmark script; both copies are "
        "written by bench_io.save_result)"
    )


@pytest.mark.parametrize("name", MIRRORED)
def test_mirrors_are_valid_json(name):
    doc = json.loads((RESULTS_DIR / name).read_text())
    assert isinstance(doc, dict) and doc, name


def test_save_result_writes_both_homes(tmp_path, monkeypatch):
    bench_io = _bench_io()
    monkeypatch.setattr(bench_io, "REPO_ROOT", tmp_path)
    monkeypatch.setattr(
        bench_io, "RESULTS_DIR", tmp_path / "benchmarks" / "results"
    )
    (tmp_path / "benchmarks").mkdir()
    name = MIRRORED[0]
    payload = bench_io.save_result(name, {"benchmark": "unit-test"})
    root_copy = (tmp_path / name).read_text()
    canonical = (tmp_path / "benchmarks" / "results" / name).read_text()
    assert root_copy == canonical == payload
    assert json.loads(payload) == {"benchmark": "unit-test"}


def test_save_result_rejects_unregistered_names():
    bench_io = _bench_io()
    with pytest.raises(ValueError):
        bench_io.save_result("BENCH_unknown.json", {})
