"""Packet grammar: encodings, compression, atom stop-bit format."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import PacketDecodeError, PacketEncodeError
from repro.coresight.packets import (
    AsyncPacket,
    AtomPacket,
    BranchAddressPacket,
    ContextIdPacket,
    ExceptionType,
    HEADER_ASYNC_END,
    HEADER_CONTEXT_ID,
    HEADER_ISYNC,
    HEADER_TIMESTAMP,
    ISyncPacket,
    TimestampPacket,
    decode_atom_byte,
    is_atom_header,
    is_branch_header,
    merge_compressed_address,
)

word_aligned = st.integers(0, (1 << 30) - 1).map(lambda w: w << 2)


class TestAsync:
    def test_layout(self):
        data = AsyncPacket().encode()
        assert data == b"\x00" * 5 + bytes([HEADER_ASYNC_END])


class TestISync:
    def test_layout(self):
        data = ISyncPacket(address=0x1234_5678 & ~3, context_id=9).encode()
        assert data[0] == HEADER_ISYNC
        assert int.from_bytes(data[1:5], "little") == 0x1234_5678 & ~3
        assert data[5] == 9

    def test_unaligned_rejected(self):
        with pytest.raises(PacketEncodeError):
            ISyncPacket(address=0x1001).encode()

    def test_out_of_range_rejected(self):
        with pytest.raises(PacketEncodeError):
            ISyncPacket(address=1 << 33).encode()


class TestContextAndTimestamp:
    def test_context_layout(self):
        data = ContextIdPacket(context_id=0xDEADBEEF).encode()
        assert data[0] == HEADER_CONTEXT_ID
        assert int.from_bytes(data[1:], "little") == 0xDEADBEEF

    def test_context_range(self):
        with pytest.raises(PacketEncodeError):
            ContextIdPacket(context_id=1 << 32).encode()

    def test_timestamp_layout(self):
        data = TimestampPacket(cycles=123456789).encode()
        assert data[0] == HEADER_TIMESTAMP
        assert int.from_bytes(data[1:], "little") == 123456789

    def test_timestamp_range(self):
        with pytest.raises(PacketEncodeError):
            TimestampPacket(cycles=1 << 64).encode()


class TestAtoms:
    def test_single_atom(self):
        data = AtomPacket((True,)).encode()
        assert len(data) == 1
        assert is_atom_header(data[0])
        assert decode_atom_byte(data[0]) == [True]

    def test_four_atoms(self):
        atoms = (True, False, True, True)
        byte = AtomPacket(atoms).encode()[0]
        assert decode_atom_byte(byte) == list(atoms)

    def test_empty_rejected(self):
        with pytest.raises(PacketEncodeError):
            AtomPacket(()).encode()

    def test_five_rejected(self):
        with pytest.raises(PacketEncodeError):
            AtomPacket((True,) * 5).encode()

    def test_decode_non_atom_rejected(self):
        with pytest.raises(PacketDecodeError):
            decode_atom_byte(0x01)

    @given(st.lists(st.booleans(), min_size=1, max_size=4))
    def test_roundtrip(self, atoms):
        byte = AtomPacket(tuple(atoms)).encode()[0]
        assert decode_atom_byte(byte) == atoms
        assert not is_branch_header(byte)


class TestBranchAddress:
    def test_same_address_single_byte(self):
        packet = BranchAddressPacket(address=0x1000)
        assert len(packet.encode(previous=0x1000)) == 1

    def test_far_address_full_length(self):
        packet = BranchAddressPacket(address=0x8000_0000)
        assert len(packet.encode(previous=0)) == 5

    def test_exception_forces_full_plus_info(self):
        packet = BranchAddressPacket(
            address=0x1000, exception=ExceptionType.SVC
        )
        data = packet.encode(previous=0x1000)
        assert len(data) == 6
        assert data[-1] == int(ExceptionType.SVC)

    def test_unaligned_rejected(self):
        with pytest.raises(PacketEncodeError):
            BranchAddressPacket(address=0x1002).encode()

    def test_marker_bit_set(self):
        data = BranchAddressPacket(address=0x1000).encode(previous=0)
        assert data[0] & 0x01

    def test_nearby_address_short(self):
        data = BranchAddressPacket(address=0x1010).encode(previous=0x1000)
        assert len(data) <= 2

    @given(word_aligned, word_aligned)
    def test_merge_recovers_address(self, address, previous):
        """encode + merge is the identity given the previous address."""
        from repro.coresight.decoder import PftDecoder

        packet = BranchAddressPacket(address=address)
        decoder = PftDecoder()
        decoder._last_address = previous
        results = decoder.feed(packet.encode(previous=previous))
        assert len(results) == 1
        assert results[0].address == address


class TestMergeCompression:
    def test_full_width_ignores_previous(self):
        assert merge_compressed_address(0x3FFFFFFF, 30, 0) == 0xFFFFFFFC

    def test_partial_uses_previous_high_bits(self):
        previous = 0xAABB_CC00
        merged = merge_compressed_address(0x1, 6, previous)
        expected = ((previous >> 2) & ~0x3F | 0x1) << 2
        assert merged == expected
