"""Binary program images: encode/decode round trips, device loading."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import AssemblerError
from repro.miaow.assembler import assemble, float_bits
from repro.miaow.binary import (
    MAGIC,
    decode_kernel,
    encode_kernel,
    image_bytes,
)
from repro.miaow.gpu import Gpu
from repro.miaow.runtime import GpuRuntime

LOOPY = """
.kernel loopy
.vgprs 6
    v_mov_b32 v1, 0.0
    s_mov_b32 s3, 0
top:
    v_add_f32 v1, v1, 1.5
    s_add_i32 s3, s3, 1
    s_cmp_lt_i32 s3, s2
    s_cbranch_scc1 top
    v_lshlrev_b32 v2, 2, v0
    v_add_i32 v2, v2, s4
    flat_store_dword v2, v1
    s_endpgm
"""


def roundtrip(kernel):
    return decode_kernel(encode_kernel(kernel), name=kernel.name)


class TestRoundTrip:
    def test_structure_preserved(self):
        kernel = assemble(LOOPY)
        again = roundtrip(kernel)
        assert len(again) == len(kernel)
        assert again.vgprs_used == kernel.vgprs_used
        assert [i.op for i in again.instructions] == [
            i.op for i in kernel.instructions
        ]

    def test_branch_targets_resolve_to_same_pcs(self):
        kernel = assemble(LOOPY)
        again = roundtrip(kernel)
        for original, decoded in zip(kernel.instructions,
                                     again.instructions):
            if original.target is not None:
                assert again.resolve(decoded.target) == kernel.resolve(
                    original.target
                )

    def test_encode_is_fixed_point(self):
        kernel = assemble(LOOPY)
        once = encode_kernel(kernel)
        twice = encode_kernel(decode_kernel(once))
        assert (once == twice).all()

    def test_ml_kernels_roundtrip(self):
        from repro.ml.kernels import (
            build_elm_kernel,
            build_lstm_gates_kernel,
            build_lstm_score_kernel,
            build_lstm_update_kernel,
        )

        for kernel in (
            build_elm_kernel(), build_lstm_gates_kernel(),
            build_lstm_score_kernel(), build_lstm_update_kernel(),
        ):
            again = roundtrip(kernel)
            assert [str(i.operands) for i in again.instructions] == [
                str(i.operands) for i in kernel.instructions
            ]

    def test_decoded_kernel_executes_identically(self):
        gpu_a, gpu_b = Gpu(), Gpu()
        rt_a, rt_b = GpuRuntime(gpu_a), GpuRuntime(gpu_b)
        kernel = rt_a.build_program(LOOPY)
        decoded = decode_kernel(encode_kernel(kernel), name="loopy")
        out_a, out_b = rt_a.alloc_f32(64), rt_b.alloc_f32(64)
        result_a = rt_a.launch(kernel, 1, [7, 0, out_a])
        result_b = gpu_b.dispatch(decoded, 1, [7, 0, out_b.address])
        assert (rt_a.read_f32(out_a) == rt_b.read_f32(out_b)).all()
        assert result_a.cycles == result_b.cycles

    def test_image_bytes(self):
        kernel = assemble("s_endpgm\n")
        # header (2) + word0 + word1
        assert image_bytes(kernel) == 16


class TestDeviceLoading:
    def test_upload_and_load_from_device(self):
        runtime = GpuRuntime(Gpu())
        kernel = runtime.build_program(LOOPY)
        image_buffer = runtime.upload_binary(kernel)
        loaded = runtime.load_binary(image_buffer, name="from-device")
        assert runtime.get_kernel("from-device") is loaded
        assert len(loaded) == len(kernel)


class TestRobustness:
    def test_bad_magic_rejected(self):
        image = encode_kernel(assemble("s_endpgm\n")).copy()
        image[2] ^= 0xFF000000  # clobber the magic byte of word0
        with pytest.raises(AssemblerError):
            decode_kernel(image)

    def test_truncated_image_rejected(self):
        image = encode_kernel(assemble(LOOPY))
        with pytest.raises(AssemblerError):
            decode_kernel(image[:-1])

    def test_trailing_garbage_rejected(self):
        image = encode_kernel(assemble("s_endpgm\n"))
        padded = np.concatenate([image, np.array([0], dtype=np.uint32)])
        with pytest.raises(AssemblerError):
            decode_kernel(padded)

    def test_empty_image_rejected(self):
        with pytest.raises(AssemblerError):
            decode_kernel(np.array([], dtype=np.uint32))

    def test_unknown_opcode_index_rejected(self):
        image = encode_kernel(assemble("s_endpgm\n")).copy()
        image[2] = (image[2] & ~np.uint32(0xFF)) | np.uint32(0xFE)
        with pytest.raises(AssemblerError):
            decode_kernel(image)


@given(
    st.lists(
        st.sampled_from([
            "v_add_f32 v1, v2, v3",
            "s_mov_b32 s4, 0x1234",
            "v_mul_f32 v1, v1, 2.5",
            "ds_read_b32 v2, v3",
            "v_cndmask_b32 v1, v2, v3",
            "s_cmp_lt_i32 s4, 10",
            "v_mov_b32 v5, vcc",
        ]),
        max_size=12,
    )
)
@settings(max_examples=40, deadline=None)
def test_arbitrary_programs_roundtrip(lines):
    source = "\n".join(lines + ["s_endpgm"])
    kernel = assemble(source)
    again = decode_kernel(encode_kernel(kernel))
    assert [str(i) for i in again.instructions] == [
        str(i) for i in kernel.instructions
    ]
