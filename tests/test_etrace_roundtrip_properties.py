"""Seeded randomized lossless round trips through the E-Trace port.

Mirror of ``test_coresight_roundtrip_properties.py`` for the RISC-V
E-Trace grammar: several hundred generated cases drive the byte-exact
chain

    E-Trace encode -> ETP framing -> ETP deframe -> E-Trace decode

and assert that branch addresses, trap flags, branch-map bits, and
context switches survive losslessly — under arbitrary receive-side
chunkings, and (separately) at *every* truncation offset of a framed
stream, where the decoder must absorb the torn tail as a counted
:class:`EtraceTruncation`, never an exception.

The generator is a plain seeded ``random.Random``: identical cases on
every run, on every machine, under any ``PYTHONHASHSEED``.
"""

import random

import pytest

from repro.frontends.etrace import (
    EtraceBranch,
    EtraceBranchMap,
    EtraceConfig,
    EtraceContext,
    EtraceDecoder,
    EtraceDeframer,
    EtraceEncoder,
    EtraceFramer,
    EtraceTruncation,
)
from repro.workloads.cfg import BranchEvent, BranchKind

SEEDS = (2024, 7, 90125)
CASES_PER_SEED = 120

_KINDS = (
    BranchKind.CONDITIONAL,
    BranchKind.UNCONDITIONAL,
    BranchKind.CALL,
    BranchKind.RETURN,
    BranchKind.INDIRECT,
    BranchKind.SYSCALL,
)


def _random_event(rng: random.Random, cycle: int) -> BranchEvent:
    kind = rng.choice(_KINDS)
    return BranchEvent(
        cycle=cycle,
        source=rng.randrange(1 << 30) << 2,
        target=rng.randrange(1 << 30) << 2,
        kind=kind,
        taken=kind is not BranchKind.CONDITIONAL or rng.random() < 0.6,
    )


def _is_map_only(event: BranchEvent) -> bool:
    return event.kind is BranchKind.CONDITIONAL and not event.taken


def _random_case(rng: random.Random):
    """One stream: branch events interleaved with context switches.

    Returns ``(steps, expected_targets, expected_traps,
    expected_contexts, map_only_events)``.
    """
    steps = []
    expected_targets = []
    expected_traps = []
    expected_contexts = []
    map_only = 0
    cycle = rng.randrange(1 << 20)
    for _ in range(rng.randrange(1, 80)):
        if rng.random() < 0.08:
            context_id = rng.randrange(1, 1 << 32)
            steps.append(("context", context_id))
            expected_contexts.append(context_id)
        else:
            cycle += rng.randrange(1, 500)
            event = _random_event(rng, cycle)
            steps.append(("event", event))
            if _is_map_only(event):
                map_only += 1
            else:
                expected_targets.append(event.target)
                expected_traps.append(
                    event.kind is BranchKind.SYSCALL
                )
    return steps, expected_targets, expected_traps, expected_contexts, map_only


def _roundtrip(steps, rng: random.Random):
    """Drive the byte chain; return decoded packet objects in order."""
    encoder = EtraceEncoder(
        EtraceConfig(
            sync_interval_bytes=rng.choice((64, 256, 1024))
        )
    )
    framer = EtraceFramer(sync_period=rng.choice((1, 4, 64)))
    deframer = EtraceDeframer()
    decoder = EtraceDecoder()
    decoded = []
    chunk = rng.randrange(1, 33)
    framed = bytearray()
    for action, value in steps:
        if action == "event":
            framed += framer.push(encoder.feed(value))
        else:
            framed += framer.push(encoder.switch_context(value))
    framed += framer.push(encoder.flush())
    framed += framer.flush()
    # Feed the port capture to the receiver in odd-sized chunks: frame
    # boundaries must not matter to the deframer.
    for start in range(0, len(framed), chunk):
        decoded.extend(
            decoder.feed(deframer.push(bytes(framed[start:start + chunk])))
        )
    decoded.extend(decoder.finish())
    return decoded


@pytest.mark.parametrize("seed", SEEDS)
def test_branch_addresses_and_contexts_lossless(seed):
    rng = random.Random(seed)
    for case_index in range(CASES_PER_SEED):
        steps, targets, traps, contexts, _ = _random_case(rng)
        decoded = _roundtrip(steps, rng)
        label = f"seed={seed} case={case_index}"
        branches = [p for p in decoded if isinstance(p, EtraceBranch)]
        assert [b.address for b in branches] == targets, label
        assert [b.trap for b in branches] == traps, label
        assert [b.is_syscall for b in branches] == traps, label
        # Context packets are emitted only at switches (periodic syncs
        # republish the live ID inside EtraceSync, not EtraceContext),
        # so the switch sequence must survive verbatim.
        switched = [
            p.context_id
            for p in decoded
            if isinstance(p, EtraceContext)
        ]
        assert switched == contexts, label


@pytest.mark.parametrize("seed", SEEDS)
def test_branch_map_bits_account_for_every_not_taken(seed):
    """Every conditional not-taken lands as exactly one map bit."""
    rng = random.Random(seed + 1_000_000)
    for case_index in range(60):
        steps, _, _, _, map_only = _random_case(rng)
        decoded = _roundtrip(steps, rng)
        not_taken_bits = sum(
            sum(1 for bit in p.taken if not bit)
            for p in decoded
            if isinstance(p, EtraceBranchMap)
        )
        taken_bits = sum(
            sum(1 for bit in p.taken if bit)
            for p in decoded
            if isinstance(p, EtraceBranchMap)
        )
        label = f"seed={seed} case={case_index}"
        assert not_taken_bits == map_only, label
        assert taken_bits == 0, label
        assert not any(
            isinstance(p, EtraceTruncation) for p in decoded
        ), label


def _framed_case(seed: int, events: int = 60):
    """One deterministic framed stream plus its clean branch decode."""
    rng = random.Random(seed)
    encoder = EtraceEncoder(EtraceConfig(sync_interval_bytes=96))
    framer = EtraceFramer(sync_period=3)
    framed = bytearray()
    cycle = 0
    for _ in range(events):
        cycle += rng.randrange(1, 400)
        framed += framer.push(encoder.feed(_random_event(rng, cycle)))
    framed += framer.push(encoder.flush())
    framed += framer.flush()
    framed = bytes(framed)
    deframer = EtraceDeframer()
    decoder = EtraceDecoder()
    decoded = list(decoder.feed(deframer.push(framed)))
    decoded += decoder.finish()
    branches = [p.address for p in decoded if isinstance(p, EtraceBranch)]
    return framed, branches


@pytest.mark.parametrize("seed", SEEDS)
def test_torn_tail_at_every_offset(seed):
    """Truncating the framed stream anywhere must decode a clean
    prefix of the full branch sequence and account the torn tail as an
    ``EtraceTruncation`` — never raise, never invent branches."""
    framed, full_branches = _framed_case(seed)
    assert len(framed) > 200  # meaningful coverage
    for offset in range(len(framed) + 1):
        deframer = EtraceDeframer()
        decoder = EtraceDecoder(strict=False)
        decoded = list(decoder.feed(deframer.push(framed[:offset])))
        decoded += decoder.finish()
        label = f"seed={seed} offset={offset}"
        branches = [
            p.address for p in decoded if isinstance(p, EtraceBranch)
        ]
        assert branches == full_branches[: len(branches)], label
        truncations = [
            p for p in decoded if isinstance(p, EtraceTruncation)
        ]
        assert len(truncations) <= 1, label
        for truncation in truncations:
            assert truncation.pending_bytes >= 0, label


@pytest.mark.parametrize("seed", SEEDS)
def test_strict_decoder_raises_on_torn_packet(seed):
    """In strict mode a mid-packet truncation is an error, and the
    lenient/strict split only concerns the *tail*: both modes agree on
    everything decoded before the cut."""
    from repro.errors import PacketDecodeError

    framed, _ = _framed_case(seed, events=20)
    saw_strict_raise = False
    for offset in range(len(framed) + 1):
        deframer = EtraceDeframer()
        strict = EtraceDecoder(strict=True)
        prefix = list(strict.feed(deframer.push(framed[:offset])))
        try:
            strict.finish()
        except PacketDecodeError:
            saw_strict_raise = True
            continue
        # finish() was clean: the lenient decode must match exactly.
        deframer2 = EtraceDeframer()
        lenient = EtraceDecoder(strict=False)
        relaxed = list(lenient.feed(deframer2.push(framed[:offset])))
        relaxed += lenient.finish()
        assert [type(p) for p in relaxed] == [type(p) for p in prefix]
    assert saw_strict_raise  # some offsets do cut mid-packet


@pytest.mark.parametrize("seed", SEEDS)
def test_decoder_state_survives_export_restore_mid_stream(seed):
    """Checkpoint/replay: splitting the stream at a random byte and
    round-tripping deframer+decoder state must not change the decode."""
    rng = random.Random(seed + 3_000_000)
    framed, full_branches = _framed_case(seed)
    for _ in range(25):
        cut = rng.randrange(len(framed))
        deframer = EtraceDeframer()
        decoder = EtraceDecoder()
        decoded = list(decoder.feed(deframer.push(framed[:cut])))
        restored_deframer = EtraceDeframer()
        restored_decoder = EtraceDecoder()
        restored_deframer.restore_state(deframer.export_state())
        restored_decoder.restore_state(decoder.export_state())
        decoded += restored_decoder.feed(
            restored_deframer.push(framed[cut:])
        )
        decoded += restored_decoder.finish()
        branches = [
            p.address for p in decoded if isinstance(p, EtraceBranch)
        ]
        assert branches == full_branches, f"seed={seed} cut={cut}"


def test_generator_is_hash_seed_independent():
    """Pin the first generated case as a tripwire against accidental
    hash-order dependence in the generator."""
    rng = random.Random(SEEDS[0])
    steps, targets, traps, contexts, map_only = _random_case(rng)
    digest = (
        len(steps),
        len(targets),
        len(traps),
        len(contexts),
        map_only,
        targets[0] if targets else None,
    )
    assert digest == (24, 23, 23, 0, 1, 2278232200)
