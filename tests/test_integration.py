"""End-to-end integration: raw branches -> trace -> IGM -> MCM -> GPU
-> interrupt, plus the queueing-path attack trials."""

import numpy as np
import pytest

from repro.mcm.driver import MlMiaowDriver
from repro.mcm.engines import ProtocolConverter
from repro.miaow.gpu import Gpu
from repro.ml.detector import ThresholdDetector
from repro.ml.kernels import DeployedElm, DeployedLstm
from repro.soc.rtad import RtadConfig, RtadSoc
from repro.workloads.attacks import AttackInjector


@pytest.fixture
def lstm_soc(small_program, tiny_lstm, call_dataset):
    monitored = small_program.monitored_call_targets(count=30)
    detector = ThresholdDetector(0.99)
    deployment = DeployedLstm(tiny_lstm)
    reference = deployment.make_reference()
    stream = call_dataset.test_normal[::8].ravel()[:600]
    detector.fit([reference.infer(int(b)) for b in stream])
    driver = MlMiaowDriver(deployment, Gpu(num_cus=5), execute_on_gpu=False)
    return RtadSoc(
        program=small_program,
        driver=driver,
        converter=ProtocolConverter("lstm"),
        monitored_addresses=monitored,
        detector=detector,
        config=RtadConfig(model_kind="lstm", window=1),
    )


class TestFullPath:
    def test_run_events_produces_inferences(self, lstm_soc, small_program):
        events = small_program.run(40_000, run_label="full-path").events
        records = lstm_soc.run_events(events)
        assert len(records) > 10
        done = [r.done_ns for r in records]
        assert done == sorted(done)

    def test_arrival_after_trigger(self, lstm_soc, small_program):
        events = small_program.run(20_000, run_label="full-path-2").events
        records = lstm_soc.run_events(events)
        for record in records:
            trigger_ns = record.trigger_cycle / 250e6 * 1e9
            assert record.arrival_ns >= trigger_ns

    def test_attacked_run_fires_interrupt(self, small_program, tiny_lstm,
                                          call_dataset):
        # Fresh SoC with a cranked engine clock: the raw CFG walk emits
        # monitored branches in bursts far denser than the profile's
        # steady-state rate, so detection quality is tested with the
        # queueing bottleneck removed (timing has its own tests).
        monitored = small_program.monitored_call_targets(count=30)
        deployment = DeployedLstm(tiny_lstm)
        reference = deployment.make_reference()
        stream = call_dataset.test_normal[::8].ravel()[:800]
        surprisals = np.array(
            [reference.infer(int(b)) for b in stream]
        )
        smoothed = np.convolve(surprisals, np.ones(3) / 3, mode="valid")
        detector = ThresholdDetector(0.97).fit(smoothed)
        driver = MlMiaowDriver(deployment, Gpu(num_cus=5),
                               execute_on_gpu=False)
        soc = RtadSoc(
            program=small_program,
            driver=driver,
            converter=ProtocolConverter("lstm"),
            monitored_addresses=monitored,
            detector=detector,
            config=RtadConfig(model_kind="lstm", window=1,
                              score_smoothing=3, fifo_depth=64,
                              gpu_clock_hz=2e9),
        )
        events = small_program.run(40_000, run_label="victim").events
        # choose rarely-used monitored functions as the gadget targets
        from collections import Counter

        usage = Counter(
            e.target for e in events if e.target in set(monitored)
        )
        rare = [a for a in monitored if usage[a] <= 1]
        pool = rare if len(rare) >= 4 else monitored
        injector = AttackInjector(seed=5, gadget_length=24,
                                  inter_branch_cycles=2500)
        attacked, attack = injector.inject(
            events, position=len(events) // 2, target_pool=pool
        )
        soc.mcm.interrupts.fired.clear()
        records = soc.run_events(attacked)
        assert records, "no inferences at all"
        assert soc.mcm.dropped_vectors == 0
        onset_ns = attack.onset_cycle / 250e6 * 1e9
        post = [i for i in soc.mcm.interrupts.fired if i.time_ns >= onset_ns]
        pre = [i for i in soc.mcm.interrupts.fired if i.time_ns < onset_ns]
        assert post, "attack not detected by the full pipeline"
        assert len(post) > len(pre)


class TestAttackTrials:
    def test_trial_reports_judgment_latency(self, lstm_soc):
        ids = (np.arange(400) % 20) + 1
        result = lstm_soc.run_attack_trial(
            normal_ids=ids,
            mean_interval_us=150.0,
            gadget_ids=[5, 9, 3, 7, 5, 9, 3, 7],
            onset_index=200,
            seed=1,
        )
        assert result.detection_latency_us is not None
        assert 0 < result.detection_latency_us < 10_000
        assert result.inferences > 300

    def test_faster_engine_lower_judgment_latency(
        self, small_program, tiny_lstm, call_dataset
    ):
        latencies = {}
        for name, cus in (("miaow", 1), ("ml-miaow", 5)):
            deployment = DeployedLstm(tiny_lstm)
            driver = MlMiaowDriver(deployment, Gpu(num_cus=cus),
                                   execute_on_gpu=False)
            soc = RtadSoc(
                program=small_program,
                driver=driver,
                converter=ProtocolConverter("lstm"),
                monitored_addresses=small_program.monitored_call_targets(
                    count=30
                ),
                detector=None,
                config=RtadConfig(model_kind="lstm", window=1),
            )
            ids = (np.arange(300) % 20) + 1
            result = soc.run_attack_trial(
                normal_ids=ids,
                mean_interval_us=200.0,
                gadget_ids=[3, 4, 5, 6, 7, 8],
                onset_index=150,
                seed=2,
            )
            latencies[name] = result.detection_latency_us
        assert latencies["ml-miaow"] < latencies["miaow"]

    def test_saturating_arrivals_overflow_fifo(
        self, small_program, tiny_lstm
    ):
        deployment = DeployedLstm(tiny_lstm)
        driver = MlMiaowDriver(deployment, Gpu(num_cus=1),
                               execute_on_gpu=False)
        soc = RtadSoc(
            program=small_program,
            driver=driver,
            converter=ProtocolConverter("lstm"),
            monitored_addresses=small_program.monitored_call_targets(
                count=30
            ),
            detector=None,
            config=RtadConfig(model_kind="lstm", window=1, fifo_depth=4),
        )
        ids = (np.arange(600) % 20) + 1
        result = soc.run_attack_trial(
            normal_ids=ids,
            mean_interval_us=5.0,   # far faster than the engine
            gadget_ids=[3, 4, 5, 6],
            onset_index=300,
            seed=3,
        )
        assert result.overflowed
        assert result.dropped_vectors > 0

    def test_onset_bounds_checked(self, lstm_soc):
        with pytest.raises(Exception):
            lstm_soc.run_attack_trial(
                normal_ids=[1, 2, 3],
                mean_interval_us=10.0,
                gadget_ids=[1],
                onset_index=99,
            )


class TestExactGpuLstmTrial:
    def test_short_trial_fully_on_gpu(self, small_program, tiny_lstm):
        """A complete (short) attack trial where every inference truly
        executes on the instruction-level GPU simulator."""
        deployment = DeployedLstm(tiny_lstm)
        driver = MlMiaowDriver(deployment, Gpu(num_cus=5),
                               execute_on_gpu=True)
        soc = RtadSoc(
            program=small_program,
            driver=driver,
            converter=ProtocolConverter("lstm"),
            monitored_addresses=small_program.monitored_call_targets(
                count=30
            ),
            detector=None,
            config=RtadConfig(model_kind="lstm", window=1),
        )
        ids = (np.arange(60) % 15) + 1
        result = soc.run_attack_trial(
            normal_ids=ids,
            mean_interval_us=300.0,
            gadget_ids=[2, 9, 4, 11],
            onset_index=30,
            seed=6,
        )
        assert result.inferences == 64
        assert result.detection_latency_us is not None
        total_gpu_instructions = sum(
            cu.total_instructions
            for cu in driver.gpu.compute_units
        )
        # 64 inferences x 3 kernels actually ran on the simulator
        assert total_gpu_instructions > 64 * 500


class TestElmPath:
    def test_elm_soc_detects(self, small_program, tiny_elm, tiny_dictionary,
                             syscall_dataset):
        features = tiny_dictionary.features(syscall_dataset.train_windows)
        detector = ThresholdDetector(0.995).fit(
            tiny_elm.score_mahalanobis_f32(features)
        )
        deployment = DeployedElm(tiny_elm, tiny_dictionary, window=12)
        driver = MlMiaowDriver(deployment, Gpu(num_cus=5),
                               execute_on_gpu=False)
        soc = RtadSoc(
            program=small_program,
            driver=driver,
            converter=ProtocolConverter("elm", tiny_dictionary),
            monitored_addresses=small_program.syscall_targets(),
            detector=detector,
            config=RtadConfig(model_kind="elm", window=12),
        )
        normal = syscall_dataset.test_normal[::12].ravel()[:400]
        rng = np.random.default_rng(0)
        values, counts = np.unique(normal, return_counts=True)
        rare = values[np.argsort(counts)][: max(2, len(values) // 2)]
        gadget = rng.choice(rare, size=10)
        result = soc.run_attack_trial(
            normal_ids=normal,
            mean_interval_us=small_program.profile.syscall_interval_us,
            gadget_ids=[int(g) for g in gadget],
            onset_index=200,
            seed=4,
        )
        assert result.detection_latency_us is not None
        assert result.detected
