"""Mid-stream context reconfiguration: ``set_context_id`` boundaries.

The driver contract says a context ID change requires a stopped
session and takes effect on the next enable.  These tests pin what
that means on the wire and in the dataplanes, for both grammars:

- decoding the concatenated capture of session A (context 0x11) and
  session B (context 0x42) yields the context switch exactly on the
  session boundary — every session-A branch decodes under 0x11,
  every session-B branch under 0x42, none are lost or reordered;
- an SoC run spanning the context change produces identical verdicts
  on the batched and per-event dataplanes.
"""

import pytest

from repro.coresight.decoder import (
    DecodedBranch,
    DecodedContext,
    DecodedISync,
)
from repro.eval.metrics import build_demo_soc, demo_events
from repro.frontends import get_frontend
from repro.frontends.etrace import (
    EtraceBranch,
    EtraceContext,
    EtraceSync,
)

FRONTEND_NAMES = ("coresight", "etrace")
CONTEXT_A = 0x11
CONTEXT_B = 0x42

_CONTEXT_TYPES = (DecodedISync, DecodedContext, EtraceSync, EtraceContext)
_BRANCH_TYPES = (DecodedBranch, EtraceBranch)


def _decode(name: str, blob: bytes):
    frontend = get_frontend(name)
    deframer = frontend.new_deframer()
    decoder = frontend.new_decoder()
    decoded = list(decoder.feed(deframer.push(blob)))
    decoded += decoder.finish()
    return decoded


def _timeline(decoded):
    """Flatten a decode into ("ctx", id) / ("branch", address) marks."""
    marks = []
    for packet in decoded:
        if isinstance(packet, _CONTEXT_TYPES):
            marks.append(("ctx", packet.context_id))
        elif isinstance(packet, _BRANCH_TYPES):
            marks.append(("branch", packet.address))
    return marks


def _branches(marks):
    return [value for kind, value in marks if kind == "branch"]


def _two_session_capture(name: str):
    """Session A under 0x11, reconfigure, session B under 0x42."""
    driver = get_frontend(name).create_driver()
    driver.set_context_id(CONTEXT_A)
    events_a = demo_events("lstm", 0, 600, run_label="ctx-a")
    events_b = demo_events("lstm", 1, 600, run_label="ctx-b")
    driver.enable()
    framed_a = driver.trace_all(events_a)
    driver.disable()
    driver.set_context_id(CONTEXT_B)
    driver.enable()
    framed_b = driver.trace_all(events_b)
    driver.disable()
    return framed_a, framed_b


@pytest.mark.parametrize("name", FRONTEND_NAMES)
def test_context_switch_lands_on_the_session_boundary(name):
    framed_a, framed_b = _two_session_capture(name)
    marks = _timeline(_decode(name, framed_a + framed_b))

    contexts = [value for kind, value in marks if kind == "ctx"]
    assert CONTEXT_A in contexts and CONTEXT_B in contexts
    boundary = next(
        i for i, (kind, value) in enumerate(marks)
        if kind == "ctx" and value == CONTEXT_B
    )
    # Every context observation before the boundary is session A's,
    # every one at or after it is session B's: the reconfiguration
    # leaks into neither direction.
    assert {v for k, v in marks[:boundary] if k == "ctx"} == {CONTEXT_A}
    assert {v for k, v in marks[boundary:] if k == "ctx"} == {CONTEXT_B}

    # And the branch split at the boundary is exactly the per-session
    # decode: no branch crosses the context change, none are lost.
    branches_a = _branches(_timeline(_decode(name, framed_a)))
    branches_b = _branches(_timeline(_decode(name, framed_b)))
    assert branches_a, "vacuous: session A decoded no branches"
    assert branches_b, "vacuous: session B decoded no branches"
    assert _branches(marks[:boundary]) == branches_a
    assert _branches(marks[boundary:]) == branches_b


@pytest.mark.parametrize("name", FRONTEND_NAMES)
def test_periodic_syncs_republish_the_live_context(name):
    """Inside one session every sync agrees on the configured ID."""
    framed_a, _ = _two_session_capture(name)
    contexts = [
        value
        for kind, value in _timeline(_decode(name, framed_a))
        if kind == "ctx"
    ]
    assert contexts and set(contexts) == {CONTEXT_A}


@pytest.mark.parametrize("name", FRONTEND_NAMES)
def test_dataplanes_agree_across_a_context_change(name):
    """Batched and loop verdicts stay identical when a run spans
    end_session -> set_context_id -> new session."""
    events_a = demo_events("lstm", 0, 1500, run_label="ctx-plane-a")
    events_b = demo_events("lstm", 1, 1500, run_label="ctx-plane-b")

    def verdicts(dataplane):
        # Fresh SoC per dataplane: run_events returns the MCM's
        # lifetime record log, covering both sessions.
        soc = build_demo_soc("lstm", seed=0, frontend=name)
        soc.run_events(events_a, dataplane=dataplane)
        soc.host.end_session()
        soc.host.driver.set_context_id(CONTEXT_B)
        records = soc.run_events(events_b, dataplane=dataplane)
        return [
            (r.sequence_number, r.score, bool(r.anomalous))
            for r in records
        ]

    batched = verdicts("batched")
    loop = verdicts("loop")
    assert batched, "vacuous agreement (no inferences)"
    assert batched == loop
