"""Observability threaded through the full pipeline.

Two invariants matter:

1. the counters are *consistent* — cross-stage conservation laws hold
   (every event was seen by the PTM and the mapper; every encoded
   vector reached the MCM; every accepted vector produced exactly one
   inference), and
2. metrics are *inert* — a run with a live registry produces records
   identical to a run with the no-op default.
"""

import pytest

from repro.mcm.driver import MlMiaowDriver
from repro.mcm.engines import ProtocolConverter
from repro.miaow.gpu import Gpu
from repro.ml.detector import ThresholdDetector
from repro.ml.kernels import DeployedLstm
from repro.obs import MetricsRegistry, NullRegistry
from repro.soc.rtad import RtadConfig, RtadSoc


EVENTS = 8_000


def _build_soc(small_program, tiny_lstm, call_dataset, metrics):
    monitored = small_program.monitored_call_targets(count=30)
    deployment = DeployedLstm(tiny_lstm)
    reference = deployment.make_reference()
    stream = call_dataset.test_normal[::8].ravel()[:600]
    detector = ThresholdDetector(0.99).fit(
        [reference.infer(int(b)) for b in stream]
    )
    driver = MlMiaowDriver(deployment, Gpu(num_cus=5), execute_on_gpu=False)
    return RtadSoc(
        program=small_program,
        driver=driver,
        converter=ProtocolConverter("lstm"),
        monitored_addresses=monitored,
        detector=detector,
        config=RtadConfig(model_kind="lstm", window=1, fifo_depth=64),
        metrics=metrics,
    )


def _record_key(record):
    return (
        record.sequence_number,
        record.trigger_cycle,
        record.arrival_ns,
        record.start_ns,
        record.done_ns,
        record.score,
        record.anomalous,
        record.gpu_cycles,
    )


@pytest.fixture(scope="module")
def instrumented_run(small_program, tiny_lstm, call_dataset):
    registry = MetricsRegistry()
    soc = _build_soc(small_program, tiny_lstm, call_dataset, registry)
    events = small_program.run(EVENTS, run_label="obs-integration").events
    records = soc.run_events(events)
    return soc, registry, events, records


class TestCounterConsistency:
    def test_every_event_accounted(self, instrumented_run):
        _, registry, events, _ = instrumented_run
        counters = registry.snapshot()["counters"]
        assert counters["soc.events"] == len(events)
        assert counters["ptm.events"] == len(events)
        assert (
            counters["igm.mapper.hits"] + counters["igm.mapper.misses"]
            == len(events)
        )

    def test_vector_conservation(self, instrumented_run):
        _, registry, _, records = instrumented_run
        counters = registry.snapshot()["counters"]
        assert counters["igm.vectors_encoded"] == counters["mcm.vectors_in"]
        assert (
            counters["mcm.inferences"]
            == counters["mcm.vectors_in"] - counters["mcm.dropped_vectors"]
        )
        assert counters["mcm.inferences"] == len(records)
        assert len(records) > 0

    def test_driver_counts_match_mcm(self, instrumented_run):
        soc, registry, _, records = instrumented_run
        counters = registry.snapshot()["counters"]
        assert counters["driver.inferences"] == counters["mcm.inferences"]
        dispatches = soc.mcm.driver.phases.num_dispatches
        assert (
            counters["driver.kernel_launches"]
            == len(records) * dispatches
        )
        assert counters["driver.gpu_cycles"] == sum(
            record.gpu_cycles for record in records
        )

    def test_trace_port_byte_conservation(self, instrumented_run):
        _, registry, _, _ = instrumented_run
        counters = registry.snapshot()["counters"]
        # Every PTM byte is carried as TPIU frame payload...
        assert counters["tpiu.payload_bytes"] == counters["ptm.bytes"]
        # ...and frames are fixed-size: payload + padding + 1 ID byte.
        assert (
            counters["tpiu.payload_bytes"]
            + counters["tpiu.padding_bytes"]
            + counters["tpiu.frames"]
            == counters["tpiu.frames"] * 16
        )

    def test_latency_histograms_cover_every_inference(
        self, instrumented_run
    ):
        _, registry, _, records = instrumented_run
        histograms = registry.snapshot()["histograms"]
        for name in (
            "pipeline.read_ns",
            "pipeline.vectorize_ns",
            "pipeline.e2e_ns",
            "mcm.queue_ns",
            "mcm.service_ns",
            "mcm.gpu_ns",
        ):
            assert histograms[name]["count"] == len(records), name

    def test_run_span_recorded(self, instrumented_run):
        _, registry, _, _ = instrumented_run
        histograms = registry.snapshot()["histograms"]
        assert histograms["span.soc.run_events"]["count"] == 1
        assert (
            histograms["span.soc.run_events/mcm.finalize"]["count"] == 1
        )
        paths = [record.path for record in registry.spans]
        assert "soc.run_events" in paths

    def test_fifo_gauge_high_water(self, instrumented_run):
        soc, registry, _, _ = instrumented_run
        gauges = registry.snapshot()["gauges"]
        assert (
            gauges["mcm.fifo.depth"]["high_water"]
            == soc.mcm.fifo.max_occupancy
        )


class TestMetricsAreInert:
    def test_identical_records_with_and_without_registry(
        self, instrumented_run, small_program, tiny_lstm, call_dataset
    ):
        _, _, events, instrumented_records = instrumented_run
        null_soc = _build_soc(
            small_program, tiny_lstm, call_dataset, NullRegistry()
        )
        null_records = null_soc.run_events(events)
        assert (
            [_record_key(record) for record in null_records]
            == [_record_key(record) for record in instrumented_records]
        )

    def test_default_is_null_registry(
        self, small_program, tiny_lstm, call_dataset
    ):
        soc = _build_soc(small_program, tiny_lstm, call_dataset, None)
        assert soc.metrics.enabled is False
        records = soc.run_events(
            small_program.run(2_000, run_label="obs-default").events
        )
        assert soc.metrics.snapshot()["counters"] == {}
        assert soc.metrics.spans == []
