"""Golden end-to-end traces: fixed-seed runs pinned to checked-in JSON.

Each golden file captures one deterministic full-path run of the demo
deployment (`repro.eval.metrics.build_demo_soc`) — every inference
record (sequence, trigger cycle, timing, score, verdict) plus the
cross-stage counters.  Any change to packet encoding, FIFO batching,
vector encoding, queueing, or model scoring shows up as a diff here.

Regenerating after an *intentional* behaviour change::

    REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_golden_trace.py

then inspect `git diff tests/golden/` and commit the new files with an
explanation of why the trace moved.

Tolerances: simulated timestamps and counters are exact; model scores
are compared at 1e-4 relative so the goldens survive BLAS/numpy build
differences across CI interpreters.
"""

import json
import os
from pathlib import Path

import pytest

from repro.eval.metrics import DEMO_KINDS, build_demo_soc, demo_events
from repro.obs import MetricsRegistry

GOLDEN_DIR = Path(__file__).parent / "golden"
EVENTS = 8_000
SEED = 0

#: Counters pinned by the golden files (cross-stage conservation).
PINNED_COUNTERS = (
    "ptm.events",
    "ptm.bytes",
    "ptm.sync_bytes",
    "ptm_fifo.flushes",
    "tpiu.frames",
    "igm.mapper.hits",
    "igm.mapper.misses",
    "igm.vectors_encoded",
    "mcm.vectors_in",
    "mcm.dropped_vectors",
    "mcm.inferences",
    "mcm.interrupts",
    "driver.inferences",
    "driver.kernel_launches",
    "driver.gpu_cycles",
    "soc.events",
)


def _run_payload(kind: str) -> dict:
    registry = MetricsRegistry()
    soc = build_demo_soc(kind, seed=SEED, metrics=registry)
    events = demo_events(kind, SEED, EVENTS)
    records = soc.run_events(events)
    counters = registry.snapshot()["counters"]
    return {
        "kind": kind,
        "seed": SEED,
        "events": len(events),
        "records": [
            {
                "sequence": record.sequence_number,
                "trigger_cycle": record.trigger_cycle,
                "arrival_ns": round(record.arrival_ns, 3),
                "start_ns": round(record.start_ns, 3),
                "done_ns": round(record.done_ns, 3),
                "score": round(record.score, 6),
                "anomalous": record.anomalous,
                "gpu_cycles": record.gpu_cycles,
            }
            for record in records
        ],
        "counters": {name: counters[name] for name in PINNED_COUNTERS},
    }


def _golden_path(kind: str) -> Path:
    return GOLDEN_DIR / f"trace_{kind}_seed{SEED}_{EVENTS}ev.json"


def _regen_requested() -> bool:
    return bool(os.environ.get("REGEN_GOLDEN"))


@pytest.mark.parametrize("kind", DEMO_KINDS)
def test_golden_trace(kind):
    payload = _run_payload(kind)
    path = _golden_path(kind)
    if _regen_requested():
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )
        pytest.skip(f"regenerated {path.name}")
    assert path.exists(), (
        f"{path} missing — generate it with "
        "REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest "
        "tests/test_golden_trace.py"
    )
    golden = json.loads(path.read_text())

    assert payload["events"] == golden["events"]
    assert payload["counters"] == golden["counters"]
    assert len(payload["records"]) == len(golden["records"])
    for index, (actual, expected) in enumerate(
        zip(payload["records"], golden["records"])
    ):
        label = f"{kind} record {index}"
        for exact in (
            "sequence", "trigger_cycle", "anomalous", "gpu_cycles",
            "arrival_ns", "start_ns", "done_ns",
        ):
            assert actual[exact] == expected[exact], f"{label}: {exact}"
        assert actual["score"] == pytest.approx(
            expected["score"], rel=1e-4
        ), f"{label}: score"


@pytest.mark.parametrize("kind", DEMO_KINDS)
def test_golden_run_is_reproducible_in_process(kind):
    """Two identical runs in one process yield identical payloads —
    the demo builders hold no mutable cross-run state."""
    if _regen_requested():
        pytest.skip("regeneration run")
    assert _run_payload(kind) == _run_payload(kind)
