"""Assembler: parsing, validation, disassembly round-trip."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import AssemblerError
from repro.miaow.assembler import Kernel, assemble, float_bits
from repro.miaow.isa import Lit, OPCODES, SReg, Special, VReg


MINIMAL = """
.kernel mini
    s_endpgm
"""


class TestParsing:
    def test_minimal_kernel(self):
        kernel = assemble(MINIMAL)
        assert kernel.name == "mini"
        assert len(kernel) == 1

    def test_comments_stripped(self):
        kernel = assemble("""
        ; full-line comment
        s_mov_b32 s1, 5   ; trailing
        s_endpgm // c++ style
        """)
        assert len(kernel) == 2

    def test_registers_parsed(self):
        kernel = assemble("v_add_f32 v1, v2, s3\ns_endpgm")
        inst = kernel.instructions[0]
        assert inst.operands[0] == VReg(1)
        assert inst.operands[1] == VReg(2)
        assert inst.operands[2] == SReg(3)

    def test_float_literal_stored_as_bits(self):
        kernel = assemble("v_mov_b32 v0, 1.0\ns_endpgm")
        assert kernel.instructions[0].operands[1] == Lit(0x3F800000)

    def test_negative_float(self):
        kernel = assemble("v_mov_b32 v0, -2.5\ns_endpgm")
        assert kernel.instructions[0].operands[1] == Lit(float_bits(-2.5))

    def test_hex_and_decimal_literals(self):
        kernel = assemble("s_mov_b32 s0, 0xFF\ns_mov_b32 s1, 255\ns_endpgm")
        assert kernel.instructions[0].operands[1] == Lit(0xFF)
        assert kernel.instructions[1].operands[1] == Lit(255)

    def test_negative_int_wraps(self):
        kernel = assemble("s_mov_b32 s0, -1\ns_endpgm")
        assert kernel.instructions[0].operands[1] == Lit(0xFFFFFFFF)

    def test_special_registers(self):
        kernel = assemble("s_mov_b32 s0, vcc\ns_endpgm")
        assert kernel.instructions[0].operands[1] == Special("vcc")

    def test_labels_resolve(self):
        kernel = assemble("""
        start:
            s_branch end
        end:
            s_endpgm
        """)
        assert kernel.resolve("start") == 0
        assert kernel.resolve("end") == 1

    def test_vgprs_directive(self):
        kernel = assemble(".vgprs 12\ns_endpgm")
        assert kernel.vgprs_used == 12


class TestValidation:
    def test_unknown_opcode(self):
        with pytest.raises(AssemblerError):
            assemble("v_frobnicate v0, v1\ns_endpgm")

    def test_wrong_operand_count(self):
        with pytest.raises(AssemblerError):
            assemble("v_add_f32 v0, v1\ns_endpgm")

    def test_scalar_dst_required(self):
        with pytest.raises(AssemblerError):
            assemble("s_mov_b32 v0, 1\ns_endpgm")

    def test_vector_dst_required(self):
        with pytest.raises(AssemblerError):
            assemble("v_mov_b32 s0, 1\ns_endpgm")

    def test_undefined_label(self):
        with pytest.raises(AssemblerError):
            assemble("s_branch nowhere\ns_endpgm")

    def test_branch_needs_target(self):
        with pytest.raises(AssemblerError):
            assemble("s_branch\ns_endpgm")

    def test_duplicate_label(self):
        with pytest.raises(AssemblerError):
            assemble("x:\nx:\ns_endpgm")

    def test_missing_endpgm(self):
        with pytest.raises(AssemblerError):
            assemble("s_mov_b32 s0, 1")

    def test_register_out_of_range(self):
        with pytest.raises(AssemblerError):
            assemble("s_mov_b32 s200, 1\ns_endpgm")
        with pytest.raises(AssemblerError):
            assemble("v_mov_b32 v99, 1\ns_endpgm")

    def test_vgprs_out_of_range(self):
        with pytest.raises(AssemblerError):
            assemble(".vgprs 0\ns_endpgm")

    def test_bad_operand_token(self):
        with pytest.raises(AssemblerError):
            assemble("s_mov_b32 s0, twelve\ns_endpgm")


class TestDisassembly:
    SAMPLE = """
.kernel sample
.vgprs 6
    v_mov_b32 v1, 0x3f800000
    s_mov_b32 s4, 3
loop:
    v_add_f32 v1, v1, v1
    s_sub_i32 s4, s4, 1
    s_cmp_gt_i32 s4, 0
    s_cbranch_scc1 loop
    s_endpgm
"""

    def test_roundtrip(self):
        kernel = assemble(self.SAMPLE)
        text = kernel.disassemble()
        again = assemble(text)
        assert len(again) == len(kernel)
        assert again.labels == kernel.labels
        assert [str(i) for i in again.instructions] == [
            str(i) for i in kernel.instructions
        ]

    def test_disassembly_contains_labels(self):
        text = assemble(self.SAMPLE).disassemble()
        assert "loop:" in text
        assert ".kernel sample" in text


class TestOpcodeTable:
    def test_every_opcode_has_semantics(self):
        from repro.miaow.alu import HANDLERS

        missing = set(OPCODES) - set(HANDLERS)
        assert not missing, f"opcodes without semantics: {missing}"

    def test_every_opcode_has_area_estimate(self):
        from repro.synthesis.area_model import CuAreaModel, _build_inventory

        names = {item.name for item in _build_inventory()}
        for op in OPCODES:
            assert f"decode.{op}" in names
